//! `vcalc serve` — a resident multi-session service (DESIGN.md §18).
//!
//! One long-running process owns a single persistent execution pool and
//! one shared, bounded cache hierarchy (plan / DAG / tune tiers, see
//! [`crate::session`]); any number of concurrent client sessions
//! multiplex onto them over the PR 7 framed stream protocol
//! ([`TransportKind::Uds`] or [`TransportKind::Tcp`]). Requests carry a
//! whole program generatively — clause ASTs, decompositions, initial
//! global images — and the server rebuilds plans locally, exactly as the
//! worker protocol does, so the shared caches can amortize planning
//! across every session that sends the same shapes.
//!
//! **Admission control.** Requests pass through a counting admission
//! queue: at most `concurrency` requests execute at once, at most
//! `queue_depth` wait, and each waiter carries a deadline (per-request,
//! defaulting to the service's). Requests beyond the queue depth, or
//! whose deadline lapses while queued, are rejected with a typed
//! `admission:` transport error instead of being silently stalled. The
//! wait is measured and returned as
//! [`ServiceStats::queue_wait_ns`](crate::ServiceStats).
//!
//! **Tenant isolation.** Each connection declares a tenant at hello
//! time; the FNV-1a fingerprint of the tenant name becomes the
//! namespace component of every cache key the connection's sessions
//! touch. Two tenants submitting byte-identical programs occupy
//! disjoint key spaces — a tenant can hit only entries its own
//! namespace inserted (asserted by `tests/serve.rs`).
//!
//! **Correctness.** Serving changes where work runs, never what it
//! computes: every response's final global images are bit-identical to
//! executing the same program sequentially ([`vcal_core::Env::exec_clause`]),
//! which the stress test and the E19 bench verify with
//! `max_abs_diff == 0.0`.

use crate::codec::{dec_resp, dec_shello, enc_req, enc_resp, enc_shello, ReqMsg, RespMsg, RespOk};
use crate::distributed::DistOptions;
use crate::error::MachineError;
use crate::net::{
    dial, lock, write_frame, FrameBuf, NetFail, NetListener, Sock, K_HEARTBEAT, K_SHELLO,
    K_SHELLO_OK, K_SHELLO_REJECT, K_SREQ, K_SRESP,
};
use crate::session::{DistSession, PoolState, ProgramReport, ScheduleMode, SessionCaches};
use crate::session::{TuneOptions, TuneReport};
use crate::stats::ServiceStats;
use crate::transport::{ProtoTimeouts, TransportKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vcal_core::{Array, Env, Ix};
use vcal_spmd::{CacheBudget, DecompMap, ProgramStep};

/// FNV-1a of a tenant name — the namespace component of shared cache
/// keys. The empty tenant hashes like any other; only owned
/// (non-shared) sessions use the reserved namespace 0.
fn tenant_ns(tenant: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // never collide with the owned-session namespace
    if h == 0 {
        1
    } else {
        h
    }
}

/// Configuration of one resident service.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Transport the service listens on (`Uds` or `Tcp`; `InProc`
    /// listens on loopback TCP — there is no in-process listener).
    pub listen: TransportKind,
    /// Concurrent requests executing at once (admission cap).
    pub concurrency: usize,
    /// Requests allowed to wait for a slot before outright rejection.
    pub queue_depth: usize,
    /// Deadline for requests that do not carry their own: time allowed
    /// in the admission queue before rejection.
    pub default_deadline: Duration,
    /// Budget of each shared cache tier.
    pub cache_budget: CacheBudget,
    /// Execution options for every request (transport selects the
    /// worker-pool backend; `timeouts` defaults to the tightened
    /// [`ProtoTimeouts::service`] profile).
    pub opts: DistOptions,
    /// Benchmark baseline mode: every request gets a private cold
    /// session (own empty caches, own pool) instead of the shared
    /// hierarchy. Exists so E19 can measure exactly what sharing buys.
    pub cold: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: TransportKind::Uds,
            concurrency: 4,
            queue_depth: 64,
            default_deadline: Duration::from_secs(30),
            cache_budget: CacheBudget::default(),
            opts: DistOptions {
                timeouts: ProtoTimeouts::service(),
                ..DistOptions::default()
            },
            cold: false,
        }
    }
}

/// Counting admission gate: `concurrency` permits, a bounded waiter
/// queue, deadline-aware acquisition.
#[derive(Debug)]
struct Admission {
    cap: usize,
    queue_depth: usize,
    state: Mutex<AdmissionState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    waiting: usize,
}

impl Admission {
    fn new(cap: usize, queue_depth: usize) -> Admission {
        Admission {
            cap: cap.max(1),
            queue_depth,
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
        }
    }

    /// Wait for an execution slot, at most `deadline`. Returns the time
    /// spent queued. Rejections are typed `Transport` errors with an
    /// `admission:` detail so clients can distinguish overload from
    /// execution failures.
    fn acquire(&self, deadline: Duration) -> Result<Duration, MachineError> {
        let t0 = Instant::now();
        let mut st = lock(&self.state);
        if st.in_flight < self.cap {
            st.in_flight += 1;
            return Ok(t0.elapsed());
        }
        if st.waiting >= self.queue_depth {
            return Err(MachineError::Transport {
                node: -1,
                detail: format!(
                    "admission: queue full ({} executing, {} waiting)",
                    st.in_flight, st.waiting
                ),
            });
        }
        st.waiting += 1;
        loop {
            let left = deadline.saturating_sub(t0.elapsed());
            if left.is_zero() {
                st.waiting -= 1;
                return Err(MachineError::Transport {
                    node: -1,
                    detail: format!("admission: deadline of {deadline:?} elapsed in queue"),
                });
            }
            let (guard, _timeout) = match self.cv.wait_timeout(st, left) {
                Ok(v) => v,
                Err(poisoned) => {
                    let (g, t) = poisoned.into_inner();
                    (g, t)
                }
            };
            st = guard;
            if st.in_flight < self.cap {
                st.waiting -= 1;
                st.in_flight += 1;
                return Ok(t0.elapsed());
            }
        }
    }

    fn release(&self) {
        lock(&self.state).in_flight -= 1;
        self.cv.notify_one();
    }
}

/// Everything the accept loop and every connection thread share.
struct Shared {
    cfg: ServeConfig,
    caches: Arc<Mutex<SessionCaches>>,
    pools: Arc<Mutex<PoolState>>,
    admission: Admission,
    served: AtomicU64,
    stop: AtomicBool,
}

/// A running service: bind with [`ServeHandle::start`], read the dial
/// address from [`ServeHandle::addr`], and drop (or [`ServeHandle::stop`])
/// to shut down. Connection handling runs on background threads.
pub struct ServeHandle {
    addr: String,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// Bind the listener and start accepting sessions.
    pub fn start(cfg: ServeConfig) -> Result<ServeHandle, MachineError> {
        let listener = NetListener::bind(cfg.listen).map_err(|e| MachineError::Transport {
            node: -1,
            detail: format!("serve bind failed: {e}"),
        })?;
        let addr = listener.addr.clone();
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.concurrency, cfg.queue_depth),
            caches: Arc::new(Mutex::new(SessionCaches::new(cfg.cache_budget))),
            pools: Arc::new(Mutex::new(PoolState::default())),
            served: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ServeHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The dial address clients connect to (`uds:<path>` / `tcp:<hp>`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests completed since start.
    pub fn sessions_served(&self) -> u64 {
        self.shared.served.load(AtomicOrd::Relaxed)
    }

    /// Budget-pressure evictions across all shared cache tiers since
    /// start.
    pub fn evictions(&self) -> u64 {
        lock(&self.shared.caches).evictions()
    }

    /// Stop accepting and wind down (also runs on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, AtomicOrd::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &NetListener, shared: &Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(AtomicOrd::Relaxed) {
        match listener.accept() {
            Ok(Some(sock)) => {
                let conn_shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || {
                    handle_conn(sock, &conn_shared);
                }));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// One client connection: hello handshake, then a request/response loop
/// until the peer hangs up or the service stops.
fn handle_conn(mut sock: Sock, shared: &Arc<Shared>) {
    let mut fbuf = FrameBuf::default();
    // hello: version + tenant, answered before any request is admitted
    let ns = match hello(&mut sock, &mut fbuf, shared) {
        Some(ns) => ns,
        None => return,
    };
    loop {
        if shared.stop.load(AtomicOrd::Relaxed) {
            return;
        }
        match fbuf.next_frame(&mut sock, Duration::from_millis(200)) {
            Ok(Some((K_SREQ, payload))) => {
                let resp = match crate::codec::dec_req(&payload) {
                    Ok(req) => serve_one(shared, ns, req),
                    Err(e) => RespMsg {
                        req_id: 0,
                        res: Err(MachineError::Transport {
                            node: -1,
                            detail: e.to_string(),
                        }),
                    },
                };
                if write_frame(&mut sock, K_SRESP, &enc_resp(&resp)).is_err() {
                    return;
                }
            }
            Ok(Some((K_HEARTBEAT, _))) | Ok(None) => {}
            Ok(Some(_)) | Err(NetFail::Eof) | Err(NetFail::BadMagic) | Err(NetFail::Io(_)) => {
                return;
            }
        }
    }
}

/// Run the hello handshake; `None` means the connection was rejected or
/// lost (already answered on the wire where possible).
fn hello(sock: &mut Sock, fbuf: &mut FrameBuf, shared: &Arc<Shared>) -> Option<u64> {
    match fbuf.next_frame(sock, Duration::from_secs(10)) {
        Ok(Some((K_SHELLO, payload))) => match dec_shello(&payload) {
            Ok((version, tenant)) if version == crate::codec::WIRE_VERSION => {
                write_frame(sock, K_SHELLO_OK, &[]).ok()?;
                Some(tenant_ns(&tenant))
            }
            Ok((version, _)) => {
                let msg = format!("wire version {version} != {}", crate::codec::WIRE_VERSION);
                let _ = write_frame(sock, K_SHELLO_REJECT, msg.as_bytes());
                None
            }
            Err(e) => {
                let _ = write_frame(sock, K_SHELLO_REJECT, e.to_string().as_bytes());
                None
            }
        },
        _ => {
            let _ = shared; // connection lost before hello; nothing to clean
            None
        }
    }
}

/// Rebuild the global [`Env`] a request describes.
fn build_env(req: &ReqMsg) -> Result<Env, MachineError> {
    let mut env = Env::new();
    for (name, dec) in &req.decomps {
        let vals = req
            .globals
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        let b = dec.extent();
        let lo = b.lo().scalar();
        let n = (b.hi().scalar() - lo + 1).max(0) as usize;
        if vals.len() != n {
            return Err(MachineError::PlanMismatch(format!(
                "array `{name}` carries {} values but its extent holds {n}",
                vals.len()
            )));
        }
        env.insert(
            name.clone(),
            Array::from_fn(b, |i| vals[(i.scalar() - lo) as usize]),
        );
    }
    Ok(env)
}

/// Flatten the final state back into wire form.
fn flatten(env: &Env, decomps: &DecompMap) -> BTreeMap<String, Vec<f64>> {
    let mut out = BTreeMap::new();
    for (name, dec) in decomps {
        if let Some(a) = env.get(name) {
            let b = dec.extent();
            let vals = (b.lo().scalar()..=b.hi().scalar())
                .map(|i| a.get(&Ix::d1(i)))
                .collect();
            out.insert(name.clone(), vals);
        }
    }
    out
}

/// Admit, execute, and account one request.
fn serve_one(shared: &Arc<Shared>, ns: u64, req: ReqMsg) -> RespMsg {
    let req_id = req.req_id;
    let deadline = if req.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(req.deadline_ms)
    };
    let queue_wait = match shared.admission.acquire(deadline) {
        Ok(w) => w,
        Err(e) => {
            return RespMsg {
                req_id,
                res: Err(e),
            }
        }
    };
    let res = run_request(shared, ns, &req);
    shared.admission.release();
    let res = res.map(|(globals, reports, tune)| {
        let mut service = service_stats(&reports, tune.as_ref());
        service.queue_wait_ns = queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64;
        service.sessions_served = shared.served.fetch_add(1, AtomicOrd::Relaxed) + 1;
        RespOk { globals, service }
    });
    RespMsg { req_id, res }
}

type RunOutcome = (
    BTreeMap<String, Vec<f64>>,
    Vec<ProgramReport>,
    Option<TuneReport>,
);

/// Execute a request's program on a session over the shared (or, in
/// cold mode, a private) cache/pool pair.
fn run_request(shared: &Arc<Shared>, ns: u64, req: &ReqMsg) -> Result<RunOutcome, MachineError> {
    if req.n_steps == 0 || req.steps.is_empty() {
        return Err(MachineError::PlanMismatch(
            "request carries an empty program".into(),
        ));
    }
    let env = build_env(req)?;
    let mut session = if shared.cfg.cold {
        DistSession::new(&env, req.decomps.clone())?.with_options(shared.cfg.opts)
    } else {
        DistSession::new_shared(
            &env,
            req.decomps.clone(),
            shared.cfg.opts,
            Arc::clone(&shared.caches),
            ns,
            Arc::clone(&shared.pools),
        )?
    };
    let mut reports = Vec::new();
    let mut tune = None;
    if req.autotune {
        let topts = TuneOptions {
            budget: req.tune_budget.max(1),
            profile_steps: req.profile_steps.max(1),
            retune_every: (req.retune_every > 0).then_some(req.retune_every),
        };
        let (report, tr) = session.run_program_tuned(
            &req.steps,
            req.n_steps,
            req.schedule,
            topts,
            &crate::obs::NULL_TRACER,
        )?;
        reports.push(report);
        tune = Some(tr);
    } else {
        for _ in 0..req.n_steps {
            reports.push(session.run_program(
                &req.steps,
                req.schedule,
                &crate::obs::NULL_TRACER,
            )?);
        }
    }
    let final_env = session.gather_all();
    Ok((flatten(&final_env, &req.decomps), reports, tune))
}

/// Derive per-request service counters from the program reports — no
/// shared mutable counters, so concurrent requests can never bleed
/// statistics into each other.
fn service_stats(reports: &[ProgramReport], tune: Option<&TuneReport>) -> ServiceStats {
    let mut s = ServiceStats::default();
    for r in reports {
        for er in &r.steps {
            s.plan_hits += er.cache_hits;
            s.plan_misses += er.cache_misses;
        }
        s.dag_hits += r.dag_cache_hits;
        s.dag_misses += r.dag_cache_misses;
        s.evictions += r.evictions;
    }
    if let Some(t) = tune {
        s.tune_hits = t.tune_cache_hits;
        // every priced candidate is one tune-tier lookup per clause;
        // the tune report already aggregates over retune rounds
        s.tune_misses = t.candidates_priced.saturating_sub(t.tune_cache_hits);
    }
    s
}

// ---------------------------------------------------------------------
// client
// ---------------------------------------------------------------------

/// One program request, client-side (the public mirror of the wire
/// record).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The program to run.
    pub steps: Vec<ProgramStep>,
    /// Decomposition per array.
    pub decomps: DecompMap,
    /// Initial global image per array, flattened over the 1-D extent.
    pub globals: BTreeMap<String, Vec<f64>>,
    /// Timestep-loop iterations of the whole program.
    pub n_steps: u64,
    /// Schedule mode.
    pub schedule: ScheduleMode,
    /// Route through the decomposition auto-tuner.
    pub autotune: bool,
    /// Tuner options (used when `autotune` is set).
    pub tune: TuneOptions,
    /// Per-request deadline; `None` uses the service default.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A plain sequential-schedule request for `steps` × `n_steps`.
    pub fn new(
        steps: Vec<ProgramStep>,
        decomps: DecompMap,
        globals: BTreeMap<String, Vec<f64>>,
        n_steps: u64,
    ) -> ServeRequest {
        ServeRequest {
            steps,
            decomps,
            globals,
            n_steps,
            schedule: ScheduleMode::Seq,
            autotune: false,
            tune: TuneOptions::default(),
            deadline: None,
        }
    }
}

/// A successful response: final global images plus the service-side
/// account of the request.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Final global image per array, flattened over the 1-D extent.
    pub globals: BTreeMap<String, Vec<f64>>,
    /// What the shared caches and admission queue did for this request.
    pub service: ServiceStats,
}

/// A client session on a resident service. One connection = one tenant;
/// requests are issued synchronously.
pub struct ServeClient {
    sock: Sock,
    fbuf: FrameBuf,
    next_id: u64,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Dial the service and run the tenant hello handshake.
    pub fn connect(addr: &str, tenant: &str) -> Result<ServeClient, MachineError> {
        let fail = |detail: String| MachineError::Transport { node: -1, detail };
        let mut sock = dial(addr).map_err(|e| fail(format!("dial {addr}: {e}")))?;
        write_frame(&mut sock, K_SHELLO, &enc_shello(tenant))
            .map_err(|e| fail(format!("hello send: {e}")))?;
        let mut fbuf = FrameBuf::default();
        match fbuf.next_frame(&mut sock, Duration::from_secs(10)) {
            Ok(Some((K_SHELLO_OK, _))) => Ok(ServeClient {
                sock,
                fbuf,
                next_id: 0,
            }),
            Ok(Some((K_SHELLO_REJECT, msg))) => Err(fail(format!(
                "service rejected session: {}",
                String::from_utf8_lossy(&msg)
            ))),
            Ok(Some((k, _))) => Err(fail(format!("unexpected frame kind {k} in hello"))),
            Ok(None) => Err(fail("service did not answer hello".into())),
            Err(e) => Err(fail(format!("hello: {e}"))),
        }
    }

    /// Issue one request and wait for its response.
    pub fn request(&mut self, req: &ServeRequest) -> Result<ServeResponse, MachineError> {
        let fail = |detail: String| MachineError::Transport { node: -1, detail };
        self.next_id += 1;
        let wire = ReqMsg {
            req_id: self.next_id,
            n_steps: req.n_steps,
            schedule: req.schedule,
            autotune: req.autotune,
            tune_budget: req.tune.budget,
            profile_steps: req.tune.profile_steps,
            retune_every: req.tune.retune_every.unwrap_or(0),
            deadline_ms: req
                .deadline
                .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0),
            steps: req.steps.clone(),
            decomps: req.decomps.clone(),
            globals: req.globals.clone(),
        };
        let payload = enc_req(&wire).map_err(|e| fail(e.to_string()))?;
        write_frame(&mut self.sock, K_SREQ, &payload)
            .map_err(|e| fail(format!("request send: {e}")))?;
        // generous client-side wait: the server enforces the real
        // deadline; this guard only catches a dead service
        let wait = req
            .deadline
            .unwrap_or(Duration::from_secs(30))
            .saturating_mul(2)
            + Duration::from_secs(30);
        let deadline = Instant::now() + wait;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(fail("service did not respond before client guard".into()));
            }
            match self.fbuf.next_frame(&mut self.sock, left) {
                Ok(Some((K_SRESP, payload))) => {
                    let resp = dec_resp(&payload).map_err(|e| fail(e.to_string()))?;
                    if resp.req_id != self.next_id {
                        continue; // stale response from an aborted request
                    }
                    return resp.res.map(|ok| ServeResponse {
                        globals: ok.globals,
                        service: ok.service,
                    });
                }
                Ok(Some(_)) | Ok(None) => {}
                Err(e) => return Err(fail(format!("response: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    fn sweep(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        }
    }

    fn request(n: i64, n_steps: u64) -> ServeRequest {
        let mut decomps = DecompMap::new();
        decomps.insert("U".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        let mut globals = BTreeMap::new();
        globals.insert(
            "U".to_string(),
            (0..n)
                .map(|v| {
                    if v % 3 == 0 {
                        -(v as f64)
                    } else {
                        v as f64 * 0.5
                    }
                })
                .collect(),
        );
        ServeRequest::new(
            vec![ProgramStep::Clause(sweep(n))],
            decomps,
            globals,
            n_steps,
        )
    }

    fn oracle(n: i64, n_steps: u64) -> Vec<f64> {
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                let v = i.scalar();
                if v % 3 == 0 {
                    -(v as f64)
                } else {
                    v as f64 * 0.5
                }
            }),
        );
        let c = sweep(n);
        for _ in 0..n_steps {
            env.exec_clause(&c);
        }
        let a = env.get("U").expect("oracle array");
        (0..n).map(|i| a.get(&Ix::d1(i))).collect()
    }

    #[test]
    fn serve_roundtrip_matches_oracle_and_warms_cache() {
        let handle = ServeHandle::start(ServeConfig::default()).expect("service starts");
        let mut client = ServeClient::connect(handle.addr(), "t0").expect("connects");
        let req = request(64, 3);
        let r1 = client.request(&req).expect("first request");
        assert_eq!(r1.globals["U"], oracle(64, 3), "bit-exact vs oracle");
        assert_eq!(r1.service.plan_misses, 1, "cold: one plan built");
        assert_eq!(r1.service.plan_hits, 2, "steps 2..3 reuse it");
        // a second session of the same tenant hits the shared cache from
        // its very first step
        let mut client2 = ServeClient::connect(handle.addr(), "t0").expect("connects");
        let r2 = client2.request(&req).expect("second request");
        assert_eq!(r2.globals["U"], oracle(64, 3));
        assert_eq!(r2.service.plan_misses, 0, "fully warm across sessions");
        assert_eq!(r2.service.plan_hits, 3);
        assert_eq!(r2.service.sessions_served, 2);
        handle.stop();
    }

    #[test]
    fn tenants_never_share_cache_entries() {
        let handle = ServeHandle::start(ServeConfig::default()).expect("service starts");
        let req = request(48, 2);
        let mut a = ServeClient::connect(handle.addr(), "alice").expect("connects");
        let ra = a.request(&req).expect("alice");
        assert_eq!(ra.service.plan_misses, 1);
        // same program, different tenant: must be a cold miss
        let mut b = ServeClient::connect(handle.addr(), "bob").expect("connects");
        let rb = b.request(&req).expect("bob");
        assert_eq!(rb.service.plan_misses, 1, "bob cannot hit alice's entry");
        assert_eq!(rb.globals["U"], ra.globals["U"], "same math either way");
    }

    #[test]
    fn admission_rejects_on_zero_queue_depth() {
        // concurrency 1, queue 0: a request arriving while another is in
        // flight must be rejected, not stalled
        let adm = Admission::new(1, 0);
        let w = adm.acquire(Duration::from_millis(100)).expect("first slot");
        assert!(w < Duration::from_millis(100));
        let err = adm
            .acquire(Duration::from_millis(50))
            .expect_err("queue full");
        assert!(format!("{err}").contains("admission: queue full"));
        adm.release();
        adm.acquire(Duration::from_millis(100))
            .expect("slot free again");
    }

    #[test]
    fn admission_deadline_lapses_in_queue() {
        let adm = Admission::new(1, 4);
        adm.acquire(Duration::from_millis(100)).expect("first slot");
        let t0 = Instant::now();
        let err = adm
            .acquire(Duration::from_millis(60))
            .expect_err("deadline must lapse");
        assert!(t0.elapsed() >= Duration::from_millis(60));
        assert!(format!("{err}").contains("admission: deadline"));
    }

    #[test]
    fn bad_wire_version_is_rejected_at_hello() {
        let handle = ServeHandle::start(ServeConfig::default()).expect("service starts");
        let mut sock = dial(handle.addr()).expect("dials");
        // hand-roll a hello with a wrong version
        let mut e = crate::codec::Enc::new();
        e.u32(crate::codec::WIRE_VERSION + 1);
        e.str("x");
        write_frame(&mut sock, K_SHELLO, &e.buf).expect("sends");
        let mut fbuf = FrameBuf::default();
        match fbuf.next_frame(&mut sock, Duration::from_secs(5)) {
            Ok(Some((K_SHELLO_REJECT, msg))) => {
                assert!(String::from_utf8_lossy(&msg).contains("wire version"));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
