//! The shared-memory SPMD machine (paper Section 2.9).
//!
//! One OS thread per virtual processor executes the template
//!
//! ```text
//! p := my_node;
//! forall i in Modify_p do A[f(i)] := Expr(B[g(i)]); od;
//! barrier;
//! ```
//!
//! with `Modify_p` supplied by the plan's (naive or closed-form)
//! schedules. Reads go to a pre-state snapshot (the paper's `//` clauses
//! assume independence; the snapshot makes the semantics deterministic
//! even when they alias). Two write strategies are provided, benched as
//! design ablation #5 in DESIGN.md:
//!
//! * [`WriteStrategy::GatherCommit`] — every thread collects its
//!   `(offset, value)` writes and the main thread commits them after the
//!   join (pure safe Rust);
//! * [`WriteStrategy::Direct`] — threads write straight into the shared
//!   output buffer through a raw-pointer cell. Owner-computes partitioning
//!   plus an injective `f` guarantee disjoint offsets; a debug-mode atomic
//!   claim table verifies that guarantee at run time.

use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use vcal_core::{Clause, Env, Ix, Ordering};
use vcal_spmd::SpmdPlan;

/// How node threads write their results into the shared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStrategy {
    /// Collect per-thread write lists, commit after the barrier.
    GatherCommit,
    /// Write directly through a shared raw pointer (owner-computes makes
    /// the offsets disjoint; checked in debug builds).
    Direct,
}

/// A `Sync` cell granting disjoint-offset write access to a `[f64]`.
struct SharedWriter {
    ptr: *mut f64,
    len: usize,
    /// Debug-only claim table proving write disjointness.
    claims: Option<Vec<AtomicBool>>,
}

// SAFETY: every offset is written by at most one thread (owner-computes +
// injective lhs access function), which the claim table asserts in debug
// builds. No thread reads through the pointer.
unsafe impl Sync for SharedWriter {}

impl SharedWriter {
    fn new(data: &mut [f64]) -> SharedWriter {
        let claims = if cfg!(debug_assertions) {
            Some((0..data.len()).map(|_| AtomicBool::new(false)).collect())
        } else {
            None
        };
        SharedWriter {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            claims,
        }
    }

    #[inline]
    fn write(&self, off: usize, v: f64) {
        assert!(
            off < self.len,
            "write offset {off} out of range {}",
            self.len
        );
        if let Some(claims) = &self.claims {
            let already = claims[off].swap(true, AtomicOrdering::Relaxed);
            assert!(
                !already,
                "two processors wrote offset {off}: lhs access function not injective"
            );
        }
        // SAFETY: bounds-checked above; disjointness per type invariant.
        unsafe { *self.ptr.add(off) = v };
    }
}

/// Execute a `//` clause on the shared-memory machine.
///
/// `plan` must have been built from `clause` (same access functions); the
/// arrays live in `env` as plain global arrays. Returns per-node stats.
pub fn run_shared(
    plan: &SpmdPlan,
    clause: &Clause,
    env: &mut Env,
    strategy: WriteStrategy,
) -> Result<ExecReport, MachineError> {
    if plan.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    // pre-state snapshot all threads read from
    let snapshot = env.clone();
    for r in clause.read_refs() {
        if snapshot.get(&r.array).is_none() {
            return Err(MachineError::UnknownArray(r.array.clone()));
        }
    }
    let lhs = env
        .get_mut(&clause.lhs.array)
        .ok_or_else(|| MachineError::UnknownArray(clause.lhs.array.clone()))?;
    let lhs_bounds = lhs.bounds();

    let mut report = ExecReport {
        barriers: 1,
        ..Default::default()
    };

    match strategy {
        WriteStrategy::GatherCommit => {
            let mut node_writes: Vec<(NodeStats, Vec<(usize, f64)>)> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .nodes
                    .iter()
                    .map(|node| {
                        let snapshot = &snapshot;
                        scope.spawn(move || {
                            let mut stats = NodeStats {
                                guard_tests: node.modify.schedule.work_estimate(),
                                ..Default::default()
                            };
                            let mut writes = Vec::new();
                            node.modify.schedule.for_each(|i| {
                                stats.iterations += 1;
                                let ix = Ix::d1(i);
                                stats.data_guards += 1;
                                if snapshot.eval_guard(&clause.guard, &ix) {
                                    let v = snapshot.eval_expr(&clause.rhs, &ix);
                                    let target = clause.lhs.map.eval(&ix);
                                    writes.push((lhs_bounds.linear_offset(&target), v));
                                }
                            });
                            (stats, writes)
                        })
                    })
                    .collect();
                for h in handles {
                    node_writes.push(h.join().expect("node thread panicked"));
                }
            });
            // "barrier", then commit
            let data = lhs.data_mut();
            for (stats, writes) in node_writes {
                report.nodes.push(stats);
                for (off, v) in writes {
                    data[off] = v;
                }
            }
        }
        WriteStrategy::Direct => {
            let writer = SharedWriter::new(lhs.data_mut());
            let mut stats_all: Vec<NodeStats> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .nodes
                    .iter()
                    .map(|node| {
                        let snapshot = &snapshot;
                        let writer = &writer;
                        scope.spawn(move || {
                            let mut stats = NodeStats {
                                guard_tests: node.modify.schedule.work_estimate(),
                                ..Default::default()
                            };
                            node.modify.schedule.for_each(|i| {
                                stats.iterations += 1;
                                let ix = Ix::d1(i);
                                stats.data_guards += 1;
                                if snapshot.eval_guard(&clause.guard, &ix) {
                                    let v = snapshot.eval_expr(&clause.rhs, &ix);
                                    let target = clause.lhs.map.eval(&ix);
                                    writer.write(lhs_bounds.linear_offset(&target), v);
                                }
                            });
                            stats
                        })
                    })
                    .collect();
                for h in handles {
                    stats_all.push(h.join().expect("node thread panicked"));
                }
            });
            report.nodes = stats_all;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, CmpOp, Expr, Guard, IndexSet};
    use vcal_decomp::Decomp1;
    use vcal_spmd::DecompMap;

    fn fig1_setup(n: i64) -> (Clause, Env, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(1, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("A", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() % 3 == 0 {
                    -1.0
                } else {
                    i.scalar() as f64
                }
            }),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n), |i| (i.scalar() * 2) as f64),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("B".into(), Decomp1::scatter(4, Bounds::range(0, n)));
        (clause, env, dm)
    }

    fn check_matches_reference(strategy: WriteStrategy, naive: bool) {
        let (clause, env0, dm) = fig1_setup(64);
        // reference
        let mut expect = env0.clone();
        expect.exec_clause(&clause);
        // machine
        let plan = if naive {
            SpmdPlan::build_naive(&clause, &dm).unwrap()
        } else {
            SpmdPlan::build(&clause, &dm).unwrap()
        };
        let mut env = env0.clone();
        let report = run_shared(&plan, &clause, &mut env, strategy).unwrap();
        assert_eq!(
            env.get("A").unwrap().max_abs_diff(expect.get("A").unwrap()),
            0.0,
            "strategy {strategy:?} naive={naive}"
        );
        assert_eq!(report.total().iterations, 63);
        assert_eq!(report.nodes.len(), 4);
    }

    #[test]
    fn gather_commit_matches_reference() {
        check_matches_reference(WriteStrategy::GatherCommit, false);
        check_matches_reference(WriteStrategy::GatherCommit, true);
    }

    #[test]
    fn direct_matches_reference() {
        check_matches_reference(WriteStrategy::Direct, false);
        check_matches_reference(WriteStrategy::Direct, true);
    }

    #[test]
    fn naive_plan_reports_more_guard_work() {
        let (clause, _, dm) = fig1_setup(64);
        let naive = SpmdPlan::build_naive(&clause, &dm).unwrap();
        let opt = SpmdPlan::build(&clause, &dm).unwrap();
        // naive: every node tests all 63 iterations -> 252; optimized:
        // each node touches only its own ~16
        assert_eq!(naive.total_work(), 63 * 4);
        assert!(opt.total_work() <= 63 + 3, "opt work {}", opt.total_work());
    }

    #[test]
    fn sequential_clause_rejected() {
        let (mut clause, mut env, dm) = fig1_setup(16);
        clause.ordering = Ordering::Seq;
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        assert_eq!(
            run_shared(&plan, &clause, &mut env, WriteStrategy::Direct).unwrap_err(),
            MachineError::SequentialClause
        );
    }

    #[test]
    fn strided_write_with_direct_strategy() {
        // A[2i+1] := B[i]: injective non-identity lhs under scatter
        let n = 32i64;
        let clause = Clause {
            iter: IndexSet::range(0, n / 2 - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::affine(2, 1)),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n / 2 - 1), |i| i.scalar() as f64),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));
        dm.insert("B".into(), Decomp1::block(4, Bounds::range(0, n / 2 - 1)));
        let plan = SpmdPlan::build(&clause, &dm).unwrap();

        let mut expect = env.clone();
        expect.exec_clause(&clause);
        run_shared(&plan, &clause, &mut env, WriteStrategy::Direct).unwrap();
        assert_eq!(
            env.get("A").unwrap().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn unknown_array_detected() {
        let (clause, _, dm) = fig1_setup(16);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut empty = Env::new();
        assert!(matches!(
            run_shared(&plan, &clause, &mut empty, WriteStrategy::Direct),
            Err(MachineError::UnknownArray(_))
        ));
    }
}
