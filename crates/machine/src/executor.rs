//! The steady-state executor: a persistent worker pool replaying
//! compiled schedules (paper Section 4's amortization discipline).
//!
//! [`run_distributed`](crate::run_distributed) pays the full setup bill
//! on every call: fresh OS threads per clause, channels and staging
//! reallocated, the closed-form enumerators re-walked into temporaries.
//! That is the right shape for a one-shot clause and exactly the wrong
//! shape for a timestep loop, where the same plan executes thousands of
//! times. This module splits the cost:
//!
//! * [`prepare_run`] does everything that depends only on
//!   `(plan, clause, decompositions)` — expression/guard resolution,
//!   the [`CompiledSchedule`] materialization of every Table I
//!   enumeration and the vectorized receive addressing — and freezes it
//!   in a shareable [`PreparedPlan`].
//! * [`DistExecutor`] owns `pmax` node threads spawned **once**; between
//!   runs they park on their job channel. Transport endpoints (sequence
//!   numbers, dedup windows), receive staging, and operand buffers are
//!   *reset*, not reallocated, per run.
//!
//! The warm path threads the same [`Tracer`] and fault machinery as the
//! cold path and must stay behaviorally identical to it: same results
//! bit-for-bit, same statistics, same deterministic event stream (worker
//! events are buffered thread-locally and replayed into the real tracer
//! after the run — sound because [`CollectingTracer`] canonicalizes
//! event order by `(class, node, per-node clock)`). A pooled worker that
//! crashes is retired without poisoning the session: the caught panic
//! becomes [`MachineError::NodePanicked`], uncommitted writes are
//! discarded (the host's all-or-nothing commit restores pre-run state),
//! and a genuinely dead thread causes the pool to rebuild itself on the
//! next run.
//!
//! [`CollectingTracer`]: crate::obs::CollectingTracer

use crate::darray::DistArray;
use crate::distributed::{
    disassemble, eval_rexpr, exec_update_phase, finalize_run, recv_element, recv_packed,
    resolve_expr, resolve_guard, send_phase_element_compiled, CommMode, DistOptions, JobLane, Msg,
    NodeOutcome, RExpr, RGuard, RecvCtx, RecvFail, WaveRecv, Wire, WriteOp, ELEM_MSG_BYTES,
    PACK_HEADER_BYTES,
};
use crate::error::MachineError;
use crate::obs::{trace_plan, EventKind, Phase, Tracer};
use crate::stats::{ExecReport, NodeStats};
use crate::transport::{Endpoint, Frame};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use vcal_core::{Clause, Ordering};
use vcal_decomp::Decomp1;
use vcal_spmd::{for_each_run, CompiledSchedule, SpmdPlan};

/// Everything a repeated execution needs that depends only on the
/// `(plan, clause, decompositions)` triple: the plan itself, its
/// compiled (flattened) schedules, per-node resolved expressions and
/// guards, the referenced-array list, and the decompositions the plan
/// was built against. Built once by [`prepare_run`]; shared read-only
/// (via `Arc`) by the session cache and every pooled worker.
pub struct PreparedPlan {
    pub(crate) plan: SpmdPlan,
    pub(crate) compiled: CompiledSchedule,
    pub(crate) rexprs: Vec<RExpr>,
    pub(crate) rguards: Vec<RGuard>,
    pub(crate) referenced: Vec<String>,
    pub(crate) decomps: BTreeMap<String, Decomp1>,
    pub(crate) dec_lhs: Decomp1,
}

impl PreparedPlan {
    /// The underlying SPMD plan.
    pub fn plan(&self) -> &SpmdPlan {
        &self.plan
    }

    /// The compiled schedule tables.
    pub fn compiled(&self) -> &CompiledSchedule {
        &self.compiled
    }

    /// The arrays the plan references (lhs first).
    pub fn referenced(&self) -> &[String] {
        &self.referenced
    }

    /// Rough resident size of the prepared tables — the byte charge the
    /// bounded plan caches account against their budget. Dominated by
    /// the compiled per-node run tables and the vectorized receive
    /// addressing; a handful of machine words per run/origin entry, so
    /// an estimate (not an allocator census) is plenty for LRU pressure.
    pub fn approx_bytes(&self) -> usize {
        let mut b = std::mem::size_of::<PreparedPlan>();
        for node in &self.compiled.nodes {
            b += node.modify.len() * 32;
            for r in node.resides.iter().flatten() {
                b += r.len() * 32;
            }
            b += node.origin.len() * 64;
            b += (node.src_ord.len() + node.src_peers.len() + node.staging_runs.len()) * 8;
        }
        for np in &self.plan.nodes {
            b += np.resides.len() * 128;
        }
        b
    }
}

impl std::fmt::Debug for PreparedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedPlan")
            .field("lhs", &self.plan.lhs_array)
            .field("pmax", &self.plan.pmax)
            .field("referenced", &self.referenced)
            .finish_non_exhaustive()
    }
}

/// Freeze the run-invariant half of an execution: validate the clause
/// against the plan, resolve expressions and guards per node, and
/// compile every schedule into flat run tables. The decompositions are
/// captured so later runs can detect redistribution.
pub fn prepare_run(
    plan: SpmdPlan,
    clause: &Clause,
    decomps: &BTreeMap<String, Decomp1>,
) -> Result<PreparedPlan, MachineError> {
    if plan.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    let node0 = plan
        .nodes
        .first()
        .ok_or_else(|| MachineError::PlanMismatch("plan has no nodes".into()))?;
    let mut referenced: Vec<String> = vec![plan.lhs_array.clone()];
    for rp in &node0.resides {
        if !referenced.contains(&rp.array) {
            referenced.push(rp.array.clone());
        }
    }
    let mut captured: BTreeMap<String, Decomp1> = BTreeMap::new();
    for name in &referenced {
        let dec = decomps
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        if dec.pmax() != plan.pmax {
            return Err(MachineError::PlanMismatch(format!(
                "array `{name}` decomposed over {} processors, plan has {}",
                dec.pmax(),
                plan.pmax
            )));
        }
        captured.insert(name.clone(), dec.clone());
    }
    let dec_lhs = captured[&plan.lhs_array].clone();
    let mut rexprs = Vec::with_capacity(plan.nodes.len());
    let mut rguards = Vec::with_capacity(plan.nodes.len());
    for n in &plan.nodes {
        rexprs.push(resolve_expr(&clause.rhs, n)?);
        rguards.push(resolve_guard(&clause.guard, n)?);
    }
    let compiled = CompiledSchedule::compile_exec(&plan, clause, &captured);
    Ok(PreparedPlan {
        plan,
        compiled,
        rexprs,
        rguards,
        referenced,
        decomps: captured,
        dec_lhs,
    })
}

/// Per-run context shared by every worker of one execution.
struct RunCtx {
    prepared: Arc<PreparedPlan>,
    opts: DistOptions,
    trace_on: bool,
    /// Run the purge + Ready/Go barrier before sending. Needed only
    /// when the previous run may have left frames in the data channels
    /// (it failed, or its fault plan allowed post-`Done` retransmits);
    /// after a clean fault-free run the channels are provably empty —
    /// every frame a peer sends precedes its `Done`, and a worker only
    /// finishes its drain after consuming every peer's `Done`.
    handshake: bool,
}

/// One dispatched execution for one worker.
struct Job {
    ctx: Arc<RunCtx>,
    locals: BTreeMap<String, Vec<f64>>,
}

/// Shared context of one wave: the jobs of a DAG schedule wave in
/// program-ordinal order. A wave is ONE transport run — sequence
/// numbers run continuously across jobs, which is what makes the
/// plan-derived seq-window demultiplexing of [`WaveRecv`] exact (a
/// per-job endpoint reset would replay seqnos from 0 and a fast peer's
/// frames would be dropped as duplicates by a not-yet-reset slow peer).
struct WaveCtx {
    jobs: Vec<Arc<PreparedPlan>>,
    opts: DistOptions,
    trace_on: bool,
    handshake: bool,
}

/// One dispatched wave for one worker: per-job local memories (each
/// restricted to that job's referenced arrays) cloned from the host's
/// master parts.
struct WaveJob {
    ctx: Arc<WaveCtx>,
    locals: Vec<BTreeMap<String, Vec<f64>>>,
}

/// Host-to-worker control stream. A run is a two-step handshake:
/// `Job`/`Wave` (reset, purge stale frames, report
/// [`WorkerMsg::Ready`]) then `Go` (start sending). The barrier exists
/// because the stale-frame purge must finish on *every* worker before
/// *any* worker may put new frames on the wire — a fast peer could
/// otherwise have its fresh frames eaten by a slow peer's purge.
enum Cmd {
    Job(Job),
    Wave(WaveJob),
    Go,
}

/// What a worker ships back after a run.
struct Reply {
    outcome: NodeOutcome,
    events: Vec<(i64, EventKind)>,
    timings: Vec<(i64, Phase, Duration)>,
}

/// One job's share of a wave reply. Writes stay ordinal-keyed (the
/// position in [`WaveReply::jobs`] is the job's wave ordinal) so the
/// host can stage commits in strict program order.
struct JobReply {
    writes: Vec<WriteOp>,
    stats: NodeStats,
    sent_to: Vec<u64>,
    res: Result<(), MachineError>,
    events: Vec<(i64, EventKind)>,
    timings: Vec<(i64, Phase, Duration)>,
}

/// What a worker ships back after a wave: one [`JobReply`] per job in
/// wave order, plus the wave-level drain trace (recorded once — the
/// drain belongs to the transport run, not to any one job).
struct WaveReply {
    jobs: Vec<JobReply>,
    drain_events: Vec<(i64, EventKind)>,
    drain_timings: Vec<(i64, Phase, Duration)>,
}

/// Worker-to-host stream: `Ready` answers `Cmd::Job`/`Cmd::Wave`,
/// `Done`/`WaveDone` answer `Cmd::Go`.
enum WorkerMsg {
    Ready,
    Done(Box<Reply>),
    WaveDone(Box<WaveReply>),
}

#[derive(Default)]
pub(crate) struct BufInner {
    pub(crate) events: Vec<(i64, EventKind)>,
    pub(crate) timings: Vec<(i64, Phase, Duration)>,
}

/// A thread-local event buffer implementing [`Tracer`]. A pooled worker
/// cannot borrow the caller's tracer (its thread outlives any one run),
/// so it records into this buffer and the host replays the buffer into
/// the real tracer after collecting the reply — per-node event order is
/// preserved, which is all the collecting tracer's canonical sort needs.
pub(crate) struct BufTracer {
    on: AtomicBool,
    buf: Mutex<BufInner>,
}

impl BufTracer {
    pub(crate) fn new() -> BufTracer {
        BufTracer {
            on: AtomicBool::new(false),
            buf: Mutex::new(BufInner::default()),
        }
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.on.store(on, AtomicOrdering::Relaxed);
    }

    pub(crate) fn take(&self) -> BufInner {
        let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *b)
    }
}

impl Tracer for BufTracer {
    fn enabled(&self) -> bool {
        self.on.load(AtomicOrdering::Relaxed)
    }

    fn record(&self, node: i64, kind: EventKind) {
        if self.enabled() {
            let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            b.events.push((node, kind));
        }
    }

    fn timing(&self, node: i64, phase: Phase, elapsed: Duration) {
        if self.enabled() {
            let mut b = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            b.timings.push((node, phase, elapsed));
        }
    }
}

/// One parked node thread of the pool.
struct WorkerHandle {
    job_tx: Sender<Cmd>,
    reply_rx: Receiver<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

/// The persistent distributed executor: `pmax` node threads spawned
/// once, parked between runs, replaying [`PreparedPlan`]s through
/// reused transport endpoints and staging buffers. See the module docs
/// for lifecycle and crash-retirement semantics.
pub struct DistExecutor {
    pmax: usize,
    workers: Vec<WorkerHandle>,
    broken: bool,
    /// The previous run may have left stale frames behind (see
    /// [`RunCtx::handshake`]); the next run must purge under a barrier.
    dirty: bool,
}

impl std::fmt::Debug for DistExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistExecutor")
            .field("pmax", &self.pmax)
            .field("workers", &self.workers.len())
            .field("broken", &self.broken)
            .finish()
    }
}

fn build_pool(pmax: usize) -> Vec<WorkerHandle> {
    let mut txs: Vec<Sender<Frame<Wire>>> = Vec::with_capacity(pmax);
    let mut data_rxs: Vec<Receiver<Frame<Wire>>> = Vec::with_capacity(pmax);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        data_rxs.push(rx);
    }
    let mut workers = Vec::with_capacity(pmax);
    for (p, data_rx) in data_rxs.into_iter().enumerate() {
        let (job_tx, job_rx) = unbounded::<Cmd>();
        let (reply_tx, reply_rx) = unbounded::<WorkerMsg>();
        let txs = txs.clone();
        let handle =
            std::thread::spawn(move || worker_main(p as i64, txs, data_rx, job_rx, reply_tx));
        workers.push(WorkerHandle {
            job_tx,
            reply_rx,
            handle: Some(handle),
        });
    }
    workers
}

/// The placeholder outcome of a worker that died without replying —
/// identical to the cold path's escaped-panic fallback.
fn dead_outcome(p: i64, pmax: usize) -> NodeOutcome {
    (
        p,
        BTreeMap::new(),
        Vec::new(),
        NodeStats::default(),
        vec![0u64; pmax],
        Err(MachineError::NodePanicked { node: p }),
    )
}

impl DistExecutor {
    /// Spawn a pool of `pmax` parked node threads.
    pub fn new(pmax: i64) -> DistExecutor {
        let pmax = pmax.max(0) as usize;
        DistExecutor {
            pmax,
            workers: build_pool(pmax),
            broken: false,
            dirty: false,
        }
    }

    /// Number of pooled node threads.
    pub fn pmax(&self) -> usize {
        self.pmax
    }

    /// Whether a worker died and the pool will rebuild on the next run.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn teardown(&mut self) {
        let mut handles = Vec::new();
        for mut w in self.workers.drain(..) {
            if let Some(h) = w.handle.take() {
                handles.push(h);
            }
            // dropping `w` hangs up its job channel, unparking the thread
        }
        for h in handles {
            let _ = h.join();
        }
    }

    /// Retire every worker (dead or alive) and spawn a fresh pool.
    fn rebuild(&mut self) {
        self.teardown();
        self.workers = build_pool(self.pmax);
        self.broken = false;
        self.dirty = false; // fresh channels start empty
    }

    /// Execute `prepared` once on the pool. Semantics are identical to
    /// [`run_distributed_traced`](crate::run_distributed_traced) on the
    /// same plan: bit-identical results and statistics, same typed
    /// errors, all-or-nothing commit, replay-valid traces. Only the
    /// setup cost differs.
    pub fn run(
        &mut self,
        prepared: &Arc<PreparedPlan>,
        arrays: &mut BTreeMap<String, DistArray>,
        opts: DistOptions,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        if prepared.plan.pmax.max(0) as usize != self.pmax {
            return Err(MachineError::PlanMismatch(format!(
                "prepared plan spans {} processors, pool has {}",
                prepared.plan.pmax, self.pmax
            )));
        }
        if self.broken {
            self.rebuild();
        }
        // the plan was captured against specific decompositions; a run
        // against redistributed images would scatter garbage
        for name in &prepared.referenced {
            let da = arrays
                .get(name)
                .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
            if da.decomp() != &prepared.decomps[name] {
                return Err(MachineError::PlanMismatch(format!(
                    "array `{name}` was redistributed since the plan was prepared"
                )));
            }
        }
        trace_plan(tracer, &prepared.plan);
        let per_node = disassemble(arrays, &prepared.referenced, prepared.plan.pmax)?;
        let trace_on = tracer.enabled();
        let handshake = self.dirty;
        let ctx = Arc::new(RunCtx {
            prepared: Arc::clone(prepared),
            opts,
            trace_on,
            handshake,
        });
        // Dispatch. When the channels may hold stale frames this is a
        // two-step handshake (see [`Cmd`]): every worker must finish its
        // purge before any worker starts sending.
        let mut running = vec![false; self.pmax];
        for (p, locals) in per_node.into_iter().enumerate() {
            let sent = self.workers[p]
                .job_tx
                .send(Cmd::Job(Job {
                    ctx: Arc::clone(&ctx),
                    locals,
                }))
                .is_ok();
            running[p] = sent;
            if !sent {
                self.broken = true;
            }
        }
        if handshake {
            for (p, w) in self.workers.iter().enumerate() {
                if running[p] && !matches!(w.reply_rx.recv(), Ok(WorkerMsg::Ready)) {
                    // died between dispatch and ready: retire, run without it
                    self.broken = true;
                    running[p] = false;
                }
            }
            for (p, w) in self.workers.iter().enumerate() {
                if running[p] && w.job_tx.send(Cmd::Go).is_err() {
                    self.broken = true;
                    running[p] = false;
                }
            }
        }
        let mut results: Vec<NodeOutcome> = Vec::with_capacity(self.pmax);
        let mut buffered = Vec::new();
        for (p, w) in self.workers.iter().enumerate() {
            if !running[p] {
                results.push(dead_outcome(p as i64, self.pmax));
                continue;
            }
            match w.reply_rx.recv() {
                Ok(WorkerMsg::Done(reply)) => {
                    results.push(reply.outcome);
                    buffered.push((reply.events, reply.timings));
                }
                Ok(WorkerMsg::Ready | WorkerMsg::WaveDone(_)) | Err(_) => {
                    // the thread died without replying (or broke the
                    // handshake): retire it and rebuild lazily next run
                    self.broken = true;
                    results.push(dead_outcome(p as i64, self.pmax));
                }
            }
        }
        // a failed node exits without draining, and a fault plan can
        // retransmit after `Done` — either way the next run must purge
        self.dirty = opts.faults.is_some() || results.iter().any(|r| r.5.is_err());
        if trace_on {
            // replies arrive in node order, and each buffer preserves
            // its node's recording order — the collecting tracer's
            // canonical (class, node, clock) sort sees the same stream
            // a cold run records live
            for (events, timings) in buffered {
                for (n, k) in events {
                    tracer.record(n, k);
                }
                for (n, ph, d) in timings {
                    tracer.timing(n, ph, d);
                }
            }
        }
        finalize_run(
            &prepared.plan.lhs_array,
            &prepared.referenced,
            &prepared.decomps,
            results,
            arrays,
            tracer,
        )
    }

    /// Execute one DAG-schedule wave — a set of pairwise-independent
    /// jobs, in program-ordinal order — concurrently on the pool.
    ///
    /// Every job reads a snapshot of the pre-wave arrays (independence
    /// guarantees each job's inputs equal its strict-sequential inputs)
    /// and its writes are staged ordinal-keyed; the host commits them
    /// job-by-job in program order, so the post-wave arrays are bitwise
    /// identical to running the jobs strictly sequentially. The whole
    /// wave is all-or-nothing: any job failing on any node rolls the
    /// wave back to pre-wave state and reports the root-cause error.
    ///
    /// Returns one [`ExecReport`] per job, in wave order.
    pub fn run_wave(
        &mut self,
        jobs: &[Arc<PreparedPlan>],
        arrays: &mut BTreeMap<String, DistArray>,
        opts: DistOptions,
        tracer: &dyn Tracer,
    ) -> Result<Vec<ExecReport>, MachineError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        for prepared in jobs {
            if prepared.plan.pmax.max(0) as usize != self.pmax {
                return Err(MachineError::PlanMismatch(format!(
                    "prepared plan spans {} processors, pool has {}",
                    prepared.plan.pmax, self.pmax
                )));
            }
        }
        if self.broken {
            self.rebuild();
        }
        // union of referenced arrays + their captured decompositions;
        // every plan must still match the live images
        let mut referenced: Vec<String> = Vec::new();
        let mut decomps: BTreeMap<String, Decomp1> = BTreeMap::new();
        for prepared in jobs {
            for name in &prepared.referenced {
                let da = arrays
                    .get(name)
                    .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
                if da.decomp() != &prepared.decomps[name] {
                    return Err(MachineError::PlanMismatch(format!(
                        "array `{name}` was redistributed since the plan was prepared"
                    )));
                }
                if !referenced.contains(name) {
                    referenced.push(name.clone());
                    decomps.insert(name.clone(), prepared.decomps[name].clone());
                }
            }
            trace_plan(tracer, &prepared.plan);
        }
        let pmax = jobs[0].plan.pmax;
        let mut master = disassemble(arrays, &referenced, pmax)?;
        let trace_on = tracer.enabled();
        let handshake = self.dirty;
        let ctx = Arc::new(WaveCtx {
            jobs: jobs.to_vec(),
            opts,
            trace_on,
            handshake,
        });
        let mut running = vec![false; self.pmax];
        for (p, w) in self.workers.iter().enumerate() {
            // per-job snapshots of this node's master parts, restricted
            // to each job's referenced arrays
            let locals: Vec<BTreeMap<String, Vec<f64>>> = jobs
                .iter()
                .map(|job| {
                    job.referenced
                        .iter()
                        .map(|name| {
                            (
                                name.clone(),
                                master[p].get(name).cloned().unwrap_or_default(),
                            )
                        })
                        .collect()
                })
                .collect();
            let sent = w
                .job_tx
                .send(Cmd::Wave(WaveJob {
                    ctx: Arc::clone(&ctx),
                    locals,
                }))
                .is_ok();
            running[p] = sent;
            if !sent {
                self.broken = true;
            }
        }
        if handshake {
            for (p, w) in self.workers.iter().enumerate() {
                if running[p] && !matches!(w.reply_rx.recv(), Ok(WorkerMsg::Ready)) {
                    self.broken = true;
                    running[p] = false;
                }
            }
            for (p, w) in self.workers.iter().enumerate() {
                if running[p] && w.job_tx.send(Cmd::Go).is_err() {
                    self.broken = true;
                    running[p] = false;
                }
            }
        }
        let mut replies: Vec<Option<Box<WaveReply>>> = Vec::with_capacity(self.pmax);
        for (p, w) in self.workers.iter().enumerate() {
            if !running[p] {
                replies.push(None);
                continue;
            }
            match w.reply_rx.recv() {
                Ok(WorkerMsg::WaveDone(reply)) => replies.push(Some(reply)),
                Ok(WorkerMsg::Ready | WorkerMsg::Done(_)) | Err(_) => {
                    self.broken = true;
                    replies.push(None);
                }
            }
        }
        self.dirty = opts.faults.is_some()
            || replies.iter().any(|r| match r {
                None => true,
                Some(wr) => wr.jobs.iter().any(|j| j.res.is_err()),
            });
        if trace_on {
            // replies arrive in node order; within a node, job streams
            // in wave order then the drain span — exactly the order a
            // sequence of single runs would have recorded per node
            for reply in replies.iter_mut().flatten() {
                for jr in &mut reply.jobs {
                    for (n, k) in jr.events.drain(..) {
                        tracer.record(n, k);
                    }
                    for (n, ph, d) in jr.timings.drain(..) {
                        tracer.timing(n, ph, d);
                    }
                }
                for (n, k) in reply.drain_events.drain(..) {
                    tracer.record(n, k);
                }
                for (n, ph, d) in reply.drain_timings.drain(..) {
                    tracer.timing(n, ph, d);
                }
            }
        }
        finalize_wave(
            jobs,
            &referenced,
            &decomps,
            &mut master,
            replies,
            arrays,
            tracer,
        )
    }
}

/// Host-side tail of a wave (the wave analogue of
/// [`finalize_run`]): pick the root-cause error across all jobs ×
/// nodes, validate *every* job's writes before committing *any*
/// (all-or-nothing for the whole wave), commit job-by-job in
/// program-ordinal order into the master parts, and reassemble — on
/// error from the untouched parts, restoring pre-wave state.
fn finalize_wave(
    jobs: &[Arc<PreparedPlan>],
    referenced: &[String],
    decomps: &BTreeMap<String, Decomp1>,
    master: &mut [BTreeMap<String, Vec<f64>>],
    mut replies: Vec<Option<Box<WaveReply>>>,
    arrays: &mut BTreeMap<String, DistArray>,
    tracer: &dyn Tracer,
) -> Result<Vec<ExecReport>, MachineError> {
    let commit_t0 = tracer.enabled().then(std::time::Instant::now);
    let root_cause = |e: &MachineError| {
        matches!(
            e,
            MachineError::NodePanicked { .. } | MachineError::Transport { .. }
        )
    };
    let mut first_err: Option<MachineError> = None;
    {
        let mut consider = |e: &MachineError| match &first_err {
            None => first_err = Some(e.clone()),
            Some(have) if !root_cause(have) && root_cause(e) => first_err = Some(e.clone()),
            Some(_) => {}
        };
        for (p, r) in replies.iter().enumerate() {
            match r {
                None => consider(&MachineError::NodePanicked { node: p as i64 }),
                Some(wr) => {
                    if wr.jobs.len() != jobs.len() {
                        consider(&MachineError::PlanMismatch(format!(
                            "node {p} replied with {} job results for a {}-job wave",
                            wr.jobs.len(),
                            jobs.len()
                        )));
                        continue;
                    }
                    for jr in &wr.jobs {
                        if let Err(e) = &jr.res {
                            consider(e);
                        }
                    }
                }
            }
        }
    }

    // validate every write of every job before committing any
    if first_err.is_none() {
        'validate: for (j, job) in jobs.iter().enumerate() {
            let lhs = &job.plan.lhs_array;
            for (p, r) in replies.iter().enumerate() {
                let Some(wr) = r else { continue };
                let len = master[p].get(lhs).map_or(0, Vec::len);
                for w in &wr.jobs[j].writes {
                    let bad = match w {
                        WriteOp::El(off, _) => (*off >= len).then_some((*off, 1usize)),
                        WriteOp::Dense { base, values } => {
                            (base + values.len() > len).then_some((*base, values.len()))
                        }
                    };
                    if let Some((off, span)) = bad {
                        first_err = Some(MachineError::PlanMismatch(format!(
                            "write span [{off}, {}) outside node {p}'s local part (len {len})",
                            off + span
                        )));
                        break 'validate;
                    }
                }
            }
        }
    }
    let commit = first_err.is_none();

    // commit staging is ordinal-keyed: job j's writes land before job
    // j+1's, so the final image equals strict sequential execution even
    // if two jobs wrote the same element (the DAG builder never
    // schedules such jobs in one wave; this is defense in depth)
    if commit {
        for (j, job) in jobs.iter().enumerate() {
            let lhs = &job.plan.lhs_array;
            for (p, r) in replies.iter_mut().enumerate() {
                let Some(wr) = r else { continue };
                let Some(part) = master[p].get_mut(lhs) else {
                    continue;
                };
                for w in std::mem::take(&mut wr.jobs[j].writes) {
                    match w {
                        WriteOp::El(off, v) => part[off] = v, // validated above
                        WriteOp::Dense { base, values } => {
                            part[base..base + values.len()].copy_from_slice(&values)
                        }
                    }
                }
            }
        }
    }

    // reassemble (on error: the parts were never touched → pre-wave)
    for name in referenced {
        let parts: Vec<Vec<f64>> = master
            .iter_mut()
            .map(|m| m.remove(name).unwrap_or_default())
            .collect();
        arrays.insert(
            name.clone(),
            DistArray::from_parts(decomps[name].clone(), parts),
        );
    }

    let mut reports = Vec::with_capacity(jobs.len());
    for j in 0..jobs.len() {
        let mut report = ExecReport::default();
        for r in &replies {
            match r {
                Some(wr) => {
                    report.nodes.push(wr.jobs[j].stats);
                    report.traffic.push(wr.jobs[j].sent_to.clone());
                }
                None => {
                    report.nodes.push(NodeStats::default());
                    report.traffic.push(vec![0u64; replies.len()]);
                }
            }
        }
        reports.push(report);
    }
    if let Some(t0) = commit_t0 {
        tracer.timing(crate::obs::HOST, Phase::Commit, t0.elapsed());
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(reports),
    }
}

/// The worker-side body of one wave: per-job lanes and seq windows
/// derived from the jobs' plans, then two passes — every job's send
/// phase first (pre-posting all boundary frames), then every job's
/// update phase in wave order — and one `Done` + drain for the whole
/// wave. Pre-posting means an update's receives almost never block on
/// a peer still parked in an earlier job, which matters most on an
/// oversubscribed host. After any job fails, the remaining jobs on
/// this node are skipped (their results carry the first failure) and
/// the wave aborts all-or-nothing.
fn wave_worker_body(
    p: i64,
    ep: &mut Endpoint<Wire>,
    scratch: &mut Scratch,
    buf: &BufTracer,
    ctx: &WaveCtx,
    locals: Vec<BTreeMap<String, Vec<f64>>>,
) -> WaveReply {
    let pu = p as usize;
    let pmax = ep.peer_count();
    let lanes: Vec<JobLane> = ctx
        .jobs
        .iter()
        .map(|job| {
            let cn = &job.compiled.nodes[pu];
            JobLane {
                src_ord: cn.src_ord.clone(),
                pending: BTreeMap::new(),
                staging: cn.staging_runs.iter().map(|&n| vec![None; n]).collect(),
            }
        })
        .collect();
    // cumulative planned data frames per source: element mode sends one
    // frame per element, vectorized one per planned run — mirrored
    // exactly by the sender's send phase, which walks the same pair
    // sets in the same order
    let mut cuts: Vec<Vec<u64>> = vec![vec![0]; pmax];
    for job in &ctx.jobs {
        let node = &job.plan.nodes[pu];
        let mut from = vec![0u64; pmax];
        for pair in &node.comm.recvs {
            let frames = match ctx.opts.mode {
                CommMode::Element => pair.runs.iter().map(|r| r.count.max(0) as u64).sum::<u64>(),
                CommMode::Vectorized => pair.runs.len() as u64,
            };
            if let Ok(src) = usize::try_from(pair.peer) {
                if src < pmax {
                    from[src] += frames;
                }
            }
        }
        for (src, col) in cuts.iter_mut().enumerate() {
            let last = col.last().copied().unwrap_or(0);
            col.push(last + from[src]);
        }
    }
    let mut wr = WaveRecv {
        cur: 0,
        lanes,
        cuts,
    };
    let njobs = ctx.jobs.len();
    let mut jobs_out: Vec<JobReply> = Vec::with_capacity(njobs);
    let mut first_fail: Option<MachineError> = None;
    let mut panicked = false;
    let mut locals = locals;
    let mut stats_v = vec![NodeStats::default(); njobs];
    let mut sent_v = vec![vec![0u64; pmax]; njobs];
    let mut send_buf: Vec<BufInner> = Vec::with_capacity(njobs);
    // pass 1 — post *every* job's boundary sends before any update
    // phase blocks on a receive: on an oversubscribed host this turns
    // k send→recv thread handoffs into one wave-wide exchange. The
    // per-source seq-window cuts route early frames to the right job
    // lane, so arrival before the consuming job starts is fine.
    for (j, (prepared, job_locals)) in ctx.jobs.iter().zip(locals.iter_mut()).enumerate() {
        let res = if first_fail.is_some() {
            Ok(())
        } else {
            let stats = &mut stats_v[j];
            let sent_to = &mut sent_v[j];
            let phases = catch_unwind(AssertUnwindSafe(|| {
                warm_phases(
                    p,
                    job_locals,
                    prepared,
                    &ctx.opts,
                    ep,
                    scratch,
                    None,
                    stats,
                    sent_to,
                    buf,
                    PhaseSpan::SendOnly,
                )
            }));
            match phases {
                Ok(r) => r,
                Err(_) => {
                    panicked = true;
                    Err(MachineError::NodePanicked { node: p })
                }
            }
        };
        if let Err(e) = res {
            if first_fail.is_none() {
                first_fail = Some(e);
            }
        }
        send_buf.push(buf.take());
    }
    // pass 2 — run each job's update phase in wave order, consuming
    // through its lane. Buffered per-job events replay host-side as
    // send-then-update per job, so the canonical trace is identical to
    // the interleaved schedule's.
    for (j, (prepared, job_locals)) in ctx.jobs.iter().zip(locals.iter_mut()).enumerate() {
        wr.cur = j;
        reset_scratch(scratch, prepared, p);
        let mut stats = std::mem::take(&mut stats_v[j]);
        let sent_to = std::mem::take(&mut sent_v[j]);
        let res = match &first_fail {
            Some(e) => Err(e.clone()),
            None => {
                let phases = catch_unwind(AssertUnwindSafe(|| {
                    warm_phases(
                        p,
                        job_locals,
                        prepared,
                        &ctx.opts,
                        ep,
                        scratch,
                        Some(&mut wr),
                        &mut stats,
                        &mut [],
                        buf,
                        PhaseSpan::UpdateOnly,
                    )
                }));
                match phases {
                    Ok(r) => r,
                    Err(_) => {
                        panicked = true;
                        Err(MachineError::NodePanicked { node: p })
                    }
                }
            }
        };
        if res.is_err() {
            scratch.writes.clear();
            if first_fail.is_none() {
                first_fail = res.as_ref().err().cloned();
            }
        }
        let BufInner {
            mut events,
            mut timings,
        } = std::mem::take(&mut send_buf[j]);
        let BufInner {
            events: up_events,
            timings: up_timings,
        } = buf.take();
        events.extend(up_events);
        timings.extend(up_timings);
        jobs_out.push(JobReply {
            writes: std::mem::take(&mut scratch.writes),
            stats,
            sent_to,
            res,
            events,
            timings,
        });
    }
    ep.announce_done();
    if !panicked {
        // drain stats land on the wave's last job, mirroring how a solo
        // run charges its own drain
        let mut fallback = NodeStats::default();
        let dstats = jobs_out
            .last_mut()
            .map_or(&mut fallback, |last| &mut last.stats);
        if ctx.trace_on {
            buf.record(p, EventKind::PhaseStart(Phase::Drain));
            let t0 = std::time::Instant::now();
            ep.drain(ctx.opts.recv_timeout, dstats);
            buf.timing(p, Phase::Drain, t0.elapsed());
            buf.record(p, EventKind::PhaseEnd(Phase::Drain));
        } else {
            ep.drain(ctx.opts.recv_timeout, dstats);
        }
    }
    let BufInner { events, timings } = buf.take();
    WaveReply {
        jobs: jobs_out,
        drain_events: events,
        drain_timings: timings,
    }
}

impl Drop for DistExecutor {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Per-worker scratch reused (cleared, not reallocated) across runs.
/// Shared with the process-backed pool (`crate::proc`), whose workers
/// carry one across jobs exactly like a pooled thread does.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Element mode: out-of-order arrivals keyed `(slot, i)`.
    pending: BTreeMap<(usize, i64), f64>,
    /// Vectorized mode: `staging[source ordinal][run]` packet values.
    staging: Vec<Vec<Option<Vec<f64>>>>,
    /// Operand values of the current iteration, one per read slot.
    vals: Vec<f64>,
    /// Kernel evaluation stack (compiled path), reused across runs.
    stack: Vec<f64>,
    /// Collected local writes, committed by the host.
    pub(crate) writes: Vec<WriteOp>,
}

/// Size (and clear) a worker's scratch for one prepared plan — shared
/// by the pooled-thread and pooled-process workers so both reuse
/// buffers instead of reallocating per run.
pub(crate) fn reset_scratch(scratch: &mut Scratch, prepared: &PreparedPlan, p: i64) {
    let cn = &prepared.compiled.nodes[p as usize];
    scratch.pending.clear();
    scratch.staging.resize_with(cn.staging_runs.len(), Vec::new);
    for (row, &nruns) in scratch.staging.iter_mut().zip(&cn.staging_runs) {
        row.resize(nruns, None);
        row.truncate(nruns);
        for cell in row.iter_mut() {
            *cell = None;
        }
    }
    scratch.vals.clear();
    scratch
        .vals
        .resize(prepared.plan.nodes[p as usize].resides.len(), 0.0);
    scratch.writes.clear();
}

/// The body of one pooled node thread: park on the job channel, and for
/// each job reset the endpoint + scratch, run the warm phases under the
/// panic supervisor, drain, and ship the outcome (plus buffered trace)
/// back to the host.
fn worker_main(
    p: i64,
    txs: Vec<Sender<Frame<Wire>>>,
    data_rx: Receiver<Frame<Wire>>,
    job_rx: Receiver<Cmd>,
    reply_tx: Sender<WorkerMsg>,
) {
    let buf = BufTracer::new();
    let mut ep: Endpoint<Wire> = Endpoint::in_proc(p, txs, data_rx, None, &buf);
    let mut scratch = Scratch::default();
    while let Ok(cmd) = job_rx.recv() {
        let job = match cmd {
            Cmd::Job(job) => job,
            Cmd::Wave(wj) => {
                let ctx = Arc::clone(&wj.ctx);
                buf.set_enabled(ctx.trace_on);
                ep.reset(ctx.opts.faults, ctx.trace_on);
                if ctx.handshake {
                    // same purge + Ready/Go barrier as a single job
                    ep.purge_link();
                    if reply_tx.send(WorkerMsg::Ready).is_err() {
                        break;
                    }
                    match job_rx.recv() {
                        Ok(Cmd::Go) => {}
                        Ok(Cmd::Job(_) | Cmd::Wave(_)) | Err(_) => break,
                    }
                }
                let reply = wave_worker_body(p, &mut ep, &mut scratch, &buf, &ctx, wj.locals);
                if reply_tx.send(WorkerMsg::WaveDone(Box::new(reply))).is_err() {
                    break;
                }
                continue;
            }
            Cmd::Go => continue, // stray Go (host retired us mid-handshake)
        };
        let ctx = job.ctx;
        let mut locals = job.locals;
        buf.set_enabled(ctx.trace_on);
        ep.reset(ctx.opts.faults, ctx.trace_on);
        if ctx.handshake {
            // discard frames a previous (failed or faulty) run left
            // behind; every peer finished that run before the host
            // dispatched this one, so anything buffered here is stale by
            // construction — and the Ready/Go barrier below keeps new
            // frames off the wire until every peer's purge is complete
            ep.purge_link();
        }

        let prepared = &ctx.prepared;
        reset_scratch(&mut scratch, prepared, p);

        let mut stats = NodeStats::default();
        let mut sent_to = vec![0u64; ep.peer_count()];
        let trace_on = ctx.trace_on;

        if ctx.handshake {
            // purge complete: report ready, then hold all sends until
            // every peer has purged too
            if reply_tx.send(WorkerMsg::Ready).is_err() {
                break; // host hung up
            }
            match job_rx.recv() {
                Ok(Cmd::Go) => {}
                Ok(Cmd::Job(_) | Cmd::Wave(_)) | Err(_) => break, // handshake broken
            }
        }

        let phases = catch_unwind(AssertUnwindSafe(|| {
            warm_phases(
                p,
                &mut locals,
                prepared,
                &ctx.opts,
                &mut ep,
                &mut scratch,
                None,
                &mut stats,
                &mut sent_to,
                &buf,
                PhaseSpan::Full,
            )
        }));
        let res = match phases {
            Ok(r) => {
                ep.announce_done();
                if trace_on {
                    buf.record(p, EventKind::PhaseStart(Phase::Drain));
                    let t0 = std::time::Instant::now();
                    ep.drain(ctx.opts.recv_timeout, &mut stats);
                    buf.timing(p, Phase::Drain, t0.elapsed());
                    buf.record(p, EventKind::PhaseEnd(Phase::Drain));
                } else {
                    ep.drain(ctx.opts.recv_timeout, &mut stats);
                }
                r
            }
            Err(_) => {
                // mirror the cold supervisor: announce completion so
                // peers stop waiting, service nothing, report typed
                ep.announce_done();
                Err(MachineError::NodePanicked { node: p })
            }
        };
        if res.is_err() {
            scratch.writes.clear();
        }
        let BufInner { events, timings } = buf.take();
        let outcome = (
            p,
            locals,
            std::mem::take(&mut scratch.writes),
            stats,
            sent_to,
            res,
        );
        if reply_tx
            .send(WorkerMsg::Done(Box::new(Reply {
                outcome,
                events,
                timings,
            })))
            .is_err()
        {
            break; // host hung up
        }
    }
}

/// Which half of a warm run to execute. A solo run is always
/// [`PhaseSpan::Full`]; the wave worker splits the run so it can post
/// *every* job's boundary sends before any job's update phase blocks
/// on a receive — on an oversubscribed host that collapses the
/// per-job send/recv thread ping-pong into one wave-wide exchange.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseSpan {
    Full,
    SendOnly,
    UpdateOnly,
}

/// The send + update phases of one warm run. This mirrors the cold
/// path's `node_phases` statement for statement — same events, same
/// statistics, same error mapping — but drives every loop from the
/// compiled run tables instead of re-deriving the closed forms, and
/// receives through the persistent scratch instead of per-run state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn warm_phases(
    p: i64,
    locals: &mut BTreeMap<String, Vec<f64>>,
    prepared: &PreparedPlan,
    opts: &DistOptions,
    ep: &mut Endpoint<Wire>,
    scratch: &mut Scratch,
    wave: Option<&mut WaveRecv>,
    stats: &mut NodeStats,
    sent_to: &mut [u64],
    tracer: &dyn Tracer,
    span: PhaseSpan,
) -> Result<(), MachineError> {
    let plan = &prepared.plan;
    let node = &plan.nodes[p as usize];
    let cn = &prepared.compiled.nodes[p as usize];
    let rexpr = &prepared.rexprs[p as usize];
    let rguard = &prepared.rguards[p as usize];
    let decomps = &prepared.decomps;
    let dec_lhs = &prepared.dec_lhs;
    let Scratch {
        pending,
        staging,
        vals,
        stack,
        writes,
    } = scratch;
    // wave jobs receive through their per-job lane in the shared
    // router; a solo run uses the scratch buffers directly
    let mut rcv = match wave {
        Some(w) => RecvCtx::Wave(w),
        None => RecvCtx::Single { pending, staging },
    };
    // same gating as the cold machine: the kernel exists iff every
    // schedule is closed-form and the expression compiled, so cold and
    // warm runs take the same path (and record the same trace) per plan
    let exec = prepared.compiled.kernel.as_ref().map(|k| (cn, k));

    if span != PhaseSpan::SendOnly {
        // the modify guard work is charged to the update half, once
        stats.guard_tests += cn.modify_work;
    }
    let trace_on = tracer.enabled();

    // ---- send phase: Reside_p ∩ Modify_q, q ≠ p -------------------------
    if span != PhaseSpan::UpdateOnly {
        if trace_on {
            tracer.record(p, EventKind::PhaseStart(Phase::Send));
        }
        let send_t0 = trace_on.then(std::time::Instant::now);
        match (opts.mode, exec) {
            (CommMode::Element, Some((cn, _))) => {
                send_phase_element_compiled(
                    p, locals, node, cn, decomps, ep, stats, sent_to, tracer,
                );
            }
            (CommMode::Element, None) => {
                for (slot, rp) in node.resides.iter().enumerate() {
                    let Some(runs) = &cn.resides[slot] else {
                        continue; // replicated: never sent
                    };
                    stats.guard_tests += cn.reside_work[slot];
                    let dec_r = &decomps[&rp.array];
                    let local_part = &locals[&rp.array];
                    for_each_run(runs, |i| {
                        let owner = dec_lhs.proc_of(plan.f.eval(i));
                        if owner != p {
                            let g = rp.g.eval(i);
                            let value = local_part[dec_r.local_of(g) as usize];
                            ep.send(owner as usize, Wire::Elem(Msg { slot, i, value }));
                            if trace_on {
                                tracer.record(
                                    p,
                                    EventKind::ElemSend {
                                        dst: owner,
                                        slot,
                                        i,
                                    },
                                );
                            }
                            sent_to[owner as usize] += 1;
                            stats.msgs_sent += 1;
                            stats.packets_sent += 1;
                            stats.bytes_sent += ELEM_MSG_BYTES;
                            stats.max_packet_elems = stats.max_packet_elems.max(1);
                        }
                    });
                }
            }
            (CommMode::Vectorized, _) => {
                for pair in &node.comm.sends {
                    for (run_ord, run) in pair.runs.iter().enumerate() {
                        let rp = &node.resides[run.slot];
                        let dec_r = &decomps[&rp.array];
                        let local_part = &locals[&rp.array];
                        let mut values = Vec::with_capacity(run.count as usize);
                        run.for_each(|i| {
                            values.push(local_part[dec_r.local_of(rp.g.eval(i)) as usize]);
                        });
                        let elems = values.len() as u64;
                        ep.send(pair.peer as usize, Wire::Pack { run_ord, values });
                        if trace_on {
                            tracer.record(
                                p,
                                EventKind::PackSend {
                                    dst: pair.peer,
                                    run: run_ord,
                                    elems,
                                    bytes: PACK_HEADER_BYTES + 8 * elems,
                                },
                            );
                        }
                        sent_to[pair.peer as usize] += elems;
                        stats.msgs_sent += elems;
                        stats.packets_sent += 1;
                        stats.bytes_sent += PACK_HEADER_BYTES + 8 * elems;
                        stats.max_packet_elems = stats.max_packet_elems.max(elems);
                    }
                }
            }
        }
        ep.end_send_phase(); // flush delayed packets; crash point
        if let Some(t0) = send_t0 {
            tracer.timing(p, Phase::Send, t0.elapsed());
            tracer.record(p, EventKind::PhaseEnd(Phase::Send));
        }
    }
    if span == PhaseSpan::SendOnly {
        return Ok(());
    }

    // ---- update phase: Modify_p -----------------------------------------
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Update));
    }
    let update_t0 = trace_on.then(std::time::Instant::now);

    // compiled path: fused/bytecode kernels over the interior/boundary
    // exec runs — never touches the tree interpreter
    if let Some((cn, kernel)) = exec {
        stack.clear();
        stack.reserve(kernel.stack_capacity());
        let res = exec_update_phase(
            p, locals, node, cn, kernel, rguard, ep, &mut rcv, vals, stack, opts, stats, writes,
            tracer,
        );
        if let Some(t0) = update_t0 {
            tracer.timing(p, Phase::Update, t0.elapsed());
            tracer.record(p, EventKind::PhaseEnd(Phase::Update));
        }
        return res;
    }

    writes.reserve(cn.modify_iters as usize);
    let mut err: Option<MachineError> = None;

    let n_slots = node.resides.len();
    for_each_run(&cn.modify, |i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        #[allow(clippy::needless_range_loop)] // `vals[slot]` is written, not read
        for slot in 0..n_slots {
            let rp = &node.resides[slot];
            let g = rp.g.eval(i);
            let owner = if rp.replicated {
                p
            } else {
                decomps[&rp.array].proc_of(g)
            };
            vals[slot] = if owner == p {
                stats.local_reads += 1;
                locals[&rp.array][decomps[&rp.array].local_of(g) as usize]
            } else {
                let got = match opts.mode {
                    CommMode::Element => recv_element(ep, &mut rcv, slot, i, owner, opts, stats),
                    CommMode::Vectorized => recv_packed(
                        ep,
                        &mut rcv,
                        &cn.src_ord,
                        &cn.src_peers,
                        &cn.origin,
                        slot,
                        i,
                        opts,
                        stats,
                    ),
                };
                match got {
                    Ok(v) => {
                        if trace_on {
                            tracer.record(
                                p,
                                EventKind::RecvValue {
                                    src: owner,
                                    slot,
                                    i,
                                },
                            );
                        }
                        stats.msgs_received += 1;
                        v
                    }
                    Err(RecvFail::Timeout) => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rp.array.clone(),
                            index: i,
                        });
                        return;
                    }
                    Err(RecvFail::PacketTimeout { peer, run }) => {
                        err = Some(MachineError::MissingPacket {
                            node: p,
                            peer,
                            slot,
                            run,
                        });
                        return;
                    }
                    Err(RecvFail::Exhausted { peer, retries }) => {
                        err = Some(MachineError::Unrecoverable {
                            node: p,
                            peer,
                            retries,
                        });
                        return;
                    }
                    Err(RecvFail::BadWire(why)) => {
                        err = Some(MachineError::PlanMismatch(format!(
                            "node {p}, array `{}`, i={i}: {why}",
                            rp.array
                        )));
                        return;
                    }
                }
            };
        }
        stats.data_guards += 1;
        let guard_ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if guard_ok {
            let v = eval_rexpr(rexpr, i, vals);
            let target = plan.f.eval(i);
            writes.push(WriteOp::El(dec_lhs.local_of(target) as usize, v));
        }
    });
    if let Some(t0) = update_t0 {
        tracer.timing(p, Phase::Update, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Update));
    }

    err.map_or(Ok(()), Err)
}
