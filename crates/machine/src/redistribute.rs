//! Executable dynamic redistribution (Section 5 extension).
//!
//! Takes a [`RedistPlan`] (the compile-time message schedule from
//! `vcal-decomp`) and actually performs it on a [`DistArray`]: every node
//! thread sends its outgoing coalesced runs as single messages, receives
//! the runs destined to it, and copies its stationary elements locally.
//! Returns the re-laid-out array plus an [`ExecReport`] whose traffic
//! matrix can be priced under any [`crate::topology::Topology`].
//!
//! Redistribution traffic rides the same reliable transport as the
//! distributed machines ([`crate::transport`]): runs are sequenced,
//! checksummed, deduplicated, and recovered via NACK/retransmit, and a
//! panicking node surfaces as [`MachineError::NodePanicked`] instead of
//! aborting the host. Configure faults and retries through
//! [`run_redistribution_opts`] — the [`DistOptions::mode`] field is
//! ignored here because redistribution is always run-vectorized.

use crate::darray::DistArray;
use crate::distributed::{DistOptions, PACK_HEADER_BYTES};
use crate::error::MachineError;
use crate::obs::{EventKind, Phase, Tracer, NULL_TRACER};
use crate::stats::{ExecReport, NodeStats};
use crate::transport::{await_until, AwaitFail, Endpoint, Frame, WirePayload};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use vcal_decomp::redistribute::{RedistPlan, Transfer};

/// One coalesced run of values in flight.
#[derive(Debug, Clone)]
struct RunMsg {
    global_start: i64,
    global_stride: i64,
    values: Vec<f64>,
}

impl WirePayload for RunMsg {
    fn digest(&self) -> u64 {
        let mut h = (self.global_start as u64)
            .rotate_left(7)
            .wrapping_add(self.global_stride as u64);
        for v in &self.values {
            h = h.rotate_left(7).wrapping_add(v.to_bits());
        }
        h
    }

    fn corrupt(&mut self, bits: u64) {
        if self.values.is_empty() {
            self.global_start ^= 1 << (bits % 63);
        } else {
            let k = (bits as usize) % self.values.len();
            self.values[k] = f64::from_bits(self.values[k].to_bits() ^ (1 << (bits % 52)));
        }
    }
}

/// Execute a redistribution plan on `src` with default options. The
/// source array's decomposition must equal `plan.from`.
pub fn run_redistribution(
    plan: &RedistPlan,
    src: &DistArray,
) -> Result<(DistArray, ExecReport), MachineError> {
    run_redistribution_opts(plan, src, DistOptions::default())
}

/// Like [`run_redistribution`] but with explicit [`DistOptions`] —
/// receive timeout, seeded fault injection, and retry policy.
/// `opts.mode` is ignored: redistribution always ships coalesced runs.
pub fn run_redistribution_opts(
    plan: &RedistPlan,
    src: &DistArray,
    opts: DistOptions,
) -> Result<(DistArray, ExecReport), MachineError> {
    run_redistribution_traced(plan, src, opts, &NULL_TRACER)
}

/// Like [`run_redistribution_opts`] but records [`EventKind::RedistSend`]
/// / [`EventKind::RedistRecv`] events and a per-node
/// [`Phase::Redistribute`] timing through `tracer`.
pub fn run_redistribution_traced(
    plan: &RedistPlan,
    src: &DistArray,
    opts: DistOptions,
    tracer: &dyn Tracer,
) -> Result<(DistArray, ExecReport), MachineError> {
    if src.decomp() != &plan.from {
        return Err(MachineError::PlanMismatch(
            "source array layout differs from the plan's `from` decomposition".into(),
        ));
    }
    let pmax = plan.from.pmax();
    let (_, src_parts) = src.clone().into_parts();
    let (to_dec, mut dst_parts) = DistArray::zeros(plan.to.clone()).into_parts();
    let from_dec = plan.from.clone();

    // group transfers by sender; count expectations per (receiver, sender)
    let mut outgoing: Vec<Vec<&Transfer>> = vec![Vec::new(); pmax as usize];
    let mut incoming_from: Vec<Vec<usize>> = vec![vec![0usize; pmax as usize]; pmax as usize];
    for t in &plan.transfers {
        outgoing[t.src as usize].push(t);
        incoming_from[t.dst as usize][t.src as usize] += 1;
    }

    let mut txs: Vec<Sender<Frame<RunMsg>>> = Vec::with_capacity(pmax as usize);
    let mut rxs: Vec<Receiver<Frame<RunMsg>>> = Vec::with_capacity(pmax as usize);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    type NodeOut = (i64, Vec<f64>, NodeStats, Result<(), MachineError>);
    let mut results: Vec<NodeOut> = Vec::with_capacity(pmax as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, (src_local, dst_local)) in
            src_parts.into_iter().zip(dst_parts.drain(..)).enumerate()
        {
            let p = p as i64;
            let rx = rxs.remove(0);
            let txs = txs.clone();
            let my_out = std::mem::take(&mut outgoing[p as usize]);
            let n_in_from = std::mem::take(&mut incoming_from[p as usize]);
            let from_dec = &from_dec;
            let to_dec = &to_dec;
            handles.push(scope.spawn(move || {
                redistribute_node(
                    p, src_local, dst_local, rx, txs, my_out, n_in_from, from_dec, to_dec, &opts,
                    tracer,
                )
            }));
        }
        drop(txs);
        for (p, h) in handles.into_iter().enumerate() {
            results.push(h.join().unwrap_or_else(|_| {
                (
                    p as i64,
                    Vec::new(),
                    NodeStats::default(),
                    Err(MachineError::NodePanicked { node: p as i64 }),
                )
            }));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // a panic is the root cause; it wins over the errors it induces
    let mut first_err: Option<MachineError> = None;
    for (.., res) in &results {
        if let Err(e) = res {
            match (&first_err, e) {
                (None, _) => first_err = Some(e.clone()),
                (Some(MachineError::NodePanicked { .. }), _) => {}
                (Some(_), MachineError::NodePanicked { .. }) => first_err = Some(e.clone()),
                _ => {}
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e); // `src` is untouched — nothing to restore
    }

    // traffic matrix from the plan (sender-side truth)
    let mut traffic = vec![vec![0u64; pmax as usize]; pmax as usize];
    for t in &plan.transfers {
        traffic[t.src as usize][t.dst as usize] += 1;
    }

    let mut report = ExecReport {
        traffic,
        ..Default::default()
    };
    let mut parts = Vec::with_capacity(pmax as usize);
    for (_, local, stats, _) in results {
        parts.push(local);
        report.nodes.push(stats);
    }
    Ok((DistArray::from_parts(plan.to.clone(), parts), report))
}

/// One redistribution node: local copies, send runs, receive owed runs
/// — all under the transport's recovery and this crate's panic guard.
#[allow(clippy::too_many_arguments)]
fn redistribute_node(
    p: i64,
    src_local: Vec<f64>,
    mut dst_local: Vec<f64>,
    rx: Receiver<Frame<RunMsg>>,
    txs: Vec<Sender<Frame<RunMsg>>>,
    my_out: Vec<&Transfer>,
    n_in_from: Vec<usize>,
    from_dec: &vcal_decomp::Decomp1,
    to_dec: &vcal_decomp::Decomp1,
    opts: &DistOptions,
    tracer: &dyn Tracer,
) -> (i64, Vec<f64>, NodeStats, Result<(), MachineError>) {
    let mut stats = NodeStats::default();
    let mut ep = Endpoint::in_proc(p, txs, rx, opts.faults, tracer);
    let trace_on = tracer.enabled();
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Redistribute));
    }
    let redist_t0 = trace_on.then(std::time::Instant::now);

    let phases = catch_unwind(AssertUnwindSafe(|| {
        // 1. local (stationary) copies: globals owned by p in both
        for l in 0..from_dec.local_count(p) {
            let g = from_dec.global_of(p, l);
            if to_dec.proc_of(g) == p {
                dst_local[to_dec.local_of(g) as usize] = src_local[l as usize];
                stats.local_reads += 1;
            }
        }
        // 2. send outgoing runs (one packet per coalesced run)
        for t in &my_out {
            let values: Vec<f64> = (0..t.count)
                .map(|k| {
                    let g = t.global_start + k * t.global_stride;
                    src_local[from_dec.local_of(g) as usize]
                })
                .collect();
            stats.msgs_sent += 1;
            stats.packets_sent += 1;
            stats.bytes_sent += PACK_HEADER_BYTES + 8 * values.len() as u64;
            stats.max_packet_elems = stats.max_packet_elems.max(values.len() as u64);
            if trace_on {
                tracer.record(
                    p,
                    EventKind::RedistSend {
                        dst: t.dst,
                        elems: values.len() as u64,
                    },
                );
            }
            ep.send(
                t.dst as usize,
                RunMsg {
                    global_start: t.global_start,
                    global_stride: t.global_stride,
                    values,
                },
            );
        }
        ep.end_send_phase();
        // 3. receive my incoming runs, per owing source
        let mut staged: Vec<VecDeque<RunMsg>> =
            (0..n_in_from.len()).map(|_| VecDeque::new()).collect();
        for (srcp, &need) in n_in_from.iter().enumerate() {
            for _ in 0..need {
                let msg = await_until(
                    &mut ep,
                    srcp as i64,
                    opts.recv_timeout,
                    opts.retry,
                    &mut stats,
                    &mut staged,
                    |staged| staged[srcp].pop_front().map(Ok),
                    |staged, s, _seq, m| {
                        staged
                            .get_mut(s as usize)
                            .ok_or("run from unknown source")?
                            .push_back(m);
                        Ok(())
                    },
                )
                .map_err(|e| match e {
                    AwaitFail::Timeout => MachineError::Unrecoverable {
                        node: p,
                        peer: srcp as i64,
                        retries: 0,
                    },
                    AwaitFail::Exhausted { retries } => MachineError::Unrecoverable {
                        node: p,
                        peer: srcp as i64,
                        retries,
                    },
                    AwaitFail::BadWire(w) => MachineError::PlanMismatch(format!("node {p}: {w}")),
                })?;
                stats.msgs_received += 1;
                if trace_on {
                    tracer.record(
                        p,
                        EventKind::RedistRecv {
                            src: srcp as i64,
                            elems: msg.values.len() as u64,
                        },
                    );
                }
                for (k, v) in msg.values.iter().enumerate() {
                    let g = msg.global_start + k as i64 * msg.global_stride;
                    dst_local[to_dec.local_of(g) as usize] = *v;
                }
            }
        }
        Ok(())
    }));
    let res = match phases {
        Ok(r) => {
            ep.announce_done();
            ep.drain(opts.recv_timeout, &mut stats);
            r
        }
        Err(_) => {
            ep.announce_done();
            Err(MachineError::NodePanicked { node: p })
        }
    };
    if let Some(t0) = redist_t0 {
        tracer.timing(p, Phase::Redistribute, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Redistribute));
    }
    (p, dst_local, stats, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{price_traffic, Topology};
    use crate::transport::{FaultPlan, RetryPolicy};
    use std::time::Duration;
    use vcal_core::{Array, Bounds};
    use vcal_decomp::Decomp1;

    fn ramp(n: i64) -> Array {
        Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() * 3 + 1) as f64)
    }

    #[test]
    fn block_to_scatter_preserves_data() {
        let n = 64;
        let from = Decomp1::block(4, Bounds::range(0, n - 1));
        let to = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        let src = DistArray::scatter_from(&ramp(n), from);
        let (dst, report) = run_redistribution(&plan, &src).unwrap();
        assert_eq!(dst.gather().max_abs_diff(&ramp(n)), 0.0);
        assert_eq!(report.total().msgs_sent as usize, plan.message_count());
        assert_eq!(report.total().msgs_received, report.total().msgs_sent);
        // price it on a hypercube
        let cost = price_traffic(Topology::Hypercube, &report.traffic);
        assert_eq!(cost.messages as usize, plan.message_count());
        assert!(cost.total_hops >= cost.messages);
    }

    #[test]
    fn roundtrip_back_to_original_layout() {
        let n = 100;
        let a = Decomp1::block_scatter(3, 5, Bounds::range(0, n - 1));
        let b = Decomp1::scatter(5, Bounds::range(0, n - 1));
        let src = DistArray::scatter_from(&ramp(n), a.clone());
        let (mid, _) = run_redistribution(&RedistPlan::build(&a, &b), &src).unwrap();
        let (back, _) = run_redistribution(&RedistPlan::build(&b, &a), &mid).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn identity_plan_is_pure_local_copy() {
        let n = 32;
        let d = Decomp1::block(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&d, &d);
        let src = DistArray::scatter_from(&ramp(n), d);
        let (dst, report) = run_redistribution(&plan, &src).unwrap();
        assert_eq!(dst, src);
        assert_eq!(report.total().msgs_sent, 0);
        assert_eq!(report.total().local_reads, n as u64);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let n = 32;
        let d1 = Decomp1::block(4, Bounds::range(0, n - 1));
        let d2 = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&d1, &d2);
        let wrong_src = DistArray::scatter_from(&ramp(n), d2);
        assert!(matches!(
            run_redistribution(&plan, &wrong_src),
            Err(MachineError::PlanMismatch(_))
        ));
    }

    #[test]
    fn faulty_redistribution_recovers() {
        let n = 64;
        let from = Decomp1::block(4, Bounds::range(0, n - 1));
        let to = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        let src = DistArray::scatter_from(&ramp(n), from);
        let opts = DistOptions {
            recv_timeout: Duration::from_secs(5),
            faults: Some(
                FaultPlan::seeded(9)
                    .with_drop(0.15)
                    .with_reorder(0.15)
                    .with_duplicate(0.1),
            ),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let (dst, report) = run_redistribution_opts(&plan, &src, opts).unwrap();
        assert_eq!(dst.gather().max_abs_diff(&ramp(n)), 0.0);
        assert!(report.total().acks_sent > 0);
    }

    #[test]
    fn crashed_redistribution_node_is_typed_error() {
        let n = 64;
        let from = Decomp1::block(4, Bounds::range(0, n - 1));
        let to = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        let src = DistArray::scatter_from(&ramp(n), from);
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(500),
            faults: Some(FaultPlan::seeded(1).with_crash(0, 0)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let err = run_redistribution_opts(&plan, &src, opts).unwrap_err();
        assert_eq!(err, MachineError::NodePanicked { node: 0 });
    }
}
