//! Executable dynamic redistribution (Section 5 extension).
//!
//! Takes a [`RedistPlan`] (the compile-time message schedule from
//! `vcal-decomp`) and actually performs it on a [`DistArray`]: every node
//! thread sends its outgoing coalesced runs as single messages, receives
//! the runs destined to it, and copies its stationary elements locally.
//! Returns the re-laid-out array plus an [`ExecReport`] whose traffic
//! matrix can be priced under any [`crate::topology::Topology`].

use crate::darray::DistArray;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use vcal_decomp::redistribute::{RedistPlan, Transfer};

/// One coalesced run of values in flight.
struct RunMsg {
    global_start: i64,
    global_stride: i64,
    values: Vec<f64>,
}

/// Execute a redistribution plan on `src`. The source array's
/// decomposition must equal `plan.from`.
pub fn run_redistribution(
    plan: &RedistPlan,
    src: &DistArray,
) -> Result<(DistArray, ExecReport), MachineError> {
    if src.decomp() != &plan.from {
        return Err(MachineError::PlanMismatch(
            "source array layout differs from the plan's `from` decomposition".into(),
        ));
    }
    let pmax = plan.from.pmax();
    let (_, src_parts) = src.clone().into_parts();
    let mut dst = DistArray::zeros(plan.to.clone());

    // group transfers by sender and receiver
    let mut outgoing: Vec<Vec<&Transfer>> = vec![Vec::new(); pmax as usize];
    let mut incoming_counts = vec![0usize; pmax as usize];
    for t in &plan.transfers {
        outgoing[t.src as usize].push(t);
        incoming_counts[t.dst as usize] += 1;
    }

    let mut txs: Vec<Sender<RunMsg>> = Vec::with_capacity(pmax as usize);
    let mut rxs: Vec<Receiver<RunMsg>> = Vec::with_capacity(pmax as usize);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let (to_dec, mut dst_parts) = {
        let (d, p) = dst.clone().into_parts();
        (d, p)
    };
    let from_dec = plan.from.clone();

    let mut results: Vec<(i64, Vec<f64>, NodeStats)> = Vec::with_capacity(pmax as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, (src_local, mut dst_local)) in
            src_parts.into_iter().zip(dst_parts.drain(..)).enumerate()
        {
            let p = p as i64;
            let rx = rxs.remove(0);
            let txs = txs.clone();
            let my_out = std::mem::take(&mut outgoing[p as usize]);
            let n_in = incoming_counts[p as usize];
            let from_dec = &from_dec;
            let to_dec = &to_dec;
            handles.push(scope.spawn(move || {
                let mut stats = NodeStats::default();
                // 1. local (stationary) copies: globals owned by p in both
                for l in 0..from_dec.local_count(p) {
                    let g = from_dec.global_of(p, l);
                    if to_dec.proc_of(g) == p {
                        dst_local[to_dec.local_of(g) as usize] = src_local[l as usize];
                        stats.local_reads += 1;
                    }
                }
                // 2. send outgoing runs (one message per coalesced run)
                for t in my_out {
                    let values: Vec<f64> = (0..t.count)
                        .map(|k| {
                            let g = t.global_start + k * t.global_stride;
                            src_local[from_dec.local_of(g) as usize]
                        })
                        .collect();
                    stats.msgs_sent += 1;
                    let _ = txs[t.dst as usize].send(RunMsg {
                        global_start: t.global_start,
                        global_stride: t.global_stride,
                        values,
                    });
                }
                drop(txs);
                // 3. receive my incoming runs
                for _ in 0..n_in {
                    let msg = rx.recv().expect("sender completed before receive");
                    stats.msgs_received += 1;
                    for (k, v) in msg.values.iter().enumerate() {
                        let g = msg.global_start + k as i64 * msg.global_stride;
                        dst_local[to_dec.local_of(g) as usize] = *v;
                    }
                }
                (p, dst_local, stats)
            }));
        }
        drop(txs);
        for h in handles {
            results.push(h.join().expect("redistribution thread panicked"));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // traffic matrix from the plan (sender-side truth)
    let mut traffic = vec![vec![0u64; pmax as usize]; pmax as usize];
    for t in &plan.transfers {
        traffic[t.src as usize][t.dst as usize] += 1;
    }

    let mut report = ExecReport {
        nodes: Vec::new(),
        barriers: 0,
        traffic,
    };
    let mut parts = Vec::with_capacity(pmax as usize);
    for (_, local, stats) in results {
        parts.push(local);
        report.nodes.push(stats);
    }
    dst = DistArray::from_parts(plan.to.clone(), parts);
    Ok((dst, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{price_traffic, Topology};
    use vcal_core::{Array, Bounds};
    use vcal_decomp::Decomp1;

    fn ramp(n: i64) -> Array {
        Array::from_fn(Bounds::range(0, n - 1), |i| (i.scalar() * 3 + 1) as f64)
    }

    #[test]
    fn block_to_scatter_preserves_data() {
        let n = 64;
        let from = Decomp1::block(4, Bounds::range(0, n - 1));
        let to = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&from, &to);
        let src = DistArray::scatter_from(&ramp(n), from);
        let (dst, report) = run_redistribution(&plan, &src).unwrap();
        assert_eq!(dst.gather().max_abs_diff(&ramp(n)), 0.0);
        assert_eq!(report.total().msgs_sent as usize, plan.message_count());
        assert_eq!(report.total().msgs_received, report.total().msgs_sent);
        // price it on a hypercube
        let cost = price_traffic(Topology::Hypercube, &report.traffic);
        assert_eq!(cost.messages as usize, plan.message_count());
        assert!(cost.total_hops >= cost.messages);
    }

    #[test]
    fn roundtrip_back_to_original_layout() {
        let n = 100;
        let a = Decomp1::block_scatter(3, 5, Bounds::range(0, n - 1));
        let b = Decomp1::scatter(5, Bounds::range(0, n - 1));
        let src = DistArray::scatter_from(&ramp(n), a.clone());
        let (mid, _) = run_redistribution(&RedistPlan::build(&a, &b), &src).unwrap();
        let (back, _) = run_redistribution(&RedistPlan::build(&b, &a), &mid).unwrap();
        assert_eq!(back, src);
    }

    #[test]
    fn identity_plan_is_pure_local_copy() {
        let n = 32;
        let d = Decomp1::block(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&d, &d);
        let src = DistArray::scatter_from(&ramp(n), d);
        let (dst, report) = run_redistribution(&plan, &src).unwrap();
        assert_eq!(dst, src);
        assert_eq!(report.total().msgs_sent, 0);
        assert_eq!(report.total().local_reads, n as u64);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let n = 32;
        let d1 = Decomp1::block(4, Bounds::range(0, n - 1));
        let d2 = Decomp1::scatter(4, Bounds::range(0, n - 1));
        let plan = RedistPlan::build(&d1, &d2);
        let wrong_src = DistArray::scatter_from(&ramp(n), d2);
        assert!(matches!(
            run_redistribution(&plan, &wrong_src),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
