//! Real-wire transport backends: Unix-domain sockets and TCP.
//!
//! The topology is a **star**: the host binds one listener (the
//! [`Router`]) and every worker process dials in. Worker-to-worker data
//! frames ride through the router, which routes them by a destination
//! prefix without decoding the payload — so the router works for any
//! machine whose data plane is `Frame<T>` records.
//!
//! The wire format is length-prefixed with integrity and version
//! checks (DESIGN.md §15):
//!
//! ```text
//! magic u32 | kind u8 | len u32 | crc u64 | payload[len]
//! ```
//!
//! * Partial reads are handled by accumulation ([`FrameBuf`]): a read
//!   timeout mid-frame keeps the bytes and resumes, so slow links never
//!   desynchronize the stream.
//! * A bad CRC drops exactly one frame (the length prefix keeps the
//!   stream in sync) — for data frames the PR 2 NACK protocol recovers
//!   it, which is precisely the corruption contract the chaos proxy
//!   tests.
//! * A bad magic means the stream itself lost sync (e.g. a truncated
//!   write followed by more bytes); the connection is poisoned and the
//!   worker reconnects with jittered backoff and a fresh handshake.
//! * Connections open with a version-checked `HELLO{version, node,
//!   pmax}` / `HELLO_OK` exchange; a mismatch is rejected with a
//!   reason string and surfaces as a typed [`MachineError::Transport`].
//!
//! Faults only a real wire can produce — truncated writes, flipped
//! bits, stalls, severed connections — are injected by the byte-level
//! [`ChaosProxy`], seeded and deterministic per worker node like
//! `FaultPlan`'s packet faults.

use crate::codec::{dec_ctrl, dec_frame_bytes, enc_ctrl, enc_frame_bytes, Ctrl, WIRE_VERSION};
use crate::distributed::Wire;
use crate::error::MachineError;
use crate::transport::{
    clamp_prob, jittered_backoff, splitmix64, unit_f64, Frame, Transport, TransportKind,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrd};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// frame layer
// ---------------------------------------------------------------------

/// Stream magic ("vCAL"): resynchronization sentinel of every frame.
const MAGIC: u32 = 0x7643_414C;
/// Frame header bytes: magic + kind + len + crc.
const HEADER: usize = 4 + 1 + 4 + 8;
/// Upper bound on one frame's payload — a sanity rail against parsing
/// garbage as a length, not a protocol limit.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

pub(crate) const K_HELLO: u8 = 1;
pub(crate) const K_HELLO_OK: u8 = 2;
pub(crate) const K_HELLO_REJECT: u8 = 3;
pub(crate) const K_DATA: u8 = 4;
pub(crate) const K_CTRL: u8 = 5;
pub(crate) const K_HEARTBEAT: u8 = 6;
// the serve protocol (client ↔ resident service, DESIGN.md §18) shares
// the frame layer but speaks its own kinds, so a worker dialing a serve
// listener (or vice versa) fails loudly at the handshake
pub(crate) const K_SHELLO: u8 = 7;
pub(crate) const K_SHELLO_OK: u8 = 8;
pub(crate) const K_SHELLO_REJECT: u8 = 9;
pub(crate) const K_SREQ: u8 = 10;
pub(crate) const K_SRESP: u8 = 11;

/// How often an idle worker proves liveness between runs — the default;
/// the service-level override travels on
/// [`crate::transport::ProtoTimeouts`].
pub(crate) const HEARTBEAT_IVL: Duration = Duration::from_millis(200);
/// Reconnect budget of a worker link (attempts, with jittered
/// exponential backoff between them).
const RECONNECT_ATTEMPTS: u32 = 8;
const RECONNECT_BASE: Duration = Duration::from_millis(20);

/// FNV-1a over raw bytes — the per-frame CRC.
fn crc_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assemble one wire frame.
fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc_bytes(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a stream stopped yielding frames.
#[derive(Debug)]
pub(crate) enum NetFail {
    /// Peer closed the connection.
    Eof,
    /// The byte stream lost frame sync (bad magic) — poisoned.
    BadMagic,
    /// An I/O error other than a read timeout.
    Io(std::io::Error),
}

impl std::fmt::Display for NetFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetFail::Eof => write!(f, "peer closed the connection"),
            NetFail::BadMagic => write!(f, "stream lost frame sync (bad magic)"),
            NetFail::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Either kind of stream socket, with the small API surface the frame
/// layer needs.
pub(crate) enum Sock {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Sock {
    fn try_clone(&self) -> std::io::Result<Sock> {
        Ok(match self {
            Sock::Unix(s) => Sock::Unix(s.try_clone()?),
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Sock::Unix(s) => s.set_read_timeout(t),
            Sock::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Sock::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Sock::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.read(buf),
            Sock::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.write(buf),
            Sock::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Unix(s) => s.flush(),
            Sock::Tcp(s) => s.flush(),
        }
    }
}

/// Dial an `"uds:<path>"` or `"tcp:<host:port>"` address.
pub(crate) fn dial(addr: &str) -> std::io::Result<Sock> {
    if let Some(path) = addr.strip_prefix("uds:") {
        Ok(Sock::Unix(UnixStream::connect(path)?))
    } else if let Some(hp) = addr.strip_prefix("tcp:") {
        let s = TcpStream::connect(hp)?;
        s.set_nodelay(true)?;
        Ok(Sock::Tcp(s))
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address `{addr}` is neither uds: nor tcp:"),
        ))
    }
}

/// A bound listener plus its resolved dial address (ephemeral TCP
/// ports and generated UDS paths become concrete here). Removes the
/// UDS socket file on drop.
pub(crate) struct NetListener {
    inner: Listener,
    pub addr: String,
    uds_path: Option<String>,
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Counter making generated UDS paths unique within one process.
static UDS_ORD: AtomicU64 = AtomicU64::new(0);

impl NetListener {
    /// Bind a fresh listener for the backend kind: an abstract-free
    /// temp-dir UDS path, or an ephemeral loopback TCP port.
    pub fn bind(kind: TransportKind) -> std::io::Result<NetListener> {
        match kind {
            TransportKind::Uds => {
                let ord = UDS_ORD.fetch_add(1, AtomicOrd::Relaxed);
                let path = std::env::temp_dir()
                    .join(format!("vcal-{}-{ord}.sock", std::process::id()))
                    .to_string_lossy()
                    .into_owned();
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Ok(NetListener {
                    inner: Listener::Unix(l),
                    addr: format!("uds:{path}"),
                    uds_path: Some(path),
                })
            }
            TransportKind::Tcp | TransportKind::InProc => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = format!("tcp:{}", l.local_addr()?);
                l.set_nonblocking(true)?;
                Ok(NetListener {
                    inner: Listener::Tcp(l),
                    addr,
                    uds_path: None,
                })
            }
        }
    }

    /// Non-blocking accept (the listener is bound non-blocking so
    /// accept loops can poll a shutdown flag).
    pub fn accept(&self) -> std::io::Result<Option<Sock>> {
        match &self.inner {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Sock::Unix(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true)?;
                    Ok(Some(Sock::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Accumulating frame reader: partial reads keep their bytes across
/// calls, so timeouts mid-frame are harmless.
#[derive(Default)]
pub(crate) struct FrameBuf {
    rbuf: Vec<u8>,
}

impl FrameBuf {
    /// Parse one complete frame out of the accumulator, if present.
    /// CRC-mismatched frames are silently skipped (stream stays in
    /// sync); a wrong magic poisons the stream.
    fn pop(&mut self) -> Result<Option<(u8, Vec<u8>)>, NetFail> {
        loop {
            if self.rbuf.len() < HEADER {
                return Ok(None);
            }
            let magic =
                u32::from_le_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]);
            if magic != MAGIC {
                return Err(NetFail::BadMagic);
            }
            let kind = self.rbuf[4];
            let len = u32::from_le_bytes([self.rbuf[5], self.rbuf[6], self.rbuf[7], self.rbuf[8]]);
            if len > MAX_FRAME {
                return Err(NetFail::BadMagic);
            }
            let mut crc = [0u8; 8];
            crc.copy_from_slice(&self.rbuf[9..17]);
            let crc = u64::from_le_bytes(crc);
            let total = HEADER + len as usize;
            if self.rbuf.len() < total {
                return Ok(None);
            }
            let payload = self.rbuf[HEADER..total].to_vec();
            self.rbuf.drain(..total);
            if crc_bytes(&payload) != crc {
                continue; // drop exactly this frame; protocol recovers
            }
            return Ok(Some((kind, payload)));
        }
    }

    /// Produce the next frame, reading from the socket under a total
    /// timeout. `Ok(None)` means the timeout passed with no complete
    /// frame (accumulated partial bytes are kept).
    pub fn next_frame(
        &mut self,
        sock: &mut Sock,
        timeout: Duration,
    ) -> Result<Option<(u8, Vec<u8>)>, NetFail> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.pop()? {
                return Ok(Some(f));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            // a zero read timeout means block-forever on these sockets
            sock.set_read_timeout(Some(left.max(Duration::from_millis(1))))
                .map_err(NetFail::Io)?;
            let mut chunk = [0u8; 16 * 1024];
            match sock.read(&mut chunk) {
                Ok(0) => return Err(NetFail::Eof),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetFail::Io(e)),
            }
        }
    }
}

/// Write one frame; `write_all` already loops over partial writes and
/// retries `Interrupted`.
pub(crate) fn write_frame(sock: &mut Sock, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    sock.write_all(&frame_bytes(kind, payload))
}

fn enc_hello(node: i64, pmax: usize) -> Vec<u8> {
    let mut b = Vec::with_capacity(20);
    b.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    b.extend_from_slice(&node.to_le_bytes());
    b.extend_from_slice(&(pmax as u64).to_le_bytes());
    b
}

fn dec_hello(p: &[u8]) -> Option<(u32, i64, usize)> {
    if p.len() != 20 {
        return None;
    }
    let version = u32::from_le_bytes([p[0], p[1], p[2], p[3]]);
    let mut n = [0u8; 8];
    n.copy_from_slice(&p[4..12]);
    let node = i64::from_le_bytes(n);
    let mut m = [0u8; 8];
    m.copy_from_slice(&p[12..20]);
    Some((version, node, u64::from_le_bytes(m) as usize))
}

// ---------------------------------------------------------------------
// host side: the router
// ---------------------------------------------------------------------

/// What the router surfaces to the host's supervision loop.
pub(crate) enum RouterEvent {
    /// A worker completed the version handshake (first connect or a
    /// chaos-severed link reconnecting).
    Hello { node: i64 },
    /// A control-plane message from a worker.
    Ctrl { node: i64, ctrl: Ctrl },
    /// A worker's connection closed or failed. Not death by itself —
    /// the supervisor pairs this with `Child::try_wait` (a severed
    /// link reconnects; a dead process never does).
    Eof { node: i64 },
}

/// The host's star hub: accepts worker connections, runs the
/// handshake, routes data frames between workers by destination
/// prefix, and forwards control frames to the supervision loop.
pub(crate) struct Router {
    /// The dial address workers are given.
    pub addr: String,
    events: Receiver<RouterEvent>,
    writers: Arc<Vec<Mutex<Option<Sock>>>>,
    stop: Arc<AtomicBool>,
}

impl Router {
    /// Bind and start accepting for a `pmax`-worker session.
    pub fn bind(kind: TransportKind, pmax: usize) -> Result<Router, MachineError> {
        let listener = NetListener::bind(kind).map_err(|e| MachineError::Transport {
            node: -1,
            detail: format!("bind failed: {e}"),
        })?;
        let addr = listener.addr.clone();
        let (ev_tx, events) = channel();
        let writers: Arc<Vec<Mutex<Option<Sock>>>> =
            Arc::new((0..pmax).map(|_| Mutex::new(None)).collect());
        let stop = Arc::new(AtomicBool::new(false));
        {
            let writers = Arc::clone(&writers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, pmax, ev_tx, writers, stop));
        }
        Ok(Router {
            addr,
            events,
            writers,
            stop,
        })
    }

    /// Next supervision event, or `None` on timeout.
    pub fn recv_event(&self, timeout: Duration) -> Option<RouterEvent> {
        match self.events.recv_timeout(timeout) {
            Ok(e) => Some(e),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Reliable control send to one worker.
    pub fn send_ctrl(&self, node: i64, ctrl: &Ctrl) -> Result<(), MachineError> {
        let bytes = enc_ctrl(ctrl).map_err(|e| MachineError::Transport {
            node,
            detail: e.to_string(),
        })?;
        let mut slot = lock(&self.writers[node as usize]);
        let sock = slot.as_mut().ok_or_else(|| MachineError::Transport {
            node,
            detail: "worker not connected".to_string(),
        })?;
        write_frame(sock, K_CTRL, &bytes).map_err(|e| {
            *slot = None;
            MachineError::Transport {
                node,
                detail: format!("control send failed: {e}"),
            }
        })
    }

    /// Synthesize `Done { from: dead }` to every *other* worker so
    /// peers stop waiting on a node whose process died (the in-process
    /// supervisor gets this for free from the panicking node's own
    /// `announce_done`).
    pub fn broadcast_done(&self, dead: i64) {
        let body = crate::codec::enc_done_frame(dead);
        for (w, slot) in self.writers.iter().enumerate() {
            if w as i64 == dead {
                continue;
            }
            if let Some(sock) = lock(slot).as_mut() {
                let _ = write_frame(sock, K_DATA, &body);
            }
        }
    }

    /// Sever a worker's link from the host side (teardown).
    pub fn disconnect(&self, node: i64) {
        if let Some(s) = lock(&self.writers[node as usize]).take() {
            s.shutdown();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop.store(true, AtomicOrd::Relaxed);
        for slot in self.writers.iter() {
            if let Some(s) = lock(slot).take() {
                s.shutdown();
            }
        }
    }
}

/// Mutex lock that survives a poisoned peer thread (the router must
/// keep routing even if one reader panicked mid-lock).
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn accept_loop(
    listener: NetListener,
    pmax: usize,
    ev_tx: Sender<RouterEvent>,
    writers: Arc<Vec<Mutex<Option<Sock>>>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(AtomicOrd::Relaxed) {
        match listener.accept() {
            Ok(Some(sock)) => {
                let ev_tx = ev_tx.clone();
                let writers = Arc::clone(&writers);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || conn_loop(sock, pmax, ev_tx, writers, stop));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => break,
        }
    }
}

/// One accepted connection: handshake, register the write half, then
/// route frames until the link dies.
fn conn_loop(
    mut sock: Sock,
    pmax: usize,
    ev_tx: Sender<RouterEvent>,
    writers: Arc<Vec<Mutex<Option<Sock>>>>,
    stop: Arc<AtomicBool>,
) {
    let mut fbuf = FrameBuf::default();
    // --- handshake: first frame must be a well-formed, version-matched HELLO
    let node = match fbuf.next_frame(&mut sock, Duration::from_secs(5)) {
        Ok(Some((K_HELLO, p))) => match dec_hello(&p) {
            Some((v, _, _)) if v != WIRE_VERSION => {
                let reason = format!("wire version {v} != host version {WIRE_VERSION}");
                let _ = write_frame(&mut sock, K_HELLO_REJECT, reason.as_bytes());
                return;
            }
            Some((_, node, wp)) if (0..pmax as i64).contains(&node) && wp == pmax => node,
            Some((_, node, wp)) => {
                let reason = format!("node {node}/pmax {wp} outside session pmax {pmax}");
                let _ = write_frame(&mut sock, K_HELLO_REJECT, reason.as_bytes());
                return;
            }
            None => {
                let _ = write_frame(&mut sock, K_HELLO_REJECT, b"malformed hello");
                return;
            }
        },
        _ => return, // no hello in time, or the link died first
    };
    if write_frame(&mut sock, K_HELLO_OK, &[]).is_err() {
        return;
    }
    match sock.try_clone() {
        Ok(wr) => *lock(&writers[node as usize]) = Some(wr),
        Err(_) => return,
    }
    let _ = ev_tx.send(RouterEvent::Hello { node });

    // --- routing
    loop {
        if stop.load(AtomicOrd::Relaxed) {
            return;
        }
        match fbuf.next_frame(&mut sock, Duration::from_millis(200)) {
            Ok(Some((kind, payload))) => {
                match kind {
                    K_DATA => {
                        // [dst i64][frame bytes] — payload-agnostic routing
                        if payload.len() < 8 {
                            continue;
                        }
                        let mut d = [0u8; 8];
                        d.copy_from_slice(&payload[..8]);
                        let dst = i64::from_le_bytes(d);
                        if !(0..pmax as i64).contains(&dst) {
                            continue;
                        }
                        let mut slot = lock(&writers[dst as usize]);
                        if let Some(w) = slot.as_mut() {
                            // a failed relay is a dropped data frame: the
                            // NACK protocol recovers it once the
                            // destination's link is back
                            if write_frame(w, K_DATA, &payload[8..]).is_err() {
                                *slot = None;
                            }
                        }
                    }
                    K_CTRL => match dec_ctrl(&payload) {
                        Ok(ctrl) => {
                            let _ = ev_tx.send(RouterEvent::Ctrl { node, ctrl });
                        }
                        Err(_) => continue,
                    },
                    K_HEARTBEAT => {}
                    _ => {}
                }
            }
            Ok(None) => continue, // idle: just poll the stop flag
            Err(_) => {
                let _ = ev_tx.send(RouterEvent::Eof { node });
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// worker side: the socket link
// ---------------------------------------------------------------------

/// A worker's single multiplexed connection to the router: the data
/// plane (`Frame<Wire>` to/from peers, via `Transport`) and the
/// control plane (`Ctrl` to/from the host) share it, keyed by frame
/// kind. Transient socket errors trigger bounded reconnect with
/// jittered backoff and a fresh handshake.
pub(crate) struct SockLink {
    addr: String,
    node: i64,
    pmax: usize,
    sock: Option<Sock>,
    fbuf: FrameBuf,
    pending_data: VecDeque<Frame<Wire>>,
    pending_ctrl: VecDeque<Ctrl>,
    reconnects: u32,
    /// Idle-heartbeat interval (the [`HEARTBEAT_IVL`] default until the
    /// spawning pool installs its service-level value).
    hb_ivl: Duration,
}

impl SockLink {
    /// Dial and handshake. A `HELLO_REJECT` (e.g. version mismatch)
    /// comes back as the reject reason.
    pub fn connect(addr: &str, node: i64, pmax: usize) -> Result<SockLink, String> {
        let mut link = SockLink {
            addr: addr.to_string(),
            node,
            pmax,
            sock: None,
            fbuf: FrameBuf::default(),
            pending_data: VecDeque::new(),
            pending_ctrl: VecDeque::new(),
            reconnects: 0,
            hb_ivl: HEARTBEAT_IVL,
        };
        link.dial_hello()?;
        Ok(link)
    }

    /// Override the idle-heartbeat interval (the worker subcommand's
    /// optional fourth argument, from the host's `ProtoTimeouts`).
    pub fn set_heartbeat_ivl(&mut self, ivl: Duration) {
        if !ivl.is_zero() {
            self.hb_ivl = ivl;
        }
    }

    fn dial_hello(&mut self) -> Result<(), String> {
        let mut sock = dial(&self.addr).map_err(|e| format!("dial {}: {e}", self.addr))?;
        write_frame(&mut sock, K_HELLO, &enc_hello(self.node, self.pmax))
            .map_err(|e| format!("hello send: {e}"))?;
        let mut fbuf = FrameBuf::default();
        match fbuf.next_frame(&mut sock, Duration::from_secs(5)) {
            Ok(Some((K_HELLO_OK, _))) => {
                self.fbuf = fbuf;
                self.sock = Some(sock);
                Ok(())
            }
            Ok(Some((K_HELLO_REJECT, reason))) => {
                Err(String::from_utf8_lossy(&reason).into_owned())
            }
            Ok(_) => Err("handshake: unexpected first frame".to_string()),
            Err(e) => Err(format!("handshake: {e}")),
        }
    }

    /// Bounded reconnect with jittered exponential backoff; returns
    /// whether a fresh handshake succeeded.
    fn reconnect(&mut self) -> bool {
        if let Some(s) = self.sock.take() {
            s.shutdown();
        }
        for attempt in 0..RECONNECT_ATTEMPTS {
            self.reconnects = self.reconnects.wrapping_add(1);
            let backoff = RECONNECT_BASE * 2u32.saturating_pow(attempt).min(64);
            std::thread::sleep(jittered_backoff(
                backoff.min(Duration::from_millis(640)),
                50,
                self.node,
                self.reconnects,
            ));
            if self.dial_hello().is_ok() {
                return true;
            }
        }
        false
    }

    /// Send one frame, reconnecting once on a dead link. Data frames
    /// that still fail are dropped (the NACK protocol recovers them);
    /// the caller decides whether a control frame failure is fatal.
    fn send_kind(&mut self, kind: u8, payload: &[u8]) -> bool {
        for _ in 0..2 {
            match self.sock.as_mut() {
                Some(sock) => {
                    if write_frame(sock, kind, payload).is_ok() {
                        return true;
                    }
                    if !self.reconnect() {
                        return false;
                    }
                }
                None => {
                    if !self.reconnect() {
                        return false;
                    }
                }
            }
        }
        false
    }

    /// Pump one incoming frame within `slice` into the right queue.
    /// Returns `false` if the link is down and could not be restored.
    fn pump(&mut self, slice: Duration) -> bool {
        let Some(sock) = self.sock.as_mut() else {
            return self.reconnect();
        };
        match self.fbuf.next_frame(sock, slice) {
            Ok(Some((K_DATA, payload))) => {
                if let Ok(f) = dec_frame_bytes(&payload) {
                    self.pending_data.push_back(f);
                }
                true
            }
            Ok(Some((K_CTRL, payload))) => {
                if let Ok(c) = dec_ctrl(&payload) {
                    self.pending_ctrl.push_back(c);
                }
                true
            }
            Ok(Some(_)) | Ok(None) => true,
            Err(_) => self.reconnect(),
        }
    }

    /// Reliable control send (host-bound). Failure after the reconnect
    /// budget means the host is gone — the worker should exit.
    pub fn send_ctrl(&mut self, ctrl: &Ctrl) -> Result<(), String> {
        let bytes = enc_ctrl(ctrl).map_err(|e| e.to_string())?;
        if self.send_kind(K_CTRL, &bytes) {
            Ok(())
        } else {
            Err("control link lost beyond reconnect budget".to_string())
        }
    }

    /// Wait for the next control message, heartbeating while idle so
    /// the host can tell a parked worker from a hung one. `None` means
    /// the link died beyond recovery.
    pub fn recv_ctrl(&mut self, idle_heartbeat: bool) -> Option<Ctrl> {
        loop {
            if let Some(c) = self.pending_ctrl.pop_front() {
                return Some(c);
            }
            if !self.pump(self.hb_ivl) {
                return None;
            }
            if self.pending_ctrl.is_empty() && idle_heartbeat && !self.send_kind(K_HEARTBEAT, &[]) {
                return None;
            }
        }
    }

    /// Heartbeat now (used at run boundaries).
    pub fn heartbeat(&mut self) {
        let _ = self.send_kind(K_HEARTBEAT, &[]);
    }
}

impl Transport<Wire> for &mut SockLink {
    fn peer_count(&self) -> usize {
        self.pmax
    }

    fn send(&mut self, dst: usize, frame: Frame<Wire>) {
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&(dst as i64).to_le_bytes());
        payload.extend_from_slice(&enc_frame_bytes(&frame));
        // a drop here is indistinguishable from wire loss; recovery is
        // the protocol's job
        let _ = self.send_kind(K_DATA, &payload);
    }

    fn recv(&mut self, slice: Duration) -> Option<Frame<Wire>> {
        let deadline = Instant::now() + slice;
        loop {
            if let Some(f) = self.pending_data.pop_front() {
                return Some(f);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            if !self.pump(left) {
                // link gone: behave like a silent wire until the
                // protocol's own deadline surfaces a typed error
                std::thread::sleep(left);
                return None;
            }
        }
    }

    fn purge(&mut self) {
        // drain stale data frames out of both the local queue and the
        // socket buffer, keeping control frames; a quiet window ends
        // the purge (the caller's barrier keeps new frames off the
        // wire until every peer has purged)
        self.pending_data.clear();
        loop {
            if !self.pump(Duration::from_millis(25)) {
                return;
            }
            if self.pending_data.is_empty() {
                return; // the window elapsed without a stale data frame
            }
            self.pending_data.clear();
        }
    }
}

// ---------------------------------------------------------------------
// chaos proxy
// ---------------------------------------------------------------------

/// Seeded byte-level fault plan for the [`ChaosProxy`] — the faults
/// only a real wire can produce, as per-data-frame probabilities.
/// Drawn from a per-worker SplitMix64 stream (seed ⊕ node) exactly like
/// [`crate::FaultPlan`]'s packet classifier, so chaos runs are
/// reproducible. Probabilities are clamped into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed of the per-connection fault streams.
    pub seed: u64,
    /// Probability a data frame is truncated mid-write and the
    /// connection severed (the receiver resynchronizes by reconnect).
    pub truncate: f64,
    /// Probability one payload bit is flipped (caught by the frame
    /// CRC; the frame is dropped and NACK-recovered).
    pub bitflip: f64,
    /// Probability the frame is stalled by [`ChaosPlan::stall_ms`]
    /// before delivery.
    pub stall: f64,
    /// Probability the connection is severed without delivering the
    /// frame (reconnect + NACK recovery).
    pub sever: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Hard cap on injected faults per worker connection stream, so a
    /// chaos soak terminates.
    pub max_faults: u32,
}

impl ChaosPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            truncate: 0.0,
            bitflip: 0.0,
            stall: 0.0,
            sever: 0.0,
            stall_ms: 20,
            max_faults: 32,
        }
    }

    /// Set the truncate-and-sever probability (clamped into `[0, 1]`).
    pub fn with_truncate(mut self, p: f64) -> ChaosPlan {
        self.truncate = clamp_prob(p);
        self
    }

    /// Set the bit-flip probability (clamped into `[0, 1]`).
    pub fn with_bitflip(mut self, p: f64) -> ChaosPlan {
        self.bitflip = clamp_prob(p);
        self
    }

    /// Set the stall probability (clamped into `[0, 1]`).
    pub fn with_stall(mut self, p: f64, ms: u64) -> ChaosPlan {
        self.stall = clamp_prob(p);
        self.stall_ms = ms;
        self
    }

    /// Set the sever probability (clamped into `[0, 1]`).
    pub fn with_sever(mut self, p: f64) -> ChaosPlan {
        self.sever = clamp_prob(p);
        self
    }

    /// Cap the number of injected faults.
    pub fn with_max_faults(mut self, n: u32) -> ChaosPlan {
        self.max_faults = n;
        self
    }

    fn any(&self) -> bool {
        self.truncate > 0.0 || self.bitflip > 0.0 || self.stall > 0.0 || self.sever > 0.0
    }
}

/// What the chaos stream decided for one data frame.
enum ChaosCall {
    Forward,
    Truncate,
    Bitflip,
    Stall,
    Sever,
}

struct ChaosStream {
    plan: ChaosPlan,
    rng: u64,
    faults: u32,
}

impl ChaosStream {
    /// Per-node stream: same derivation discipline as `FaultState`.
    fn new(plan: ChaosPlan, node: i64) -> ChaosStream {
        let mut s = plan.seed ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let _ = splitmix64(&mut s);
        ChaosStream {
            plan,
            rng: s,
            faults: 0,
        }
    }

    fn classify(&mut self) -> ChaosCall {
        if self.faults >= self.plan.max_faults {
            return ChaosCall::Forward;
        }
        let r = unit_f64(splitmix64(&mut self.rng));
        let mut acc = self.plan.truncate;
        if r < acc {
            self.faults += 1;
            return ChaosCall::Truncate;
        }
        acc += self.plan.bitflip;
        if r < acc {
            self.faults += 1;
            return ChaosCall::Bitflip;
        }
        acc += self.plan.stall;
        if r < acc {
            self.faults += 1;
            return ChaosCall::Stall;
        }
        acc += self.plan.sever;
        if r < acc {
            self.faults += 1;
            return ChaosCall::Sever;
        }
        ChaosCall::Forward
    }
}

/// A byte-level man-in-the-middle between workers and the router.
/// Workers dial the proxy's address; each accepted connection is
/// paired with a fresh upstream connection to the real router. The
/// worker→router direction is frame-aware: data frames are faulted
/// per [`ChaosPlan`] (control and handshake frames pass untouched —
/// the reliable protocol only covers the data plane, so corrupting a
/// `Job` would test nothing but the test harness). The router→worker
/// direction is a transparent byte pump.
pub(crate) struct ChaosProxy {
    /// Address workers should dial instead of the router's.
    pub addr: String,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    pub fn spawn(
        kind: TransportKind,
        upstream: &str,
        plan: ChaosPlan,
    ) -> std::io::Result<ChaosProxy> {
        let listener = NetListener::bind(kind)?;
        let addr = listener.addr.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let upstream = upstream.to_string();
        {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(AtomicOrd::Relaxed) {
                    match listener.accept() {
                        Ok(Some(down)) => {
                            let Ok(up) = dial(&upstream) else { continue };
                            spawn_pair(down, up, plan, Arc::clone(&stop));
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(ChaosProxy { addr, stop })
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, AtomicOrd::Relaxed);
    }
}

fn spawn_pair(down: Sock, up: Sock, plan: ChaosPlan, stop: Arc<AtomicBool>) {
    let (Ok(mut down_r), Ok(mut up_r)) = (down.try_clone(), up.try_clone()) else {
        return;
    };
    let mut down_w = down;
    let mut up_w = up;

    // router → worker: transparent pump
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let _ = up_r.set_read_timeout(Some(Duration::from_millis(200)));
            let mut buf = [0u8; 16 * 1024];
            loop {
                if stop.load(AtomicOrd::Relaxed) {
                    return;
                }
                match up_r.read(&mut buf) {
                    Ok(0) => {
                        down_w.shutdown();
                        return;
                    }
                    Ok(n) => {
                        if down_w.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut
                            || e.kind() == std::io::ErrorKind::Interrupted =>
                    {
                        continue;
                    }
                    Err(_) => return,
                }
            }
        });
    }

    // worker → router: frame-aware fault injection
    std::thread::spawn(move || {
        let mut fbuf = FrameBuf::default();
        let mut stream: Option<ChaosStream> = None;
        loop {
            if stop.load(AtomicOrd::Relaxed) {
                return;
            }
            match fbuf.next_frame(&mut down_r, Duration::from_millis(200)) {
                Ok(Some((kind, payload))) => {
                    if kind == K_HELLO {
                        if let Some((_, node, _)) = dec_hello(&payload) {
                            stream = Some(ChaosStream::new(plan, node));
                        }
                    }
                    let mut bytes = frame_bytes(kind, &payload);
                    let call = match (&mut stream, kind) {
                        (Some(s), K_DATA) if plan.any() => s.classify(),
                        _ => ChaosCall::Forward,
                    };
                    match call {
                        ChaosCall::Forward => {
                            if up_w.write_all(&bytes).is_err() {
                                return;
                            }
                        }
                        ChaosCall::Truncate => {
                            // half a frame, then a dead link: the
                            // router's reader sees sync loss / EOF and
                            // the worker reconnects
                            let half = bytes.len() / 2;
                            let _ = up_w.write_all(&bytes[..half.max(1)]);
                            up_w.shutdown();
                            down_r.shutdown();
                            return;
                        }
                        ChaosCall::Bitflip => {
                            // flip a payload bit after the CRC was
                            // computed: the router drops the frame
                            let off = HEADER + (bytes.len() - HEADER) / 2;
                            bytes[off] ^= 0x10;
                            if up_w.write_all(&bytes).is_err() {
                                return;
                            }
                        }
                        ChaosCall::Stall => {
                            std::thread::sleep(Duration::from_millis(plan.stall_ms));
                            if up_w.write_all(&bytes).is_err() {
                                return;
                            }
                        }
                        ChaosCall::Sever => {
                            up_w.shutdown();
                            down_r.shutdown();
                            return;
                        }
                    }
                }
                Ok(None) => continue,
                Err(_) => {
                    up_w.shutdown();
                    return;
                }
            }
        }
    });
}

// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::JobMsg;
    use crate::transport::Packet;

    fn roundtrip_over(kind: TransportKind) {
        let router = Router::bind(kind, 2).expect("bind");
        let addr = router.addr.clone();
        let t = std::thread::spawn(move || {
            let mut l0 = SockLink::connect(&addr, 0, 2).expect("worker 0 connects");
            // wait for peer 1's hello before sending (the router drops
            // data for unconnected peers, by design)
            std::thread::sleep(Duration::from_millis(150));
            let f = Frame::Data(Packet {
                src: 0,
                seq: 0,
                check: 7,
                payload: Wire::Pack {
                    run_ord: 1,
                    values: vec![2.5, -1.0],
                },
            });
            (&mut &mut l0).send(1, f);
            l0.send_ctrl(&Ctrl::Ready(1)).expect("ctrl send");
        });
        let addr2 = router.addr.clone();
        let t2 = std::thread::spawn(move || {
            let mut l1 = SockLink::connect(&addr2, 1, 2).expect("worker 1 connects");
            let got = (&mut &mut l1)
                .recv(Duration::from_secs(5))
                .expect("data frame routed");
            match got {
                Frame::Data(p) => {
                    assert_eq!(p.src, 0);
                    match p.payload {
                        Wire::Pack { run_ord, values } => {
                            assert_eq!(run_ord, 1);
                            assert_eq!(values, vec![2.5, -1.0]);
                        }
                        other => panic!("wrong payload: {other:?}"),
                    }
                }
                other => panic!("wrong frame: {other:?}"),
            }
        });
        // the host sees both hellos and worker 0's Ready
        let mut hellos = 0;
        let mut ready = false;
        let deadline = Instant::now() + Duration::from_secs(5);
        while (hellos < 2 || !ready) && Instant::now() < deadline {
            match router.recv_event(Duration::from_millis(100)) {
                Some(RouterEvent::Hello { .. }) => hellos += 1,
                Some(RouterEvent::Ctrl {
                    node: 0,
                    ctrl: Ctrl::Ready(_),
                }) => ready = true,
                _ => {}
            }
        }
        t.join().expect("worker 0");
        t2.join().expect("worker 1");
        assert_eq!(hellos, 2, "both workers handshook");
        assert!(ready, "control plane delivered Ready");
    }

    #[test]
    fn uds_routes_data_and_ctrl() {
        roundtrip_over(TransportKind::Uds);
    }

    #[test]
    fn tcp_routes_data_and_ctrl() {
        roundtrip_over(TransportKind::Tcp);
    }

    #[test]
    fn version_mismatch_is_rejected_with_reason() {
        let router = Router::bind(TransportKind::Tcp, 1).expect("bind");
        // speak a wrong version by hand
        let mut sock = dial(&router.addr).expect("dial");
        let mut hello = Vec::new();
        hello.extend_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
        hello.extend_from_slice(&0i64.to_le_bytes());
        hello.extend_from_slice(&1u64.to_le_bytes());
        write_frame(&mut sock, K_HELLO, &hello).expect("send");
        let mut fbuf = FrameBuf::default();
        match fbuf.next_frame(&mut sock, Duration::from_secs(5)) {
            Ok(Some((K_HELLO_REJECT, reason))) => {
                let r = String::from_utf8_lossy(&reason).into_owned();
                assert!(r.contains("version"), "reason names the cause: {r}");
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn crc_corruption_drops_one_frame_and_keeps_sync() {
        let mut fbuf = FrameBuf::default();
        let mut bytes = frame_bytes(K_DATA, &[1, 2, 3, 4]);
        bytes[HEADER + 1] ^= 0xff; // corrupt payload after CRC
        let good = frame_bytes(K_CTRL, &[9]);
        fbuf.rbuf.extend_from_slice(&bytes);
        fbuf.rbuf.extend_from_slice(&good);
        let got = fbuf.pop().expect("stream stays in sync");
        let (kind, payload) = got.expect("second frame survives");
        assert_eq!(kind, K_CTRL);
        assert_eq!(payload, vec![9]);
        assert!(fbuf.pop().expect("clean tail").is_none());
    }

    #[test]
    fn partial_frames_accumulate_across_reads() {
        let mut fbuf = FrameBuf::default();
        let bytes = frame_bytes(K_DATA, &[7; 100]);
        fbuf.rbuf.extend_from_slice(&bytes[..HEADER + 10]);
        assert!(fbuf.pop().expect("no error").is_none(), "incomplete frame");
        fbuf.rbuf.extend_from_slice(&bytes[HEADER + 10..]);
        let (kind, payload) = fbuf.pop().expect("no error").expect("complete now");
        assert_eq!(kind, K_DATA);
        assert_eq!(payload.len(), 100);
    }

    #[test]
    fn bad_magic_poisons_the_stream() {
        let mut fbuf = FrameBuf::default();
        fbuf.rbuf.extend_from_slice(&[0u8; HEADER + 4]);
        assert!(matches!(fbuf.pop(), Err(NetFail::BadMagic)));
    }

    #[test]
    fn chaos_stream_is_deterministic_and_bounded() {
        let plan = ChaosPlan::seeded(42)
            .with_bitflip(0.5)
            .with_stall(0.2, 1)
            .with_max_faults(5);
        let draws = |node: i64| {
            let mut s = ChaosStream::new(plan, node);
            (0..100)
                .map(|_| match s.classify() {
                    ChaosCall::Forward => 0u8,
                    ChaosCall::Truncate => 1,
                    ChaosCall::Bitflip => 2,
                    ChaosCall::Stall => 3,
                    ChaosCall::Sever => 4,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3), "same seed+node ⇒ same stream");
        assert_ne!(draws(3), draws(4), "different nodes ⇒ different streams");
        let faulted = draws(3).iter().filter(|&&c| c != 0).count();
        assert!(faulted <= 5, "max_faults bounds injection: {faulted}");
        assert!(faulted > 0, "a 0.7 total rate fires within 100 draws");
    }

    #[test]
    fn chaos_probabilities_are_clamped() {
        let p = ChaosPlan::seeded(1)
            .with_bitflip(7.0)
            .with_truncate(-2.0)
            .with_stall(f64::NAN, 5)
            .with_sever(1.5);
        assert_eq!(p.bitflip, 1.0);
        assert_eq!(p.truncate, 0.0);
        assert_eq!(p.stall, 0.0);
        assert_eq!(p.sever, 1.0);
    }

    #[test]
    fn job_survives_ctrl_roundtrip_over_wire() {
        // one worker, host sends a Job through the real socket path
        let router = Router::bind(TransportKind::Uds, 1).expect("bind");
        let addr = router.addr.clone();
        let t = std::thread::spawn(move || {
            let mut link = SockLink::connect(&addr, 0, 1).expect("connect");
            match link.recv_ctrl(true) {
                Some(Ctrl::Job(j)) => j.locals["A"].clone(),
                other => panic!("expected Job, got {:?}", other.map(|_| "ctrl")),
            }
        });
        // wait for hello
        let hello = router.recv_event(Duration::from_secs(5));
        assert!(matches!(hello, Some(RouterEvent::Hello { node: 0 })));
        let mut locals = std::collections::BTreeMap::new();
        locals.insert("A".to_string(), vec![1.0, 2.0, 3.0]);
        let job = JobMsg {
            run_id: 1,
            clause: crate::codec::sample_clause(),
            decomps: std::collections::BTreeMap::new(),
            recv_timeout: Duration::from_millis(100),
            faults: None,
            mode: crate::distributed::CommMode::Vectorized,
            retry: crate::transport::RetryPolicy::default(),
            overlap: true,
            simd: vcal_spmd::SimdPolicy::default(),
            trace_on: false,
            handshake: false,
            locals,
        };
        router
            .send_ctrl(0, &Ctrl::Job(Box::new(job)))
            .expect("job send");
        assert_eq!(t.join().expect("worker"), vec![1.0, 2.0, 3.0]);
    }
}
