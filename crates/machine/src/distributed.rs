//! The distributed-memory SPMD machine (paper Section 2.10).
//!
//! Each virtual processor is an OS thread owning private local memories
//! (the machine images `A'`, `B'` of Section 2.6), connected by
//! unbounded channels giving the paper's assumed semantics: non-blocking
//! `send`, blocking `receive`. Every node executes the template:
//!
//! ```text
//! p := my_node;
//! -- send phase: i ∈ Reside_p with proc_A(f(i)) ≠ p
//! send(proc_A(f(i)), B_L[local_B(g(i))]);
//! -- update phase: i ∈ Modify_p
//! tmp := if proc_B(g(i)) = p then B_L[local_B(g(i))] else receive(...);
//! A_L[local_A(f(i))] := Expr(tmp);
//! ```
//!
//! The iteration sets come from the plan's schedules (naive or
//! closed-form), so the machine measures exactly the run-time the paper's
//! compile-time optimizations buy.
//!
//! Two communication modes implement the template
//! ([`CommMode`], selected via [`DistOptions`]):
//!
//! * **Element** — the literal template: one tagged `(read-slot,
//!   loop-index)` message per remote element, destination resolved by an
//!   ownership test at run time, out-of-order arrivals absorbed by an
//!   ordered pending buffer.
//! * **Vectorized** (default) — the plan's communication schedule
//!   ([`vcal_spmd::NodeCommPlan`], derived at plan time from
//!   `Reside_p ∩ Modify_q`) drives the send phase directly: one vector
//!   message per coalesced run, packed in run order. The receiver stages
//!   each packet by its `(source, run)` tag — derived from the *same*
//!   plan, so no per-element matching happens — and the update phase
//!   reads values by plan-computed offsets.
//!
//! Wire traffic is modeled in [`NodeStats`]: `msgs_sent`/`msgs_received`
//! always count payload *elements* (identical across modes), while
//! `packets_sent`/`bytes_sent`/`max_packet_elems` expose the batching
//! (an element message costs 24 modeled bytes — slot, index, value — and
//! a vector message 16 header bytes plus 8 per element).
//!
//! A configurable receive timeout plus optional fault injection (message
//! dropping) lets the tests verify the pairing logic detects lost sends
//! instead of hanging; in vectorized mode `drop_nth` counts packets.

use crate::darray::DistArray;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ordering};
use vcal_decomp::Decomp1;
use vcal_spmd::{NodePlan, SpmdPlan};

/// A tagged value message.
#[derive(Debug, Clone, Copy)]
struct Msg {
    /// Index into the node's reside/read slot list.
    slot: usize,
    /// Loop index the value belongs to.
    i: i64,
    /// The payload.
    value: f64,
}

/// Modeled wire cost of one element message (slot + index + value).
pub(crate) const ELEM_MSG_BYTES: u64 = 24;
/// Modeled header cost of one vector message (source + run tag).
pub(crate) const PACK_HEADER_BYTES: u64 = 16;

/// What actually travels on a channel.
enum Wire {
    /// Element mode: one tagged value.
    Elem(Msg),
    /// Vectorized mode: all values of one planned run, packed in run
    /// order. `run_ord` indexes the sender's run list for this pair,
    /// which the plan guarantees is identical to the receiver's.
    Pack {
        src: i64,
        run_ord: usize,
        values: Vec<f64>,
    },
}

/// How remote operands travel between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// One tagged message per element (the literal Section 2.10
    /// template; kept as the baseline and fallback).
    Element,
    /// One vector message per planned communication run.
    #[default]
    Vectorized,
}

/// Deterministic fault injection for testing the template's pairing logic.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Node whose outgoing message is dropped.
    pub drop_from: i64,
    /// Which of its wire messages (0-based send order) to drop —
    /// elements in [`CommMode::Element`], packets in
    /// [`CommMode::Vectorized`].
    pub drop_nth: u64,
}

/// Execution options for the distributed machine.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// How long a blocking receive waits before reporting a lost message.
    pub recv_timeout: Duration,
    /// Optional fault injection.
    pub faults: Option<FaultInjection>,
    /// How remote operands are shipped.
    pub mode: CommMode,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            recv_timeout: Duration::from_secs(5),
            faults: None,
            mode: CommMode::default(),
        }
    }
}

/// Expression with read references resolved to slot indices (so the hot
/// loop never touches array names).
enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar,
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

fn resolve_expr(e: &Expr, node: &NodePlan) -> RExpr {
    match e {
        Expr::Ref(r) => {
            let g = r.map.as_fn1().expect("1-D plan");
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == r.array && rp.g == *g)
                .expect("read ref must be in the reside list");
            RExpr::Slot(slot)
        }
        Expr::Lit(v) => RExpr::Lit(*v),
        Expr::LoopVar { dim } => {
            assert_eq!(*dim, 0, "1-D plan");
            RExpr::LoopVar
        }
        Expr::Neg(inner) => RExpr::Neg(Box::new(resolve_expr(inner, node))),
        Expr::Bin(op, a, b) => RExpr::Bin(
            *op,
            Box::new(resolve_expr(a, node)),
            Box::new(resolve_expr(b, node)),
        ),
    }
}

fn eval_rexpr(e: &RExpr, i: i64, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar => i as f64,
        RExpr::Neg(inner) => -eval_rexpr(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_rexpr(a, i, vals), eval_rexpr(b, i, vals)),
    }
}

enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

fn resolve_guard(g: &Guard, node: &NodePlan) -> RGuard {
    match g {
        Guard::Always => RGuard::Always,
        Guard::Cmp { lhs, op, rhs } => {
            let gf = lhs.map.as_fn1().expect("1-D plan");
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == lhs.array && rp.g == *gf)
                .expect("guard ref must be in the reside list");
            RGuard::Cmp {
                slot,
                op: *op,
                rhs: *rhs,
            }
        }
    }
}

/// What one node thread returns: id, its local memories, statistics,
/// per-destination send counts, and its error state.
type NodeOutcome = (
    i64,
    BTreeMap<String, Vec<f64>>,
    NodeStats,
    Vec<u64>,
    Result<(), MachineError>,
);

/// Per-node worker state handed to its thread.
struct Worker {
    p: i64,
    locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Wire>,
}

/// Execute a `//` clause on the distributed-memory machine.
///
/// `arrays` maps every referenced array to its distributed image; the
/// decompositions of those images must be the ones the plan was built
/// with. On success the images are updated in place.
pub fn run_distributed(
    plan: &SpmdPlan,
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    opts: DistOptions,
) -> Result<ExecReport, MachineError> {
    if plan.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    let pmax = plan.pmax;

    // collect referenced arrays and their decompositions
    let mut referenced: Vec<String> = vec![plan.lhs_array.clone()];
    for rp in &plan.nodes[0].resides {
        if !referenced.contains(&rp.array) {
            referenced.push(rp.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, Decomp1> = BTreeMap::new();
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        if da.decomp().pmax() != pmax {
            return Err(MachineError::PlanMismatch(format!(
                "array `{name}` decomposed over {} processors, plan has {pmax}",
                da.decomp().pmax()
            )));
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let dec_lhs = decomps[&plan.lhs_array].clone();

    // disassemble the distributed images into per-node local memories
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for name in &referenced {
        let (_, parts) = arrays.remove(name).unwrap().into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    // channels: one receiver per node, senders shared
    let mut txs: Vec<Sender<Wire>> = Vec::with_capacity(pmax as usize);
    let mut workers: Vec<Worker> = Vec::with_capacity(pmax as usize);
    for (p, locals) in per_node.into_iter().enumerate() {
        let (tx, rx) = unbounded();
        txs.push(tx);
        workers.push(Worker {
            p: p as i64,
            locals,
            rx,
        });
    }

    let rexpr_per_node: Vec<RExpr> = plan
        .nodes
        .iter()
        .map(|n| resolve_expr(&clause.rhs, n))
        .collect();
    let rguard_per_node: Vec<RGuard> = plan
        .nodes
        .iter()
        .map(|n| resolve_guard(&clause.guard, n))
        .collect();

    let mut results: Vec<NodeOutcome> = Vec::with_capacity(pmax as usize);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in workers {
            let node = &plan.nodes[worker.p as usize];
            let rexpr = &rexpr_per_node[worker.p as usize];
            let rguard = &rguard_per_node[worker.p as usize];
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let plan = &plan;
            handles.push(scope.spawn(move || {
                run_node(
                    worker, node, plan, rexpr, rguard, txs, decomps, dec_lhs, opts,
                )
            }));
        }
        // drop the main thread's senders so lost messages cannot keep
        // channels alive artificially (receives use timeouts anyway)
        drop(txs);
        for h in handles {
            results.push(h.join().expect("node thread panicked"));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // reassemble the distributed images (even on error, restore state)
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    let mut first_err = None;
    let mut report = ExecReport::default();
    for (_, mut locals, stats, sent_to, res) in results {
        for name in &referenced {
            parts_by_name
                .entry(name.clone())
                .or_default()
                .push(locals.remove(name).unwrap());
        }
        report.nodes.push(stats);
        report.traffic.push(sent_to);
        if let (Err(e), None) = (res, &first_err) {
            first_err = Some(e);
        }
    }
    for (name, parts) in parts_by_name {
        let dec = decomps[&name].clone();
        arrays.insert(name, DistArray::from_parts(dec, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    mut worker: Worker,
    node: &NodePlan,
    plan: &SpmdPlan,
    rexpr: &RExpr,
    rguard: &RGuard,
    txs: Vec<Sender<Wire>>,
    decomps: &BTreeMap<String, Decomp1>,
    dec_lhs: &Decomp1,
    opts: DistOptions,
) -> NodeOutcome {
    let p = worker.p;
    let mut stats = NodeStats::default();
    stats.guard_tests += node.modify.schedule.work_estimate();
    let mut sent_to = vec![0u64; txs.len()];

    // ---- send phase: Reside_p ∩ Modify_q, q ≠ p -------------------------
    let mut wire_msgs = 0u64;
    match opts.mode {
        CommMode::Element => {
            // literal template: per-element ownership test + tagged send
            for (slot, rp) in node.resides.iter().enumerate() {
                if rp.replicated {
                    continue;
                }
                stats.guard_tests += rp.opt.schedule.work_estimate();
                let dec_r = &decomps[&rp.array];
                let local_part = &worker.locals[&rp.array];
                rp.opt.schedule.for_each(|i| {
                    let owner = dec_lhs.proc_of(plan.f.eval(i));
                    if owner != p {
                        let g = rp.g.eval(i);
                        let value = local_part[dec_r.local_of(g) as usize];
                        let dropped = matches!(
                            opts.faults,
                            Some(f) if f.drop_from == p && f.drop_nth == wire_msgs
                        );
                        if !dropped {
                            // non-blocking send (unbounded channel)
                            let _ = txs[owner as usize].send(Wire::Elem(Msg { slot, i, value }));
                        }
                        wire_msgs += 1;
                        sent_to[owner as usize] += 1;
                        stats.msgs_sent += 1;
                        stats.packets_sent += 1;
                        stats.bytes_sent += ELEM_MSG_BYTES;
                        stats.max_packet_elems = stats.max_packet_elems.max(1);
                    }
                });
            }
        }
        CommMode::Vectorized => {
            // the plan already knows every destination and run: pack each
            // run into one vector message, no run-time ownership tests
            for pair in &node.comm.sends {
                for (run_ord, run) in pair.runs.iter().enumerate() {
                    let rp = &node.resides[run.slot];
                    let dec_r = &decomps[&rp.array];
                    let local_part = &worker.locals[&rp.array];
                    let mut values = Vec::with_capacity(run.count as usize);
                    run.for_each(|i| {
                        values.push(local_part[dec_r.local_of(rp.g.eval(i)) as usize]);
                    });
                    let elems = values.len() as u64;
                    let dropped = matches!(
                        opts.faults,
                        Some(f) if f.drop_from == p && f.drop_nth == wire_msgs
                    );
                    if !dropped {
                        let _ = txs[pair.peer as usize].send(Wire::Pack {
                            src: p,
                            run_ord,
                            values,
                        });
                    }
                    wire_msgs += 1;
                    sent_to[pair.peer as usize] += elems;
                    stats.msgs_sent += elems;
                    stats.packets_sent += 1;
                    stats.bytes_sent += PACK_HEADER_BYTES + 8 * elems;
                    stats.max_packet_elems = stats.max_packet_elems.max(elems);
                }
            }
        }
    }
    drop(txs);

    // ---- update phase: Modify_p -----------------------------------------
    let mut recv = RecvState::new(node, opts.mode, plan.pmax as usize);
    let mut writes: Vec<(usize, f64)> = Vec::with_capacity(node.modify.schedule.count() as usize);
    let mut vals = vec![0.0f64; node.resides.len()];
    let mut err: Option<MachineError> = None;

    let n_slots = node.resides.len();
    node.modify.schedule.for_each(|i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        // gather all operand values for this iteration
        #[allow(clippy::needless_range_loop)] // `vals[slot]` is written, not read
        for slot in 0..n_slots {
            let rp = &node.resides[slot];
            let g = rp.g.eval(i);
            let local_here = rp.replicated || decomps[&rp.array].proc_of(g) == p;
            vals[slot] = if local_here {
                stats.local_reads += 1;
                worker.locals[&rp.array][decomps[&rp.array].local_of(g) as usize]
            } else {
                match recv.remote_value(&worker.rx, slot, i, opts.recv_timeout) {
                    Ok(v) => {
                        stats.msgs_received += 1;
                        v
                    }
                    Err(RecvFail::Timeout) => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rp.array.clone(),
                            index: i,
                        });
                        return;
                    }
                    Err(RecvFail::BadWire(why)) => {
                        err = Some(MachineError::PlanMismatch(format!(
                            "node {p}, array `{}`, i={i}: {why}",
                            rp.array
                        )));
                        return;
                    }
                }
            };
        }
        stats.data_guards += 1;
        let guard_ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if guard_ok {
            let v = eval_rexpr(rexpr, i, &vals);
            let target = plan.f.eval(i);
            writes.push((dec_lhs.local_of(target) as usize, v));
        }
    });

    // commit local writes (post-snapshot, Section 2.10's final update)
    if err.is_none() {
        let lhs_local = worker.locals.get_mut(&plan.lhs_array).unwrap();
        for (off, v) in writes {
            lhs_local[off] = v;
        }
    }

    (p, worker.locals, stats, sent_to, err.map_or(Ok(()), Err))
}

/// Why a remote value could not be produced.
enum RecvFail {
    /// The wire message never arrived within the timeout.
    Timeout,
    /// The wire carried something the mode/plan does not account for.
    BadWire(&'static str),
}

/// Per-node receive-side state, by mode.
enum RecvState {
    /// Element mode: out-of-order arrivals buffered in an ordered map
    /// keyed `(slot, i)`.
    Element {
        pending: BTreeMap<(usize, i64), f64>,
    },
    /// Vectorized mode: packets staged whole by `(source, run)`; each
    /// remote element resolves to a plan-computed `(source, run,
    /// offset)` address — no per-element tag matching.
    Packed {
        /// source processor id → ordinal in the recv pair list.
        src_ord: Vec<usize>,
        /// `staging[source ordinal][run]` = the packet's values.
        staging: Vec<Vec<Option<Vec<f64>>>>,
        /// `(slot, i)` → `(source ordinal, run, offset)`, expanded from
        /// the plan's receive runs before the update loop starts.
        origin: BTreeMap<(usize, i64), (usize, usize, usize)>,
    },
}

impl RecvState {
    fn new(node: &NodePlan, mode: CommMode, pmax: usize) -> RecvState {
        match mode {
            CommMode::Element => RecvState::Element {
                pending: BTreeMap::new(),
            },
            CommMode::Vectorized => {
                let mut src_ord = vec![usize::MAX; pmax];
                let mut origin = BTreeMap::new();
                let mut staging = Vec::with_capacity(node.comm.recvs.len());
                for (ord, pc) in node.comm.recvs.iter().enumerate() {
                    src_ord[pc.peer as usize] = ord;
                    staging.push(vec![None; pc.runs.len()]);
                    for (run_ord, run) in pc.runs.iter().enumerate() {
                        let mut off = 0usize;
                        run.for_each(|i| {
                            origin.insert((run.slot, i), (ord, run_ord, off));
                            off += 1;
                        });
                    }
                }
                RecvState::Packed {
                    src_ord,
                    staging,
                    origin,
                }
            }
        }
    }

    /// Produce the remote operand for `(slot, i)`, receiving from the
    /// channel as needed.
    fn remote_value(
        &mut self,
        rx: &Receiver<Wire>,
        slot: usize,
        i: i64,
        timeout: Duration,
    ) -> Result<f64, RecvFail> {
        match self {
            RecvState::Element { pending } => {
                if let Some(v) = pending.remove(&(slot, i)) {
                    return Ok(v);
                }
                loop {
                    match rx.recv_timeout(timeout) {
                        Ok(Wire::Elem(m)) => {
                            if m.slot == slot && m.i == i {
                                return Ok(m.value);
                            }
                            pending.insert((m.slot, m.i), m.value);
                        }
                        Ok(Wire::Pack { .. }) => {
                            return Err(RecvFail::BadWire("vector packet in element mode"))
                        }
                        Err(_) => return Err(RecvFail::Timeout),
                    }
                }
            }
            RecvState::Packed {
                src_ord,
                staging,
                origin,
            } => {
                let &(so, ro, off) = origin
                    .get(&(slot, i))
                    .ok_or(RecvFail::BadWire("no planned packet covers this element"))?;
                while staging[so][ro].is_none() {
                    match rx.recv_timeout(timeout) {
                        Ok(Wire::Pack {
                            src,
                            run_ord,
                            values,
                        }) => {
                            let ord = src_ord
                                .get(src as usize)
                                .copied()
                                .filter(|&o| o != usize::MAX)
                                .ok_or(RecvFail::BadWire("packet from unplanned source"))?;
                            if run_ord >= staging[ord].len() {
                                return Err(RecvFail::BadWire("packet run tag out of range"));
                            }
                            staging[ord][run_ord] = Some(values);
                        }
                        Ok(Wire::Elem(_)) => {
                            return Err(RecvFail::BadWire("element message in vectorized mode"))
                        }
                        Err(_) => return Err(RecvFail::Timeout),
                    }
                }
                staging[so][ro]
                    .as_ref()
                    .unwrap()
                    .get(off)
                    .copied()
                    .ok_or(RecvFail::BadWire("packet shorter than its planned run"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_spmd::DecompMap;

    fn copy_setup(
        n: i64,
        f: Fn1,
        g: Fn1,
        dec_a: Decomp1,
        dec_b: Decomp1,
        imin: i64,
        imax: i64,
    ) -> (Clause, Env, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(0.5)),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(dec_a.extent()));
        env.insert(
            "B",
            Array::from_fn(dec_b.extent(), |i| (i.scalar() * 3) as f64),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), dec_a);
        dm.insert("B".into(), dec_b);
        let _ = n;
        (clause, env, dm)
    }

    fn run_and_compare(clause: &Clause, env0: &Env, dm: &DecompMap, naive: bool) -> ExecReport {
        let mut expect = env0.clone();
        expect.exec_clause(clause);

        let plan = if naive {
            SpmdPlan::build_naive(clause, dm).unwrap()
        } else {
            SpmdPlan::build(clause, dm).unwrap()
        };
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
            );
        }
        let report = run_distributed(&plan, clause, &mut arrays, DistOptions::default()).unwrap();
        let got = arrays["A"].gather();
        assert_eq!(
            got.max_abs_diff(expect.get("A").unwrap()),
            0.0,
            "distributed result differs (naive={naive})"
        );
        report
    }

    #[test]
    fn block_to_scatter_copy() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        // comm matches the analytic count: 48 remote of 64
        assert_eq!(report.total().msgs_sent, 48);
        assert_eq!(report.total().msgs_received, 48);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn stencil_block_block() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::shift(-1),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            1,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 3); // one halo value per boundary
    }

    #[test]
    fn strided_access_under_scatter() {
        let n = 128;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::affine(2, 1),
            Fn1::affine(3, 0),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(4, 4, Bounds::range(0, 3 * n)),
            0,
            n / 2 - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn rotate_view_piecewise() {
        let n = 20;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::rotate(6, 20),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
    }

    #[test]
    fn replicated_read_no_messages() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::replicated(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 0);
    }

    #[test]
    fn guarded_clause_still_consumes_messages() {
        // guard reads C (scatter) while A is block: values must flow even
        // for iterations whose guard fails, or the pairing deadlocks.
        let n = 32;
        let clause = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("C", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert(
            "C",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("B".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("C".into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));

        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B", "C"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn vectorized_aggregates_packets() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut totals = Vec::new();
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
            for name in ["A", "B"] {
                arrays.insert(
                    name.into(),
                    DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
                );
            }
            let opts = DistOptions {
                mode,
                ..DistOptions::default()
            };
            let report = run_distributed(&plan, &clause, &mut arrays, opts).unwrap();
            totals.push(report.total());
        }
        let (elem, vect) = (totals[0], totals[1]);
        // element totals are identical across modes
        assert_eq!(elem.msgs_sent, vect.msgs_sent);
        assert_eq!(elem.msgs_received, vect.msgs_received);
        // element mode: one wire message per element
        assert_eq!(elem.packets_sent, elem.msgs_sent);
        assert_eq!(elem.max_packet_elems, 1);
        // vectorized mode: strictly fewer, larger messages
        assert!(vect.packets_sent < vect.msgs_sent);
        assert!(vect.max_packet_elems > 1);
        assert!(vect.bytes_sent < elem.bytes_sent);
    }

    #[test]
    fn element_mode_still_exact() {
        let n = 128;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::affine(2, 1),
            Fn1::affine(3, 0),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(4, 4, Bounds::range(0, 3 * n)),
            0,
            n / 2 - 1,
        );
        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        let opts = DistOptions {
            mode: CommMode::Element,
            ..DistOptions::default()
        };
        run_distributed(&plan, &clause, &mut arrays, opts).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn dropped_message_detected_not_hung() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(200),
            faults: Some(FaultInjection {
                drop_from: 1,
                drop_nth: 0,
            }),
            ..DistOptions::default()
        };
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        assert!(matches!(err, MachineError::MissingMessage { .. }), "{err}");
    }

    #[test]
    fn sequential_clause_rejected() {
        let n = 16;
        let (mut clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        clause.ordering = Ordering::Seq;
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        assert_eq!(
            run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap_err(),
            MachineError::SequentialClause
        );
    }
}
