//! The distributed-memory SPMD machine (paper Section 2.10).
//!
//! Each virtual processor is an OS thread owning private local memories
//! (the machine images `A'`, `B'` of Section 2.6), connected by
//! unbounded channels giving the paper's assumed semantics: non-blocking
//! `send`, blocking `receive`. Every node executes the template:
//!
//! ```text
//! p := my_node;
//! -- send phase: i ∈ Reside_p with proc_A(f(i)) ≠ p
//! send(proc_A(f(i)), B_L[local_B(g(i))]);
//! -- update phase: i ∈ Modify_p
//! tmp := if proc_B(g(i)) = p then B_L[local_B(g(i))] else receive(...);
//! A_L[local_A(f(i))] := Expr(tmp);
//! ```
//!
//! The iteration sets come from the plan's schedules (naive or
//! closed-form), so the machine measures exactly the run-time the paper's
//! compile-time optimizations buy. Messages are tagged with their
//! `(read-slot, loop-index)` so arrival order never matters; a per-node
//! pending buffer absorbs out-of-order traffic. A configurable receive
//! timeout plus optional fault injection (message dropping) lets the
//! tests verify the pairing logic detects lost sends instead of hanging.

use crate::darray::DistArray;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ordering};
use vcal_decomp::Decomp1;
use vcal_spmd::{NodePlan, SpmdPlan};

/// A tagged value message.
#[derive(Debug, Clone, Copy)]
struct Msg {
    /// Index into the node's reside/read slot list.
    slot: usize,
    /// Loop index the value belongs to.
    i: i64,
    /// The payload.
    value: f64,
}

/// Deterministic fault injection for testing the template's pairing logic.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Node whose outgoing message is dropped.
    pub drop_from: i64,
    /// Which of its messages (0-based send order) to drop.
    pub drop_nth: u64,
}

/// Execution options for the distributed machine.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// How long a blocking receive waits before reporting a lost message.
    pub recv_timeout: Duration,
    /// Optional fault injection.
    pub faults: Option<FaultInjection>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions { recv_timeout: Duration::from_secs(5), faults: None }
    }
}

/// Expression with read references resolved to slot indices (so the hot
/// loop never touches array names).
enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar,
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

fn resolve_expr(e: &Expr, node: &NodePlan) -> RExpr {
    match e {
        Expr::Ref(r) => {
            let g = r.map.as_fn1().expect("1-D plan");
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == r.array && rp.g == *g)
                .expect("read ref must be in the reside list");
            RExpr::Slot(slot)
        }
        Expr::Lit(v) => RExpr::Lit(*v),
        Expr::LoopVar { dim } => {
            assert_eq!(*dim, 0, "1-D plan");
            RExpr::LoopVar
        }
        Expr::Neg(inner) => RExpr::Neg(Box::new(resolve_expr(inner, node))),
        Expr::Bin(op, a, b) => RExpr::Bin(
            *op,
            Box::new(resolve_expr(a, node)),
            Box::new(resolve_expr(b, node)),
        ),
    }
}

fn eval_rexpr(e: &RExpr, i: i64, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar => i as f64,
        RExpr::Neg(inner) => -eval_rexpr(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_rexpr(a, i, vals), eval_rexpr(b, i, vals)),
    }
}

enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

fn resolve_guard(g: &Guard, node: &NodePlan) -> RGuard {
    match g {
        Guard::Always => RGuard::Always,
        Guard::Cmp { lhs, op, rhs } => {
            let gf = lhs.map.as_fn1().expect("1-D plan");
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == lhs.array && rp.g == *gf)
                .expect("guard ref must be in the reside list");
            RGuard::Cmp { slot, op: *op, rhs: *rhs }
        }
    }
}

/// What one node thread returns: id, its local memories, statistics,
/// per-destination send counts, and its error state.
type NodeOutcome = (
    i64,
    BTreeMap<String, Vec<f64>>,
    NodeStats,
    Vec<u64>,
    Result<(), MachineError>,
);

/// Per-node worker state handed to its thread.
struct Worker {
    p: i64,
    locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Msg>,
}

/// Execute a `//` clause on the distributed-memory machine.
///
/// `arrays` maps every referenced array to its distributed image; the
/// decompositions of those images must be the ones the plan was built
/// with. On success the images are updated in place.
pub fn run_distributed(
    plan: &SpmdPlan,
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    opts: DistOptions,
) -> Result<ExecReport, MachineError> {
    if plan.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    let pmax = plan.pmax;

    // collect referenced arrays and their decompositions
    let mut referenced: Vec<String> = vec![plan.lhs_array.clone()];
    for rp in &plan.nodes[0].resides {
        if !referenced.contains(&rp.array) {
            referenced.push(rp.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, Decomp1> = BTreeMap::new();
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        if da.decomp().pmax() != pmax {
            return Err(MachineError::PlanMismatch(format!(
                "array `{name}` decomposed over {} processors, plan has {pmax}",
                da.decomp().pmax()
            )));
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let dec_lhs = decomps[&plan.lhs_array].clone();

    // disassemble the distributed images into per-node local memories
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for name in &referenced {
        let (_, parts) = arrays.remove(name).unwrap().into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    // channels: one receiver per node, senders shared
    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(pmax as usize);
    let mut workers: Vec<Worker> = Vec::with_capacity(pmax as usize);
    for (p, locals) in per_node.into_iter().enumerate() {
        let (tx, rx) = unbounded();
        txs.push(tx);
        workers.push(Worker { p: p as i64, locals, rx });
    }

    let rexpr_per_node: Vec<RExpr> =
        plan.nodes.iter().map(|n| resolve_expr(&clause.rhs, n)).collect();
    let rguard_per_node: Vec<RGuard> =
        plan.nodes.iter().map(|n| resolve_guard(&clause.guard, n)).collect();

    let mut results: Vec<NodeOutcome> = Vec::with_capacity(pmax as usize);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in workers {
            let node = &plan.nodes[worker.p as usize];
            let rexpr = &rexpr_per_node[worker.p as usize];
            let rguard = &rguard_per_node[worker.p as usize];
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let plan = &plan;
            handles.push(scope.spawn(move || {
                run_node(worker, node, plan, rexpr, rguard, txs, decomps, dec_lhs, opts)
            }));
        }
        // drop the main thread's senders so lost messages cannot keep
        // channels alive artificially (receives use timeouts anyway)
        drop(txs);
        for h in handles {
            results.push(h.join().expect("node thread panicked"));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // reassemble the distributed images (even on error, restore state)
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    let mut first_err = None;
    let mut report = ExecReport::default();
    for (_, mut locals, stats, sent_to, res) in results {
        for name in &referenced {
            parts_by_name
                .entry(name.clone())
                .or_default()
                .push(locals.remove(name).unwrap());
        }
        report.nodes.push(stats);
        report.traffic.push(sent_to);
        if let (Err(e), None) = (res, &first_err) {
            first_err = Some(e);
        }
    }
    for (name, parts) in parts_by_name {
        let dec = decomps[&name].clone();
        arrays.insert(name, DistArray::from_parts(dec, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    mut worker: Worker,
    node: &NodePlan,
    plan: &SpmdPlan,
    rexpr: &RExpr,
    rguard: &RGuard,
    txs: Vec<Sender<Msg>>,
    decomps: &BTreeMap<String, Decomp1>,
    dec_lhs: &Decomp1,
    opts: DistOptions,
) -> NodeOutcome {
    let p = worker.p;
    let mut stats = NodeStats::default();
    stats.guard_tests += node.modify.schedule.work_estimate();
    let mut sent_to = vec![0u64; txs.len()];

    // ---- send phase: Reside_p \ Modify_p --------------------------------
    let mut sent = 0u64;
    for (slot, rp) in node.resides.iter().enumerate() {
        if rp.replicated {
            continue;
        }
        stats.guard_tests += rp.opt.schedule.work_estimate();
        let dec_r = &decomps[&rp.array];
        let local_part = &worker.locals[&rp.array];
        rp.opt.schedule.for_each(|i| {
            let owner = dec_lhs.proc_of(plan.f.eval(i));
            if owner != p {
                let g = rp.g.eval(i);
                let value = local_part[dec_r.local_of(g) as usize];
                let dropped = matches!(
                    opts.faults,
                    Some(f) if f.drop_from == p && f.drop_nth == sent
                );
                if !dropped {
                    // non-blocking send (unbounded channel)
                    let _ = txs[owner as usize].send(Msg { slot, i, value });
                }
                sent += 1;
                sent_to[owner as usize] += 1;
                stats.msgs_sent += 1;
            }
        });
    }
    drop(txs);

    // ---- update phase: Modify_p -----------------------------------------
    let mut pending: HashMap<(usize, i64), f64> = HashMap::new();
    let mut writes: Vec<(usize, f64)> = Vec::new();
    let mut vals = vec![0.0f64; node.resides.len()];
    let mut err: Option<MachineError> = None;

    let n_slots = node.resides.len();
    node.modify.schedule.for_each(|i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        // gather all operand values for this iteration
        #[allow(clippy::needless_range_loop)] // `vals[slot]` is written, not read
        for slot in 0..n_slots {
            let rp = &node.resides[slot];
            let g = rp.g.eval(i);
            let local_here = rp.replicated || decomps[&rp.array].proc_of(g) == p;
            vals[slot] = if local_here {
                stats.local_reads += 1;
                worker.locals[&rp.array][decomps[&rp.array].local_of(g) as usize]
            } else {
                // blocking receive with matching on (slot, i)
                match recv_match(&worker.rx, &mut pending, slot, i, opts.recv_timeout) {
                    Some(v) => {
                        stats.msgs_received += 1;
                        v
                    }
                    None => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rp.array.clone(),
                            index: i,
                        });
                        return;
                    }
                }
            };
        }
        stats.data_guards += 1;
        let guard_ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if guard_ok {
            let v = eval_rexpr(rexpr, i, &vals);
            let target = plan.f.eval(i);
            writes.push((dec_lhs.local_of(target) as usize, v));
        }
    });

    // commit local writes (post-snapshot, Section 2.10's final update)
    if err.is_none() {
        let lhs_local = worker.locals.get_mut(&plan.lhs_array).unwrap();
        for (off, v) in writes {
            lhs_local[off] = v;
        }
    }

    (p, worker.locals, stats, sent_to, err.map_or(Ok(()), Err))
}

/// Receive until the `(slot, i)`-tagged message appears, buffering
/// everything else. `None` on timeout.
fn recv_match(
    rx: &Receiver<Msg>,
    pending: &mut HashMap<(usize, i64), f64>,
    slot: usize,
    i: i64,
    timeout: Duration,
) -> Option<f64> {
    if let Some(v) = pending.remove(&(slot, i)) {
        return Some(v);
    }
    loop {
        match rx.recv_timeout(timeout) {
            Ok(msg) => {
                if msg.slot == slot && msg.i == i {
                    return Some(msg.value);
                }
                pending.insert((msg.slot, msg.i), msg.value);
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_spmd::DecompMap;

    fn copy_setup(
        n: i64,
        f: Fn1,
        g: Fn1,
        dec_a: Decomp1,
        dec_b: Decomp1,
        imin: i64,
        imax: i64,
    ) -> (Clause, Env, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("B", g)),
                Expr::Lit(0.5),
            ),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(dec_a.extent()));
        env.insert("B", Array::from_fn(dec_b.extent(), |i| (i.scalar() * 3) as f64));
        let mut dm = DecompMap::new();
        dm.insert("A".into(), dec_a);
        dm.insert("B".into(), dec_b);
        let _ = n;
        (clause, env, dm)
    }

    fn run_and_compare(clause: &Clause, env0: &Env, dm: &DecompMap, naive: bool) -> ExecReport {
        let mut expect = env0.clone();
        expect.exec_clause(clause);

        let plan = if naive {
            SpmdPlan::build_naive(clause, dm).unwrap()
        } else {
            SpmdPlan::build(clause, dm).unwrap()
        };
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
            );
        }
        let report =
            run_distributed(&plan, clause, &mut arrays, DistOptions::default()).unwrap();
        let got = arrays["A"].gather();
        assert_eq!(
            got.max_abs_diff(expect.get("A").unwrap()),
            0.0,
            "distributed result differs (naive={naive})"
        );
        report
    }

    #[test]
    fn block_to_scatter_copy() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        // comm matches the analytic count: 48 remote of 64
        assert_eq!(report.total().msgs_sent, 48);
        assert_eq!(report.total().msgs_received, 48);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn stencil_block_block() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::shift(-1),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            1,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 3); // one halo value per boundary
    }

    #[test]
    fn strided_access_under_scatter() {
        let n = 128;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::affine(2, 1),
            Fn1::affine(3, 0),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(4, 4, Bounds::range(0, 3 * n)),
            0,
            n / 2 - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn rotate_view_piecewise() {
        let n = 20;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::rotate(6, 20),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
    }

    #[test]
    fn replicated_read_no_messages() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::replicated(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 0);
    }

    #[test]
    fn guarded_clause_still_consumes_messages() {
        // guard reads C (scatter) while A is block: values must flow even
        // for iterations whose guard fails, or the pairing deadlocks.
        let n = 32;
        let clause = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("C", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
        env.insert("B", Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64));
        env.insert(
            "C",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() % 2 == 0 { 1.0 } else { -1.0 }
            }),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("B".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("C".into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));

        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B", "C"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn dropped_message_detected_not_hung() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(200),
            faults: Some(FaultInjection { drop_from: 1, drop_nth: 0 }),
        };
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        assert!(matches!(err, MachineError::MissingMessage { .. }), "{err}");
    }

    #[test]
    fn sequential_clause_rejected() {
        let n = 16;
        let (mut clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        clause.ordering = Ordering::Seq;
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        assert_eq!(
            run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap_err(),
            MachineError::SequentialClause
        );
    }
}
