//! The distributed-memory SPMD machine (paper Section 2.10).
//!
//! Each virtual processor is an OS thread owning private local memories
//! (the machine images `A'`, `B'` of Section 2.6), connected by
//! unbounded channels giving the paper's assumed semantics: non-blocking
//! `send`, blocking `receive`. Every node executes the template:
//!
//! ```text
//! p := my_node;
//! -- send phase: i ∈ Reside_p with proc_A(f(i)) ≠ p
//! send(proc_A(f(i)), B_L[local_B(g(i))]);
//! -- update phase: i ∈ Modify_p
//! tmp := if proc_B(g(i)) = p then B_L[local_B(g(i))] else receive(...);
//! A_L[local_A(f(i))] := Expr(tmp);
//! ```
//!
//! The iteration sets come from the plan's schedules (naive or
//! closed-form), so the machine measures exactly the run-time the paper's
//! compile-time optimizations buy.
//!
//! Two communication modes implement the template
//! ([`CommMode`], selected via [`DistOptions`]):
//!
//! * **Element** — the literal template: one tagged `(read-slot,
//!   loop-index)` message per remote element, destination resolved by an
//!   ownership test at run time, out-of-order arrivals absorbed by an
//!   ordered pending buffer.
//! * **Vectorized** (default) — the plan's communication schedule
//!   ([`vcal_spmd::NodeCommPlan`], derived at plan time from
//!   `Reside_p ∩ Modify_q`) drives the send phase directly: one vector
//!   message per coalesced run, packed in run order. The receiver stages
//!   each packet by its `(source, run)` tag — derived from the *same*
//!   plan, so no per-element matching happens — and the update phase
//!   reads values by plan-computed offsets.
//!
//! Both modes ship their messages through the reliable transport of
//! [`crate::transport`] (per-flow sequence numbers, checksums, duplicate
//! suppression, NACK/retransmit recovery with bounded retries), so runs
//! survive transient faults injected by a seeded [`FaultPlan`] and
//! degrade into typed [`MachineError`]s — never a hang — when a fault is
//! permanent. A panicking node thread is caught by the supervisor and
//! surfaced as [`MachineError::NodePanicked`]; local writes are
//! committed by the host only when *every* node succeeded, so a failed
//! run leaves the distributed arrays exactly as they were.
//!
//! Wire traffic is modeled in [`NodeStats`]: `msgs_sent`/`msgs_received`
//! always count payload *elements* (identical across modes), while
//! `packets_sent`/`bytes_sent`/`max_packet_elems` expose the batching
//! (an element message costs 24 modeled bytes — slot, index, value — and
//! a vector message 16 header bytes plus 8 per element). Reliability
//! traffic is counted separately (`retransmits`, `dups_dropped`,
//! `corrupt_detected`, `acks_sent`, `nacks_sent`).

use crate::darray::DistArray;
use crate::error::MachineError;
use crate::net::ChaosPlan;
use crate::obs::{trace_plan, EventKind, Phase, Tracer, NULL_TRACER};
use crate::stats::{ExecReport, NodeStats};
use crate::transport::{
    await_until, AwaitFail, Endpoint, FaultPlan, Frame, ProtoTimeouts, RetryPolicy, TransportKind,
    WirePayload,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ordering};
use vcal_decomp::Decomp1;
use vcal_spmd::{
    simd, AccessPattern, CompiledKernel, CompiledNode, CompiledSchedule, ExecRun, FusedShape,
    NodePlan, SimdPolicy, SlotAccess, SlotRef, SpmdPlan,
};

/// A tagged value message.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Msg {
    /// Index into the node's reside/read slot list.
    pub(crate) slot: usize,
    /// Loop index the value belongs to.
    pub(crate) i: i64,
    /// The payload.
    pub(crate) value: f64,
}

/// Modeled wire cost of one element message (slot + index + value).
pub(crate) const ELEM_MSG_BYTES: u64 = 24;
/// Modeled header cost of one vector message (source + run tag).
pub(crate) const PACK_HEADER_BYTES: u64 = 16;

/// The machine-level payload of a wire packet.
#[derive(Debug, Clone)]
pub(crate) enum Wire {
    /// Element mode: one tagged value.
    Elem(Msg),
    /// Vectorized mode: all values of one planned run, packed in run
    /// order. `run_ord` indexes the sender's run list for this pair,
    /// which the plan guarantees is identical to the receiver's.
    Pack { run_ord: usize, values: Vec<f64> },
}

impl WirePayload for Wire {
    fn digest(&self) -> u64 {
        let mut h = 0u64;
        match self {
            Wire::Elem(m) => {
                h ^= 1;
                h = h
                    .rotate_left(7)
                    .wrapping_add(m.slot as u64)
                    .rotate_left(7)
                    .wrapping_add(m.i as u64)
                    .rotate_left(7)
                    .wrapping_add(m.value.to_bits());
            }
            Wire::Pack { run_ord, values } => {
                h ^= 2;
                h = h.rotate_left(7).wrapping_add(*run_ord as u64);
                for v in values {
                    h = h.rotate_left(7).wrapping_add(v.to_bits());
                }
            }
        }
        h
    }

    fn corrupt(&mut self, bits: u64) {
        match self {
            Wire::Elem(m) => {
                m.value = f64::from_bits(m.value.to_bits() ^ (1 << (bits % 52)));
            }
            Wire::Pack { values, .. } => {
                if !values.is_empty() {
                    let k = (bits as usize) % values.len();
                    values[k] = f64::from_bits(values[k].to_bits() ^ (1 << (bits % 52)));
                }
            }
        }
    }
}

/// How remote operands travel between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// One tagged message per element (the literal Section 2.10
    /// template; kept as the baseline and fallback).
    Element,
    /// One vector message per planned communication run.
    #[default]
    Vectorized,
}

/// Legacy deterministic fault injection: drop one wire message of one
/// node. Kept as a compatibility shim — convert it into the richer
/// seed-driven [`FaultPlan`] via `From`/`Into`.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Node whose outgoing message is dropped.
    pub drop_from: i64,
    /// Which of its wire messages (0-based send order) to drop —
    /// elements in [`CommMode::Element`], packets in
    /// [`CommMode::Vectorized`].
    pub drop_nth: u64,
}

impl From<FaultInjection> for FaultPlan {
    fn from(f: FaultInjection) -> FaultPlan {
        FaultPlan::drop_nth(f.drop_from, f.drop_nth)
    }
}

/// Execution options for the distributed machine.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// How long a blocking receive waits, in total, before reporting a
    /// lost message (also caps the post-run drain that services late
    /// retransmit requests).
    pub recv_timeout: Duration,
    /// Optional seed-driven fault injection.
    pub faults: Option<FaultPlan>,
    /// How remote operands are shipped.
    pub mode: CommMode,
    /// NACK/retransmit recovery policy; [`RetryPolicy::none`] restores
    /// the legacy fail-on-first-timeout behavior.
    pub retry: RetryPolicy,
    /// Communication/computation overlap: execute *interior* compiled
    /// runs (all operands owner-local) while boundary packets are in
    /// flight, finishing *boundary* runs as receives land. `false`
    /// executes the compiled runs strictly in schedule visit order.
    /// Results and the deterministic trace class are identical either
    /// way; only applies when the plan compiled execution tables.
    pub overlap: bool,
    /// SIMD lane policy for fused interior runs (see
    /// `vcal_spmd::simd`). Lane parallelism never re-associates any
    /// per-element computation, so results are bitwise identical to the
    /// scalar path under every mode.
    pub simd: SimdPolicy,
    /// Which carrier moves frames between nodes. [`TransportKind::InProc`]
    /// (the default) runs nodes as threads over channels; `Uds`/`Tcp`
    /// run every node as a real OS process exchanging length-prefixed
    /// frames through a host-side router (DESIGN.md §15). Results,
    /// statistics, and the deterministic trace class are identical
    /// across backends.
    pub transport: TransportKind,
    /// Byte-level wire chaos (truncate/bitflip/stall/sever), injected by
    /// a proxy between the workers and the router. Only meaningful on
    /// the socket backends; ignored under `InProc`.
    pub chaos: Option<ChaosPlan>,
    /// Socket-backend protocol timeouts (heartbeat, spawn deadline, run
    /// grace, job resend). Per-run before; service-level now, so a
    /// resident `vcalc serve` can tighten failure detection without a
    /// recompile. Ignored under [`TransportKind::InProc`].
    pub timeouts: ProtoTimeouts,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            recv_timeout: Duration::from_secs(5),
            faults: None,
            mode: CommMode::default(),
            retry: RetryPolicy::default(),
            overlap: true,
            simd: SimdPolicy::default(),
            transport: TransportKind::default(),
            chaos: None,
            timeouts: ProtoTimeouts::default(),
        }
    }
}

/// Expression with read references resolved to slot indices (so the hot
/// loop never touches array names).
pub(crate) enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar,
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

pub(crate) fn resolve_expr(e: &Expr, node: &NodePlan) -> Result<RExpr, MachineError> {
    match e {
        Expr::Ref(r) => {
            let g = r.map.as_fn1().ok_or_else(|| {
                MachineError::PlanMismatch(format!(
                    "read ref `{}` is not 1-D but the plan is",
                    r.array
                ))
            })?;
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == r.array && rp.g == *g)
                .ok_or_else(|| {
                    MachineError::PlanMismatch(format!(
                        "read ref `{}` missing from the plan's reside list",
                        r.array
                    ))
                })?;
            Ok(RExpr::Slot(slot))
        }
        Expr::Lit(v) => Ok(RExpr::Lit(*v)),
        Expr::LoopVar { dim } => {
            if *dim != 0 {
                return Err(MachineError::PlanMismatch(format!(
                    "loop variable of dimension {dim} in a 1-D plan"
                )));
            }
            Ok(RExpr::LoopVar)
        }
        Expr::Neg(inner) => Ok(RExpr::Neg(Box::new(resolve_expr(inner, node)?))),
        Expr::Bin(op, a, b) => Ok(RExpr::Bin(
            *op,
            Box::new(resolve_expr(a, node)?),
            Box::new(resolve_expr(b, node)?),
        )),
    }
}

pub(crate) fn eval_rexpr(e: &RExpr, i: i64, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar => i as f64,
        RExpr::Neg(inner) => -eval_rexpr(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_rexpr(a, i, vals), eval_rexpr(b, i, vals)),
    }
}

pub(crate) enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

pub(crate) fn resolve_guard(g: &Guard, node: &NodePlan) -> Result<RGuard, MachineError> {
    match g {
        Guard::Always => Ok(RGuard::Always),
        Guard::Cmp { lhs, op, rhs } => {
            let gf = lhs.map.as_fn1().ok_or_else(|| {
                MachineError::PlanMismatch(format!(
                    "guard ref `{}` is not 1-D but the plan is",
                    lhs.array
                ))
            })?;
            let slot = node
                .resides
                .iter()
                .position(|rp| rp.array == lhs.array && rp.g == *gf)
                .ok_or_else(|| {
                    MachineError::PlanMismatch(format!(
                        "guard ref `{}` missing from the plan's reside list",
                        lhs.array
                    ))
                })?;
            Ok(RGuard::Cmp {
                slot,
                op: *op,
                rhs: *rhs,
            })
        }
    }
}

/// One collected local write of a node: committed by the host, in
/// collection order, only when the whole run succeeded. The dense form
/// is the pure-copy fused kernel's `copy_from_slice` degradation — a
/// unit-stride run commits as one slice copy instead of per-element
/// stores.
#[derive(Debug, Clone)]
pub(crate) enum WriteOp {
    /// One element: `lhs_local[offset] = value`.
    El(usize, f64),
    /// A contiguous span:
    /// `lhs_local[base..base+values.len()].copy_from_slice(values)`.
    Dense {
        /// First local offset of the span.
        base: usize,
        /// The values, in offset order.
        values: Vec<f64>,
    },
}

/// What one node thread returns: id, its (unmodified) local memories,
/// the local writes it wants committed, statistics, per-destination
/// send counts, and its error state. Writes are applied by the host
/// only when every node succeeded, so a failed run restores state.
pub(crate) type NodeOutcome = (
    i64,
    BTreeMap<String, Vec<f64>>,
    Vec<WriteOp>,
    NodeStats,
    Vec<u64>,
    Result<(), MachineError>,
);

/// Per-node worker state handed to its thread.
struct Worker {
    p: i64,
    locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Frame<Wire>>,
}

/// A zero part of the right local size — the last-resort placeholder
/// when a node thread died without returning its memories. A negative
/// local count means the decomposition does not cover node `p` at all:
/// that is a plan/decomposition mismatch and is reported as a typed
/// error instead of being silently clamped to an empty part.
pub(crate) fn zero_part(dec: &Decomp1, p: i64) -> Result<Vec<f64>, MachineError> {
    let count = dec.local_count(p);
    if count < 0 {
        return Err(MachineError::PlanMismatch(format!(
            "decomposition reports negative local count {count} for node {p}"
        )));
    }
    Ok(vec![0.0; count as usize])
}

/// Remove every referenced image from `arrays` and split it into
/// per-node local memories. Two-phase: a missing array restores the
/// already-removed images and reports a typed error, so the map is
/// never left partially disassembled.
pub(crate) fn disassemble(
    arrays: &mut BTreeMap<String, DistArray>,
    referenced: &[String],
    pmax: i64,
) -> Result<Vec<BTreeMap<String, Vec<f64>>>, MachineError> {
    let mut taken: Vec<(String, DistArray)> = Vec::with_capacity(referenced.len());
    for name in referenced {
        match arrays.remove(name) {
            Some(da) => taken.push((name.clone(), da)),
            None => {
                for (n, da) in taken {
                    arrays.insert(n, da);
                }
                return Err(MachineError::UnknownArray(name.clone()));
            }
        }
    }
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for (name, da) in taken {
        let (_, parts) = da.into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }
    Ok(per_node)
}

/// The host-side tail every distributed execution shares (cold scoped
/// threads and the persistent pool alike): order the outcomes, pick the
/// run's root-cause error, validate all writes, commit them
/// all-or-nothing, and reassemble the distributed images — on error,
/// from the *unmodified* local memories, restoring pre-run state.
pub(crate) fn finalize_run(
    lhs_array: &str,
    referenced: &[String],
    decomps: &BTreeMap<String, Decomp1>,
    mut results: Vec<NodeOutcome>,
    arrays: &mut BTreeMap<String, DistArray>,
    tracer: &dyn Tracer,
) -> Result<ExecReport, MachineError> {
    results.sort_by_key(|(p, ..)| *p);

    // pick the run's error: a panic or a dead worker process is the
    // root cause and wins over the secondary Unrecoverable/Missing*
    // errors it induces on peers
    let root_cause = |e: &MachineError| {
        matches!(
            e,
            MachineError::NodePanicked { .. } | MachineError::Transport { .. }
        )
    };
    let mut first_err: Option<MachineError> = None;
    for (.., res) in &results {
        if let Err(e) = res {
            match &first_err {
                None => first_err = Some(e.clone()),
                Some(have) if !root_cause(have) && root_cause(e) => first_err = Some(e.clone()),
                Some(_) => {}
            }
        }
    }

    // validate every write before committing any (all-or-nothing)
    if first_err.is_none() {
        'validate: for (p, locals, writes, ..) in &results {
            let len = locals.get(lhs_array).map_or(0, Vec::len);
            for w in writes {
                let bad = match w {
                    WriteOp::El(off, _) => (*off >= len).then_some((*off, 1usize)),
                    WriteOp::Dense { base, values } => {
                        (base + values.len() > len).then_some((*base, values.len()))
                    }
                };
                if let Some((off, span)) = bad {
                    first_err = Some(MachineError::PlanMismatch(format!(
                        "write span [{off}, {}) outside node {p}'s local part (len {len})",
                        off + span
                    )));
                    break 'validate;
                }
            }
        }
    }
    let commit = first_err.is_none();

    // reassemble the distributed images (on error: pre-run state)
    let commit_t0 = tracer.enabled().then(std::time::Instant::now);
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    let mut report = ExecReport::default();
    for (p, mut locals, writes, stats, sent_to, _res) in results {
        if commit {
            if let Some(lhs_local) = locals.get_mut(lhs_array) {
                for w in writes {
                    match w {
                        WriteOp::El(off, v) => lhs_local[off] = v, // validated above
                        WriteOp::Dense { base, values } => {
                            lhs_local[base..base + values.len()].copy_from_slice(&values)
                        }
                    }
                }
            }
        }
        for name in referenced {
            let part = match locals.remove(name) {
                Some(part) => part,
                None => match zero_part(&decomps[name], p) {
                    Ok(z) => z,
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        Vec::new()
                    }
                },
            };
            parts_by_name.entry(name.clone()).or_default().push(part);
        }
        report.nodes.push(stats);
        report.traffic.push(sent_to);
    }
    for (name, parts) in parts_by_name {
        let dec = decomps[&name].clone();
        arrays.insert(name, DistArray::from_parts(dec, parts));
    }
    if let Some(t0) = commit_t0 {
        tracer.timing(crate::obs::HOST, Phase::Commit, t0.elapsed());
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Execute a `//` clause on the distributed-memory machine.
///
/// `arrays` maps every referenced array to its distributed image; the
/// decompositions of those images must be the ones the plan was built
/// with. On success the images are updated in place; on *any* error the
/// images are restored to their pre-run state (writes are committed by
/// the host only after every node succeeded).
pub fn run_distributed(
    plan: &SpmdPlan,
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    opts: DistOptions,
) -> Result<ExecReport, MachineError> {
    run_distributed_traced(plan, clause, arrays, opts, &NULL_TRACER)
}

/// Like [`run_distributed`] but with an observability hook: dispatch
/// decisions, phase spans, per-element/packet traffic, and transport
/// reliability events are reported to `tracer` (see [`crate::obs`]).
/// With a disabled tracer the instrumented paths cost one cached
/// branch each — [`run_distributed`] simply passes
/// [`crate::obs::NULL_TRACER`].
pub fn run_distributed_traced(
    plan: &SpmdPlan,
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArray>,
    opts: DistOptions,
    tracer: &dyn Tracer,
) -> Result<ExecReport, MachineError> {
    if plan.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    if opts.transport != TransportKind::InProc {
        // socket backends: a one-shot pool of real worker processes
        // (persistent pools live in `DistSession`)
        return crate::proc::run_one_shot(plan, clause, arrays, opts, tracer);
    }
    let pmax = plan.pmax;

    // collect referenced arrays and their decompositions
    let node0 = plan
        .nodes
        .first()
        .ok_or_else(|| MachineError::PlanMismatch("plan has no nodes".into()))?;
    let mut referenced: Vec<String> = vec![plan.lhs_array.clone()];
    for rp in &node0.resides {
        if !referenced.contains(&rp.array) {
            referenced.push(rp.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, Decomp1> = BTreeMap::new();
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        if da.decomp().pmax() != pmax {
            return Err(MachineError::PlanMismatch(format!(
                "array `{name}` decomposed over {} processors, plan has {pmax}",
                da.decomp().pmax()
            )));
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let dec_lhs = decomps[&plan.lhs_array].clone();

    // resolve expressions/guards per node before touching the arrays,
    // so a malformed plan is a clean typed error with state intact
    let mut rexpr_per_node: Vec<RExpr> = Vec::with_capacity(plan.nodes.len());
    let mut rguard_per_node: Vec<RGuard> = Vec::with_capacity(plan.nodes.len());
    for n in &plan.nodes {
        rexpr_per_node.push(resolve_expr(&clause.rhs, n)?);
        rguard_per_node.push(resolve_guard(&clause.guard, n)?);
    }

    // compile the kernel + interior/boundary execution tables; a
    // naive-guard plan yields no tables and keeps the legacy element
    // path (identical to what the persistent executor does, so cold
    // and warm runs execute — and trace — the same way)
    let compiled = CompiledSchedule::compile_exec(plan, clause, &decomps);

    // record which Table I row fired for every schedule (plan span)
    trace_plan(tracer, plan);

    // disassemble the distributed images into per-node local memories
    let per_node = disassemble(arrays, &referenced, pmax)?;

    // channels: one receiver per node, senders shared
    let mut txs: Vec<Sender<Frame<Wire>>> = Vec::with_capacity(pmax as usize);
    let mut workers: Vec<Worker> = Vec::with_capacity(pmax as usize);
    for (p, locals) in per_node.into_iter().enumerate() {
        let (tx, rx) = unbounded();
        txs.push(tx);
        workers.push(Worker {
            p: p as i64,
            locals,
            rx,
        });
    }

    let mut results: Vec<NodeOutcome> = Vec::with_capacity(pmax as usize);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in workers {
            let node = &plan.nodes[worker.p as usize];
            let rexpr = &rexpr_per_node[worker.p as usize];
            let rguard = &rguard_per_node[worker.p as usize];
            let exec = match (&compiled.kernel, compiled.nodes.get(worker.p as usize)) {
                (Some(kernel), Some(cn)) => Some((cn, kernel)),
                _ => None,
            };
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let plan = &plan;
            handles.push(scope.spawn(move || {
                run_node(
                    worker, node, plan, exec, rexpr, rguard, txs, decomps, dec_lhs, opts, tracer,
                )
            }));
        }
        // drop the main thread's senders so lost messages cannot keep
        // channels alive artificially (receives use timeouts anyway)
        drop(txs);
        for (p, h) in handles.into_iter().enumerate() {
            // the supervisor: a panic that escaped the in-thread guard
            // still becomes a typed error, never a host abort
            results.push(h.join().unwrap_or_else(|_| {
                (
                    p as i64,
                    BTreeMap::new(),
                    Vec::new(),
                    NodeStats::default(),
                    vec![0u64; pmax as usize],
                    Err(MachineError::NodePanicked { node: p as i64 }),
                )
            }));
        }
    });

    finalize_run(
        &plan.lhs_array,
        &referenced,
        &decomps,
        results,
        arrays,
        tracer,
    )
}

/// One node thread: run the SPMD phases under a panic guard, then
/// announce completion and service late retransmit requests. A node
/// that panicked announces completion (the reset analog) but services
/// nothing — its unsent data is gone, and peers surface that as
/// [`MachineError::Unrecoverable`].
#[allow(clippy::too_many_arguments)]
fn run_node(
    worker: Worker,
    node: &NodePlan,
    plan: &SpmdPlan,
    exec: Option<(&CompiledNode, &CompiledKernel)>,
    rexpr: &RExpr,
    rguard: &RGuard,
    txs: Vec<Sender<Frame<Wire>>>,
    decomps: &BTreeMap<String, Decomp1>,
    dec_lhs: &Decomp1,
    opts: DistOptions,
    tracer: &dyn Tracer,
) -> NodeOutcome {
    let p = worker.p;
    let mut locals = worker.locals;
    let mut stats = NodeStats::default();
    let mut sent_to = vec![0u64; txs.len()];
    let mut writes: Vec<WriteOp> = Vec::new();
    let mut ep = Endpoint::in_proc(p, txs, worker.rx, opts.faults, tracer);
    let trace_on = tracer.enabled();

    let phases = catch_unwind(AssertUnwindSafe(|| {
        node_phases(
            p,
            &mut locals,
            node,
            plan,
            exec,
            rexpr,
            rguard,
            &mut ep,
            decomps,
            dec_lhs,
            &opts,
            &mut stats,
            &mut sent_to,
            &mut writes,
            tracer,
        )
    }));
    let res = match phases {
        Ok(r) => {
            ep.announce_done();
            if trace_on {
                tracer.record(p, EventKind::PhaseStart(Phase::Drain));
                let t0 = std::time::Instant::now();
                ep.drain(opts.recv_timeout, &mut stats);
                tracer.timing(p, Phase::Drain, t0.elapsed());
                tracer.record(p, EventKind::PhaseEnd(Phase::Drain));
            } else {
                ep.drain(opts.recv_timeout, &mut stats);
            }
            r
        }
        Err(_) => {
            ep.announce_done();
            Err(MachineError::NodePanicked { node: p })
        }
    };
    if res.is_err() {
        writes.clear();
    }
    (p, locals, writes, stats, sent_to, res)
}

/// The send + update phases of one node (panics are caught by the
/// caller's supervisor). Local writes are *collected*, not applied —
/// the host commits them only when the whole run succeeded.
#[allow(clippy::too_many_arguments)]
fn node_phases(
    p: i64,
    locals: &mut BTreeMap<String, Vec<f64>>,
    node: &NodePlan,
    plan: &SpmdPlan,
    exec: Option<(&CompiledNode, &CompiledKernel)>,
    rexpr: &RExpr,
    rguard: &RGuard,
    ep: &mut Endpoint<Wire>,
    decomps: &BTreeMap<String, Decomp1>,
    dec_lhs: &Decomp1,
    opts: &DistOptions,
    stats: &mut NodeStats,
    sent_to: &mut [u64],
    writes: &mut Vec<WriteOp>,
    tracer: &dyn Tracer,
) -> Result<(), MachineError> {
    stats.guard_tests += node.modify.schedule.work_estimate();
    let trace_on = tracer.enabled();

    // ---- send phase: Reside_p ∩ Modify_q, q ≠ p -------------------------
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Send));
    }
    let send_t0 = trace_on.then(std::time::Instant::now);
    match (opts.mode, exec) {
        (CommMode::Element, Some((cn, _))) => {
            // compiled: the pair runs know the destination — the
            // per-element `proc_of(f(i))` owner test is hoisted to the
            // pair (owner is constant across a pair's runs by
            // construction: `Send_{p→q} = Reside_p ∩ Modify_q`)
            send_phase_element_compiled(p, locals, node, cn, decomps, ep, stats, sent_to, tracer);
        }
        (CommMode::Element, None) => {
            // literal template: per-element ownership test + tagged send
            // (the naive-guard fallback — no compiled tables exist)
            for (slot, rp) in node.resides.iter().enumerate() {
                if rp.replicated {
                    continue;
                }
                stats.guard_tests += rp.opt.schedule.work_estimate();
                let dec_r = &decomps[&rp.array];
                let local_part = &locals[&rp.array];
                rp.opt.schedule.for_each(|i| {
                    let owner = dec_lhs.proc_of(plan.f.eval(i));
                    if owner != p {
                        let g = rp.g.eval(i);
                        let value = local_part[dec_r.local_of(g) as usize];
                        // non-blocking send through the reliable transport
                        ep.send(owner as usize, Wire::Elem(Msg { slot, i, value }));
                        if trace_on {
                            tracer.record(
                                p,
                                EventKind::ElemSend {
                                    dst: owner,
                                    slot,
                                    i,
                                },
                            );
                        }
                        sent_to[owner as usize] += 1;
                        stats.msgs_sent += 1;
                        stats.packets_sent += 1;
                        stats.bytes_sent += ELEM_MSG_BYTES;
                        stats.max_packet_elems = stats.max_packet_elems.max(1);
                    }
                });
            }
        }
        (CommMode::Vectorized, _) => {
            // the plan already knows every destination and run: pack each
            // run into one vector message, no run-time ownership tests
            for pair in &node.comm.sends {
                for (run_ord, run) in pair.runs.iter().enumerate() {
                    let rp = &node.resides[run.slot];
                    let dec_r = &decomps[&rp.array];
                    let local_part = &locals[&rp.array];
                    let mut values = Vec::with_capacity(run.count as usize);
                    run.for_each(|i| {
                        values.push(local_part[dec_r.local_of(rp.g.eval(i)) as usize]);
                    });
                    let elems = values.len() as u64;
                    ep.send(pair.peer as usize, Wire::Pack { run_ord, values });
                    if trace_on {
                        tracer.record(
                            p,
                            EventKind::PackSend {
                                dst: pair.peer,
                                run: run_ord,
                                elems,
                                bytes: PACK_HEADER_BYTES + 8 * elems,
                            },
                        );
                    }
                    sent_to[pair.peer as usize] += elems;
                    stats.msgs_sent += elems;
                    stats.packets_sent += 1;
                    stats.bytes_sent += PACK_HEADER_BYTES + 8 * elems;
                    stats.max_packet_elems = stats.max_packet_elems.max(elems);
                }
            }
        }
    }
    ep.end_send_phase(); // flush delayed packets; crash point
    if let Some(t0) = send_t0 {
        tracer.timing(p, Phase::Send, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Send));
    }

    // ---- update phase: Modify_p -----------------------------------------
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Update));
    }
    let update_t0 = trace_on.then(std::time::Instant::now);

    // compiled path: fused/bytecode kernels over the interior/boundary
    // exec runs — never touches the tree interpreter
    if let Some((cn, kernel)) = exec {
        let mut pending: BTreeMap<(usize, i64), f64> = BTreeMap::new();
        let mut staging: Vec<Vec<Option<Vec<f64>>>> =
            cn.staging_runs.iter().map(|&n| vec![None; n]).collect();
        let mut rcv = RecvCtx::Single {
            pending: &mut pending,
            staging: &mut staging,
        };
        let mut vals = vec![0.0f64; node.resides.len()];
        let mut stack: Vec<f64> = Vec::with_capacity(kernel.stack_capacity());
        let res = exec_update_phase(
            p, locals, node, cn, kernel, rguard, ep, &mut rcv, &mut vals, &mut stack, opts, stats,
            writes, tracer,
        );
        if let Some(t0) = update_t0 {
            tracer.timing(p, Phase::Update, t0.elapsed());
            tracer.record(p, EventKind::PhaseEnd(Phase::Update));
        }
        return res;
    }

    let mut recv = RecvState::new(node, opts.mode, plan.pmax as usize);
    writes.reserve(node.modify.schedule.count() as usize);
    let mut vals = vec![0.0f64; node.resides.len()];
    let mut err: Option<MachineError> = None;

    let n_slots = node.resides.len();
    node.modify.schedule.for_each(|i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        // gather all operand values for this iteration
        #[allow(clippy::needless_range_loop)] // `vals[slot]` is written, not read
        for slot in 0..n_slots {
            let rp = &node.resides[slot];
            let g = rp.g.eval(i);
            let owner = if rp.replicated {
                p
            } else {
                decomps[&rp.array].proc_of(g)
            };
            vals[slot] = if owner == p {
                stats.local_reads += 1;
                locals[&rp.array][decomps[&rp.array].local_of(g) as usize]
            } else {
                match recv.remote_value(ep, slot, i, owner, opts, stats) {
                    Ok(v) => {
                        if trace_on {
                            tracer.record(
                                p,
                                EventKind::RecvValue {
                                    src: owner,
                                    slot,
                                    i,
                                },
                            );
                        }
                        stats.msgs_received += 1;
                        v
                    }
                    Err(RecvFail::Timeout) => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rp.array.clone(),
                            index: i,
                        });
                        return;
                    }
                    Err(RecvFail::PacketTimeout { peer, run }) => {
                        err = Some(MachineError::MissingPacket {
                            node: p,
                            peer,
                            slot,
                            run,
                        });
                        return;
                    }
                    Err(RecvFail::Exhausted { peer, retries }) => {
                        err = Some(MachineError::Unrecoverable {
                            node: p,
                            peer,
                            retries,
                        });
                        return;
                    }
                    Err(RecvFail::BadWire(why)) => {
                        err = Some(MachineError::PlanMismatch(format!(
                            "node {p}, array `{}`, i={i}: {why}",
                            rp.array
                        )));
                        return;
                    }
                }
            };
        }
        stats.data_guards += 1;
        let guard_ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if guard_ok {
            let v = eval_rexpr(rexpr, i, &vals);
            let target = plan.f.eval(i);
            writes.push(WriteOp::El(dec_lhs.local_of(target) as usize, v));
        }
    });
    if let Some(t0) = update_t0 {
        tracer.timing(p, Phase::Update, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Update));
    }

    err.map_or(Ok(()), Err)
}

/// Element-mode send phase over the plan's pair runs: the wire multiset
/// is identical to the literal template's reside scan (`Send_{p→q} =
/// Reside_p ∩ Modify_q`), but the destination is the pair's peer — the
/// per-element `proc_of(f(i))` owner recomputation is gone. Shared by
/// the cold machine and the persistent executor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn send_phase_element_compiled(
    p: i64,
    locals: &BTreeMap<String, Vec<f64>>,
    node: &NodePlan,
    cn: &CompiledNode,
    decomps: &BTreeMap<String, Decomp1>,
    ep: &mut Endpoint<Wire>,
    stats: &mut NodeStats,
    sent_to: &mut [u64],
    tracer: &dyn Tracer,
) {
    let trace_on = tracer.enabled();
    // the reside scans' loop-overhead accounting, unchanged from the
    // literal template (the scan itself is what the pair runs replace)
    for (slot, rp) in node.resides.iter().enumerate() {
        if !rp.replicated {
            stats.guard_tests += cn.reside_work.get(slot).copied().unwrap_or(0);
        }
    }
    for pair in &node.comm.sends {
        let owner = pair.peer; // hoisted: constant across the pair's runs
        for run in &pair.runs {
            let Some(rp) = node.resides.get(run.slot) else {
                continue;
            };
            let slot = run.slot;
            let (Some(dec_r), Some(local_part)) = (decomps.get(&rp.array), locals.get(&rp.array))
            else {
                continue;
            };
            run.for_each(|i| {
                let value = local_part[dec_r.local_of(rp.g.eval(i)) as usize];
                ep.send(owner as usize, Wire::Elem(Msg { slot, i, value }));
                if trace_on {
                    tracer.record(
                        p,
                        EventKind::ElemSend {
                            dst: owner,
                            slot,
                            i,
                        },
                    );
                }
                sent_to[owner as usize] += 1;
                stats.msgs_sent += 1;
                stats.packets_sent += 1;
                stats.bytes_sent += ELEM_MSG_BYTES;
                stats.max_packet_elems = stats.max_packet_elems.max(1);
            });
        }
    }
}

/// The compiled update phase: execute the node's [`ExecRun`] tables with
/// the compiled kernel. With `opts.overlap` every *interior* run (all
/// operands owner-local by the Table I dispatch) executes before any
/// *boundary* run touches the transport, so compute proceeds while
/// packets are in flight; without it, runs execute in schedule visit
/// order. Writes are staged per run and flattened back into visit order
/// before returning, so the commit order — and therefore the result,
/// even for non-injective `f` — is identical either way.
///
/// Shared verbatim by the cold machine and the persistent executor's
/// warm path (the buffers come from the caller so the executor can
/// reuse its scratch allocations).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_update_phase(
    p: i64,
    locals: &BTreeMap<String, Vec<f64>>,
    node: &NodePlan,
    cn: &CompiledNode,
    kernel: &CompiledKernel,
    rguard: &RGuard,
    ep: &mut Endpoint<Wire>,
    rcv: &mut RecvCtx<'_>,
    vals: &mut [f64],
    stack: &mut Vec<f64>,
    opts: &DistOptions,
    stats: &mut NodeStats,
    writes: &mut Vec<WriteOp>,
    tracer: &dyn Tracer,
) -> Result<(), MachineError> {
    let mut parts: Vec<&[f64]> = Vec::with_capacity(node.resides.len());
    for rp in &node.resides {
        parts.push(
            locals
                .get(&rp.array)
                .map(Vec::as_slice)
                .ok_or_else(|| MachineError::UnknownArray(rp.array.clone()))?,
        );
    }
    // baseline for the per-phase SIMD census event (the executor's warm
    // path may hand us stats that already carry earlier counts)
    let simd0 = (
        stats.simd_runs,
        stats.simd_fallback_runs,
        stats.simd_lane_elems,
        stats.simd_tail_elems,
    );
    let mut chunks: Vec<Vec<WriteOp>> = vec![Vec::new(); cn.exec.len()];
    if opts.overlap {
        // interior first — boundary runs block on receives, interior
        // runs never do
        for boundary_pass in [false, true] {
            for (k, er) in cn.exec.iter().enumerate() {
                if er.boundary != boundary_pass {
                    continue;
                }
                exec_one_run(
                    p,
                    k,
                    er,
                    &parts,
                    node,
                    cn,
                    kernel,
                    rguard,
                    ep,
                    rcv,
                    vals,
                    stack,
                    opts,
                    stats,
                    &mut chunks[k],
                    tracer,
                )?;
            }
        }
    } else {
        for (k, er) in cn.exec.iter().enumerate() {
            exec_one_run(
                p,
                k,
                er,
                &parts,
                node,
                cn,
                kernel,
                rguard,
                ep,
                rcv,
                vals,
                stack,
                opts,
                stats,
                &mut chunks[k],
                tracer,
            )?;
        }
    }
    // flatten in visit order: commit order is overlap-independent
    writes.reserve(chunks.iter().map(Vec::len).sum());
    for c in &mut chunks {
        writes.append(c);
    }
    if tracer.enabled() {
        tracer.record(
            p,
            EventKind::SimdCensus {
                vector_runs: stats.simd_runs - simd0.0,
                fallback_runs: stats.simd_fallback_runs - simd0.1,
                lane_elems: stats.simd_lane_elems - simd0.2,
                tail_elems: stats.simd_tail_elems - simd0.3,
            },
        );
    }
    Ok(())
}

#[inline]
fn read_local(part: &[f64], off: i64, p: i64, array: &str) -> Result<f64, MachineError> {
    usize::try_from(off)
        .ok()
        .and_then(|o| part.get(o))
        .copied()
        .ok_or_else(|| {
            MachineError::PlanMismatch(format!(
                "node {p}: local offset {off} outside `{array}` part (len {})",
                part.len()
            ))
        })
}

#[inline]
fn write_off(off: i64, p: i64) -> Result<usize, MachineError> {
    usize::try_from(off)
        .map_err(|_| MachineError::PlanMismatch(format!("node {p}: negative write offset {off}")))
}

fn fused_local_pattern(er: &ExecRun, slot: usize, p: i64) -> Result<&AccessPattern, MachineError> {
    match er.slots.get(slot) {
        Some(SlotAccess::Local(pat)) => Ok(pat),
        _ => Err(MachineError::PlanMismatch(format!(
            "node {p}: fused kernel slot {slot} is not owner-local in an interior run"
        ))),
    }
}

fn map_recv_fail(f: RecvFail, p: i64, array: &str, i: i64, slot: usize) -> MachineError {
    match f {
        RecvFail::Timeout => MachineError::MissingMessage {
            node: p,
            array: array.to_string(),
            index: i,
        },
        RecvFail::PacketTimeout { peer, run } => MachineError::MissingPacket {
            node: p,
            peer,
            slot,
            run,
        },
        RecvFail::Exhausted { peer, retries } => MachineError::Unrecoverable {
            node: p,
            peer,
            retries,
        },
        RecvFail::BadWire(why) => {
            MachineError::PlanMismatch(format!("node {p}, array `{array}`, i={i}: {why}"))
        }
    }
}

/// Execute one compiled run: fused fast path for interior runs of
/// recognized shapes, generic gather + bytecode everywhere else.
#[allow(clippy::too_many_arguments)]
fn exec_one_run(
    p: i64,
    k: usize,
    er: &ExecRun,
    parts: &[&[f64]],
    node: &NodePlan,
    cn: &CompiledNode,
    kernel: &CompiledKernel,
    rguard: &RGuard,
    ep: &mut Endpoint<Wire>,
    rcv: &mut RecvCtx<'_>,
    vals: &mut [f64],
    stack: &mut Vec<f64>,
    opts: &DistOptions,
    stats: &mut NodeStats,
    out: &mut Vec<WriteOp>,
    tracer: &dyn Tracer,
) -> Result<(), MachineError> {
    let trace_on = tracer.enabled();
    let n = er.run.len() as usize;
    let n_slots = node.resides.len();
    // fused paths need every operand owner-local and an always-true
    // guard; the stats they charge are exactly what the per-element
    // template would have charged (one gather per slot per iteration)
    let fused = (!er.boundary && matches!(rguard, RGuard::Always) && n > 0)
        .then_some(&kernel.fused)
        .filter(|f| !matches!(f, FusedShape::Generic));
    // SIMD lane tier: the plan-time predicate (unit-stride writes, all
    // read slots local unit-stride) plus the runtime guard/policy. The
    // lane kernels perform the exact per-element operation sequence of
    // the scalar arms below, so results are bitwise identical; only the
    // WriteOp batching differs (one Dense run instead of n Els), which
    // `finalize_run` commits identically.
    let simd_ok =
        opts.simd.enabled() && matches!(rguard, RGuard::Always) && er.simd_eligible(&kernel.fused);
    let mut vectorized = false;
    match fused {
        Some(FusedShape::Copy { slot }) => {
            stats.iterations += n as u64;
            stats.data_guards += n as u64;
            stats.local_reads += (n * n_slots) as u64;
            let pat = fused_local_pattern(er, *slot, p)?;
            let src = parts.get(*slot).copied().unwrap_or(&[]);
            match (&er.lhs, pat) {
                // both runs unit-stride: degrade to one slice copy
                (
                    AccessPattern::Affine { base: lb, step: 1 },
                    AccessPattern::Affine { base: sb, step: 1 },
                ) => {
                    let sb_us =
                        write_off(*sb, p).map_err(|_| read_oob(p, &node.resides[*slot].array))?;
                    let seg = src
                        .get(sb_us..sb_us + n)
                        .ok_or_else(|| read_oob(p, &node.resides[*slot].array))?;
                    let mut values = vec![0.0f64; n];
                    values.copy_from_slice(seg);
                    out.push(WriteOp::Dense {
                        base: write_off(*lb, p)?,
                        values,
                    });
                    // the slice copy predates the lane tier; the census
                    // claims it only when the policy is on
                    vectorized = simd_ok;
                }
                _ => {
                    for t in 0..n {
                        let v = read_local(src, pat.offset(t), p, &node.resides[*slot].array)?;
                        out.push(WriteOp::El(write_off(er.lhs.offset(t), p)?, v));
                    }
                }
            }
        }
        Some(FusedShape::Axpy { a, slot, b }) => {
            stats.iterations += n as u64;
            stats.data_guards += n as u64;
            stats.local_reads += (n * n_slots) as u64;
            let pat = fused_local_pattern(er, *slot, p)?;
            let src = parts.get(*slot).copied().unwrap_or(&[]);
            if simd_ok {
                let seg = fused_seg(src, pat, n)
                    .ok_or_else(|| read_oob(p, &node.resides[*slot].array))?;
                let mut values = vec![0.0f64; n];
                simd::axpy(opts.simd, *a, *b, seg, &mut values);
                out.push(WriteOp::Dense {
                    base: write_off(er.lhs.offset(0), p)?,
                    values,
                });
                vectorized = true;
            } else {
                for t in 0..n {
                    let mut v = read_local(src, pat.offset(t), p, &node.resides[*slot].array)?;
                    if let Some(a) = a {
                        v *= *a;
                    }
                    if let Some(b) = b {
                        v += *b;
                    }
                    out.push(WriteOp::El(write_off(er.lhs.offset(t), p)?, v));
                }
            }
        }
        Some(FusedShape::Stencil {
            slots,
            left_assoc,
            scale,
            offset,
        }) => {
            stats.iterations += n as u64;
            stats.data_guards += n as u64;
            stats.local_reads += (n * n_slots) as u64;
            let mut pats = Vec::with_capacity(slots.len());
            for s in slots {
                pats.push((
                    fused_local_pattern(er, *s, p)?,
                    parts.get(*s).copied().unwrap_or(&[][..]),
                    *s,
                ));
            }
            let segs = if simd_ok {
                pats.iter()
                    .map(|(pat, src, s)| {
                        fused_seg(src, pat, n).ok_or_else(|| read_oob(p, &node.resides[*s].array))
                    })
                    .collect::<Result<Vec<&[f64]>, _>>()?
            } else {
                Vec::new()
            };
            match segs.as_slice() {
                [s0, s1] => {
                    let mut values = vec![0.0f64; n];
                    simd::stencil2(opts.simd, *scale, *offset, s0, s1, &mut values);
                    out.push(WriteOp::Dense {
                        base: write_off(er.lhs.offset(0), p)?,
                        values,
                    });
                    vectorized = true;
                }
                [s0, s1, s2] => {
                    let mut values = vec![0.0f64; n];
                    simd::stencil3(
                        opts.simd,
                        *left_assoc,
                        *scale,
                        *offset,
                        s0,
                        s1,
                        s2,
                        &mut values,
                    );
                    out.push(WriteOp::Dense {
                        base: write_off(er.lhs.offset(0), p)?,
                        values,
                    });
                    vectorized = true;
                }
                _ => {
                    for t in 0..n {
                        let read = |j: usize| -> Result<f64, MachineError> {
                            let (pat, src, s) = &pats[j];
                            read_local(src, pat.offset(t), p, &node.resides[*s].array)
                        };
                        let x0 = read(0)?;
                        let x1 = read(1)?;
                        let mut v = if slots.len() == 3 {
                            let x2 = read(2)?;
                            if *left_assoc {
                                (x0 + x1) + x2
                            } else {
                                x0 + (x1 + x2)
                            }
                        } else {
                            x0 + x1
                        };
                        if let Some(s) = scale {
                            v *= *s;
                        }
                        if let Some(b) = offset {
                            v += *b;
                        }
                        out.push(WriteOp::El(write_off(er.lhs.offset(t), p)?, v));
                    }
                }
            }
        }
        Some(FusedShape::Generic) | None => {
            // generic: gather every slot (local by precomputed offset,
            // remote through the transport), then run the bytecode
            let mut i = er.run.start;
            for t in 0..n {
                stats.iterations += 1;
                for slot in 0..n_slots {
                    let rp = &node.resides[slot];
                    let v = match &er.slots[slot] {
                        SlotAccess::Local(pat) => {
                            stats.local_reads += 1;
                            read_local(parts[slot], pat.offset(t), p, &rp.array)?
                        }
                        SlotAccess::Mixed(refs) => {
                            match refs.get(t).copied().unwrap_or(SlotRef::Local(0)) {
                                SlotRef::Local(off) => {
                                    stats.local_reads += 1;
                                    read_local(parts[slot], off, p, &rp.array)?
                                }
                                SlotRef::Remote(owner) => {
                                    let res = match opts.mode {
                                        CommMode::Element => {
                                            recv_element(ep, rcv, slot, i, owner, opts, stats)
                                        }
                                        CommMode::Vectorized => recv_packed(
                                            ep,
                                            rcv,
                                            &cn.src_ord,
                                            &cn.src_peers,
                                            &cn.origin,
                                            slot,
                                            i,
                                            opts,
                                            stats,
                                        ),
                                    };
                                    match res {
                                        Ok(v) => {
                                            if trace_on {
                                                tracer.record(
                                                    p,
                                                    EventKind::RecvValue {
                                                        src: owner,
                                                        slot,
                                                        i,
                                                    },
                                                );
                                            }
                                            stats.msgs_received += 1;
                                            v
                                        }
                                        Err(f) => {
                                            return Err(map_recv_fail(f, p, &rp.array, i, slot))
                                        }
                                    }
                                }
                            }
                        }
                    };
                    vals[slot] = v;
                }
                stats.data_guards += 1;
                let guard_ok = match rguard {
                    RGuard::Always => true,
                    RGuard::Cmp { slot, op, rhs } => {
                        op.holds(vals.get(*slot).copied().unwrap_or(0.0), *rhs)
                    }
                };
                if guard_ok {
                    let v = kernel.eval(&[i], vals, stack);
                    out.push(WriteOp::El(write_off(er.lhs.offset(t), p)?, v));
                }
                i += er.run.step;
            }
        }
    }
    // SIMD census: every executed run is either vectorized or fallback,
    // and vectorized elements split into full lanes plus a scalar tail.
    if vectorized {
        let lanes = opts.simd.census_lanes() as u64;
        stats.simd_runs += 1;
        stats.simd_lane_elems += n as u64 / lanes * lanes;
        stats.simd_tail_elems += n as u64 % lanes;
        stats.simd_lanes = stats.simd_lanes.max(lanes);
    } else {
        stats.simd_fallback_runs += 1;
    }
    if trace_on {
        tracer.record(
            p,
            if er.boundary {
                EventKind::BoundaryRun {
                    run: k,
                    elems: n as u64,
                    recvs: er.remote_elems,
                }
            } else {
                EventKind::InteriorRun {
                    run: k,
                    elems: n as u64,
                }
            },
        );
    }
    Ok(())
}

/// The owner-local slice a unit-stride fused run reads: `src[base..base+n]`.
/// `None` exactly when any per-element `read_local` of the scalar path
/// would have failed (the range check subsumes every element check).
fn fused_seg<'a>(src: &'a [f64], pat: &AccessPattern, n: usize) -> Option<&'a [f64]> {
    let base = usize::try_from(pat.offset(0)).ok()?;
    src.get(base..base + n)
}

fn read_oob(p: i64, array: &str) -> MachineError {
    MachineError::PlanMismatch(format!(
        "node {p}: compiled fused run reads outside `{array}` part"
    ))
}

/// Why a remote value could not be produced.
pub(crate) enum RecvFail {
    /// The wire message never arrived within the timeout (recovery
    /// disabled) — element mode.
    Timeout,
    /// The planned packet never arrived within the timeout (recovery
    /// disabled) — vectorized mode, identified by the wire protocol's
    /// own coordinates.
    PacketTimeout { peer: i64, run: usize },
    /// The NACK/retransmit budget was exhausted.
    Exhausted { peer: i64, retries: u32 },
    /// The wire carried something the mode/plan does not account for.
    BadWire(&'static str),
}

/// One wave job's private receive buffers. Lanes are strictly per job:
/// two jobs may await the same `(slot, i)` key from the same owner, so
/// a shared map would overwrite one job's value and starve the other.
pub(crate) struct JobLane {
    /// source processor id → ordinal in this job's recv pair list
    /// (`usize::MAX` when the source owes this job nothing).
    pub src_ord: Vec<usize>,
    /// element-mode arrivals keyed `(slot, i)`.
    pub pending: BTreeMap<(usize, i64), f64>,
    /// vectorized-mode packet staging, `[source ordinal][run]`.
    pub staging: Vec<Vec<Option<Vec<f64>>>>,
}

/// Wave-mode receive router. A wave is ONE transport run: every job's
/// frames share the per-source sequence space back-to-back, and frames
/// may surface out of order (reorder faults), so arrival counting is
/// unsound. Senders assign dense per-flow seqnos in job-ordinal send
/// order, which makes plan-derived cumulative frame counts an exact
/// demultiplexer: the frame with sequence number `s` from source `src`
/// belongs to the unique job `j` with `cuts[src][j] <= s <
/// cuts[src][j+1]`, regardless of delivery order.
pub(crate) struct WaveRecv {
    /// ordinal of the job currently executing on this node.
    pub cur: usize,
    /// per-job receive buffers.
    pub lanes: Vec<JobLane>,
    /// `cuts[src][j]` = total data frames `src` sends this node across
    /// jobs `0..j` (length `jobs + 1`, `cuts[src][0] == 0`).
    pub cuts: Vec<Vec<u64>>,
}

impl WaveRecv {
    /// The job owning sequence number `seq` of flow `src → self`.
    fn lane_of(&self, src: i64, seq: u64) -> Result<usize, &'static str> {
        let col = self
            .cuts
            .get(usize::try_from(src).map_err(|_| "frame from unknown source")?)
            .ok_or("frame from unknown source")?;
        let j = col.partition_point(|&c| c <= seq);
        if j == 0 || j > self.lanes.len() {
            return Err("data frame outside the wave's planned windows");
        }
        Ok(j - 1)
    }
}

/// Receive-side context threaded through the update phase: either the
/// classic single-clause buffers or a wave router with per-job lanes.
pub(crate) enum RecvCtx<'a> {
    /// One clause, one transport run — the pre-wave layout.
    Single {
        /// element-mode arrivals keyed `(slot, i)`.
        pending: &'a mut BTreeMap<(usize, i64), f64>,
        /// vectorized-mode packet staging, `[source ordinal][run]`.
        staging: &'a mut Vec<Vec<Option<Vec<f64>>>>,
    },
    /// Many jobs sharing one transport run.
    Wave(&'a mut WaveRecv),
}

impl RecvCtx<'_> {
    /// The pending map the currently executing job reads from.
    fn cur_pending(&mut self) -> &mut BTreeMap<(usize, i64), f64> {
        match self {
            RecvCtx::Single { pending, .. } => pending,
            RecvCtx::Wave(w) => &mut w.lanes[w.cur].pending,
        }
    }

    /// The staging rows the currently executing job reads from.
    fn cur_staging(&mut self) -> &mut Vec<Vec<Option<Vec<f64>>>> {
        match self {
            RecvCtx::Single { staging, .. } => staging,
            RecvCtx::Wave(w) => &mut w.lanes[w.cur].staging,
        }
    }

    /// Stage one element-mode arrival into its owning job's lane.
    fn stage_elem(&mut self, src: i64, seq: u64, m: Msg) -> Result<(), &'static str> {
        match self {
            RecvCtx::Single { pending, .. } => {
                pending.insert((m.slot, m.i), m.value);
                Ok(())
            }
            RecvCtx::Wave(w) => {
                let lane = w.lane_of(src, seq)?;
                w.lanes[lane].pending.insert((m.slot, m.i), m.value);
                Ok(())
            }
        }
    }

    /// Stage one packet into its owning job's staging row. `src_ord` is
    /// the *current* job's source table, used only in single mode; a
    /// wave routes with the owning lane's own table (jobs generally
    /// disagree about source ordinals).
    fn stage_pack(
        &mut self,
        src: i64,
        seq: u64,
        run_ord: usize,
        values: Vec<f64>,
        src_ord: &[usize],
    ) -> Result<(), &'static str> {
        let (ord, row_staging) = match self {
            RecvCtx::Single { staging, .. } => {
                let ord = src_ord
                    .get(usize::try_from(src).map_err(|_| "packet from unplanned source")?)
                    .copied()
                    .filter(|&o| o != usize::MAX)
                    .ok_or("packet from unplanned source")?;
                (ord, staging.as_mut_slice())
            }
            RecvCtx::Wave(w) => {
                let lane = w.lane_of(src, seq)?;
                let l = &mut w.lanes[lane];
                let ord = l
                    .src_ord
                    .get(usize::try_from(src).map_err(|_| "packet from unplanned source")?)
                    .copied()
                    .filter(|&o| o != usize::MAX)
                    .ok_or("packet from unplanned source")?;
                (ord, &mut l.staging[..])
            }
        };
        let row = row_staging
            .get_mut(ord)
            .ok_or("packet from unplanned source")?;
        let cell = row.get_mut(run_ord).ok_or("packet run tag out of range")?;
        if cell.is_none() {
            // first arrival wins; retransmitted duplicates carry
            // identical payloads
            *cell = Some(values);
        }
        Ok(())
    }
}

/// Per-node receive-side state, by mode.
enum RecvState {
    /// Element mode: out-of-order arrivals buffered in an ordered map
    /// keyed `(slot, i)`.
    Element {
        pending: BTreeMap<(usize, i64), f64>,
    },
    /// Vectorized mode: packets staged whole by `(source, run)`; each
    /// remote element resolves to a plan-computed `(source, run,
    /// offset)` address — no per-element tag matching.
    Packed {
        /// source processor id → ordinal in the recv pair list.
        src_ord: Vec<usize>,
        /// source ordinal → processor id (the NACK target).
        peers: Vec<i64>,
        /// `staging[source ordinal][run]` = the packet's values.
        staging: Vec<Vec<Option<Vec<f64>>>>,
        /// `(slot, i)` → `(source ordinal, run, offset)`, expanded from
        /// the plan's receive runs before the update loop starts.
        origin: BTreeMap<(usize, i64), (usize, usize, usize)>,
    },
}

impl RecvState {
    fn new(node: &NodePlan, mode: CommMode, pmax: usize) -> RecvState {
        match mode {
            CommMode::Element => RecvState::Element {
                pending: BTreeMap::new(),
            },
            CommMode::Vectorized => {
                let mut src_ord = vec![usize::MAX; pmax];
                let mut peers = Vec::with_capacity(node.comm.recvs.len());
                let mut origin = BTreeMap::new();
                let mut staging = Vec::with_capacity(node.comm.recvs.len());
                for (ord, pc) in node.comm.recvs.iter().enumerate() {
                    src_ord[pc.peer as usize] = ord;
                    peers.push(pc.peer);
                    staging.push(vec![None; pc.runs.len()]);
                    for (run_ord, run) in pc.runs.iter().enumerate() {
                        let mut off = 0usize;
                        run.for_each(|i| {
                            origin.insert((run.slot, i), (ord, run_ord, off));
                            off += 1;
                        });
                    }
                }
                RecvState::Packed {
                    src_ord,
                    peers,
                    staging,
                    origin,
                }
            }
        }
    }

    /// Produce the remote operand for `(slot, i)` owed by `owner`,
    /// receiving (and recovering) through the transport as needed.
    #[allow(clippy::too_many_arguments)]
    fn remote_value(
        &mut self,
        ep: &mut Endpoint<Wire>,
        slot: usize,
        i: i64,
        owner: i64,
        opts: &DistOptions,
        stats: &mut NodeStats,
    ) -> Result<f64, RecvFail> {
        match self {
            RecvState::Element { pending } => {
                let mut staging = Vec::new();
                let mut rcv = RecvCtx::Single {
                    pending,
                    staging: &mut staging,
                };
                recv_element(ep, &mut rcv, slot, i, owner, opts, stats)
            }
            RecvState::Packed {
                src_ord,
                peers,
                staging,
                origin,
            } => {
                let mut pending = BTreeMap::new();
                let mut rcv = RecvCtx::Single {
                    pending: &mut pending,
                    staging,
                };
                recv_packed(ep, &mut rcv, src_ord, peers, origin, slot, i, opts, stats)
            }
        }
    }
}

/// Element-mode blocking receive: stage tagged arrivals in `pending`
/// until `(slot, i)` from `owner` is available. Shared by the per-run
/// [`RecvState`] and the persistent executor (which keeps `pending`
/// alive across runs, cleared, not reallocated).
#[allow(clippy::too_many_arguments)]
pub(crate) fn recv_element(
    ep: &mut Endpoint<Wire>,
    rcv: &mut RecvCtx<'_>,
    slot: usize,
    i: i64,
    owner: i64,
    opts: &DistOptions,
    stats: &mut NodeStats,
) -> Result<f64, RecvFail> {
    await_until(
        ep,
        owner,
        opts.recv_timeout,
        opts.retry,
        stats,
        rcv,
        |rcv| rcv.cur_pending().remove(&(slot, i)).map(Ok),
        |rcv, src, seq, wire| match wire {
            Wire::Elem(m) => rcv.stage_elem(src, seq, m),
            Wire::Pack { .. } => Err("vector packet in element mode"),
        },
    )
    .map_err(|e| match e {
        AwaitFail::Timeout => RecvFail::Timeout,
        AwaitFail::Exhausted { retries } => RecvFail::Exhausted {
            peer: owner,
            retries,
        },
        AwaitFail::BadWire(w) => RecvFail::BadWire(w),
    })
}

/// Vectorized-mode blocking receive: stage whole packets by
/// `(source, run)` and resolve `(slot, i)` through the plan-computed
/// `origin` addressing. Shared by the per-run [`RecvState`] (which
/// expands `origin` on every execution) and the persistent executor
/// (which reads it from the compiled schedule and reuses `staging`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn recv_packed(
    ep: &mut Endpoint<Wire>,
    rcv: &mut RecvCtx<'_>,
    src_ord: &[usize],
    peers: &[i64],
    origin: &BTreeMap<(usize, i64), (usize, usize, usize)>,
    slot: usize,
    i: i64,
    opts: &DistOptions,
    stats: &mut NodeStats,
) -> Result<f64, RecvFail> {
    let &(so, ro, off) = origin
        .get(&(slot, i))
        .ok_or(RecvFail::BadWire("no planned packet covers this element"))?;
    let peer = peers
        .get(so)
        .copied()
        .ok_or(RecvFail::BadWire("source ordinal out of range"))?;
    await_until(
        ep,
        peer,
        opts.recv_timeout,
        opts.retry,
        stats,
        rcv,
        |rcv| {
            rcv.cur_staging()
                .get(so)
                .and_then(|row| row.get(ro))
                .and_then(Option::as_ref)
                .map(|vals| {
                    vals.get(off)
                        .copied()
                        .ok_or("packet shorter than its planned run")
                })
        },
        |rcv, src, seq, wire| match wire {
            Wire::Pack { run_ord, values } => rcv.stage_pack(src, seq, run_ord, values, src_ord),
            Wire::Elem(_) => Err("element message in vectorized mode"),
        },
    )
    .map_err(|e| match e {
        AwaitFail::Timeout => RecvFail::PacketTimeout { peer, run: ro },
        AwaitFail::Exhausted { retries } => RecvFail::Exhausted { peer, retries },
        AwaitFail::BadWire(w) => RecvFail::BadWire(w),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_spmd::DecompMap;

    fn copy_setup(
        n: i64,
        f: Fn1,
        g: Fn1,
        dec_a: Decomp1,
        dec_b: Decomp1,
        imin: i64,
        imax: i64,
    ) -> (Clause, Env, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::add(Expr::Ref(ArrayRef::d1("B", g)), Expr::Lit(0.5)),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(dec_a.extent()));
        env.insert(
            "B",
            Array::from_fn(dec_b.extent(), |i| (i.scalar() * 3) as f64),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), dec_a);
        dm.insert("B".into(), dec_b);
        let _ = n;
        (clause, env, dm)
    }

    fn scatter_arrays(env0: &Env, dm: &DecompMap) -> BTreeMap<String, DistArray> {
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env0.get(name).unwrap(), dm[name].clone()),
            );
        }
        arrays
    }

    fn run_and_compare(clause: &Clause, env0: &Env, dm: &DecompMap, naive: bool) -> ExecReport {
        let mut expect = env0.clone();
        expect.exec_clause(clause);

        let plan = if naive {
            SpmdPlan::build_naive(clause, dm).unwrap()
        } else {
            SpmdPlan::build(clause, dm).unwrap()
        };
        let mut arrays = scatter_arrays(env0, dm);
        let report = run_distributed(&plan, clause, &mut arrays, DistOptions::default()).unwrap();
        let got = arrays["A"].gather();
        assert_eq!(
            got.max_abs_diff(expect.get("A").unwrap()),
            0.0,
            "distributed result differs (naive={naive})"
        );
        report
    }

    #[test]
    fn block_to_scatter_copy() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        // comm matches the analytic count: 48 remote of 64
        assert_eq!(report.total().msgs_sent, 48);
        assert_eq!(report.total().msgs_received, 48);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn stencil_block_block() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::shift(-1),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            1,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 3); // one halo value per boundary
    }

    #[test]
    fn strided_access_under_scatter() {
        let n = 128;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::affine(2, 1),
            Fn1::affine(3, 0),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(4, 4, Bounds::range(0, 3 * n)),
            0,
            n / 2 - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
        run_and_compare(&clause, &env, &dm, true);
    }

    #[test]
    fn rotate_view_piecewise() {
        let n = 20;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::rotate(6, 20),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        run_and_compare(&clause, &env, &dm, false);
    }

    #[test]
    fn replicated_read_no_messages() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::replicated(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let report = run_and_compare(&clause, &env, &dm, false);
        assert_eq!(report.total().msgs_sent, 0);
    }

    #[test]
    fn guarded_clause_still_consumes_messages() {
        // guard reads C (scatter) while A is block: values must flow even
        // for iterations whose guard fails, or the pairing deadlocks.
        let n = 32;
        let clause = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("C", Fn1::identity()),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );
        env.insert(
            "C",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }),
        );
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("B".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("C".into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));

        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays: BTreeMap<String, DistArray> = BTreeMap::new();
        for name in ["A", "B", "C"] {
            arrays.insert(
                name.into(),
                DistArray::scatter_from(env.get(name).unwrap(), dm[name].clone()),
            );
        }
        run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn vectorized_aggregates_packets() {
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut totals = Vec::new();
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays = scatter_arrays(&env, &dm);
            let opts = DistOptions {
                mode,
                ..DistOptions::default()
            };
            let report = run_distributed(&plan, &clause, &mut arrays, opts).unwrap();
            totals.push(report.total());
        }
        let (elem, vect) = (totals[0], totals[1]);
        // element totals are identical across modes
        assert_eq!(elem.msgs_sent, vect.msgs_sent);
        assert_eq!(elem.msgs_received, vect.msgs_received);
        // element mode: one wire message per element
        assert_eq!(elem.packets_sent, elem.msgs_sent);
        assert_eq!(elem.max_packet_elems, 1);
        // vectorized mode: strictly fewer, larger messages
        assert!(vect.packets_sent < vect.msgs_sent);
        assert!(vect.max_packet_elems > 1);
        assert!(vect.bytes_sent < elem.bytes_sent);
    }

    #[test]
    fn element_mode_still_exact() {
        let n = 128;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::affine(2, 1),
            Fn1::affine(3, 0),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::block_scatter(4, 4, Bounds::range(0, 3 * n)),
            0,
            n / 2 - 1,
        );
        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let opts = DistOptions {
            mode: CommMode::Element,
            ..DistOptions::default()
        };
        run_distributed(&plan, &clause, &mut arrays, opts).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn dropped_message_recovered_by_retransmit() {
        // the legacy fatal fault is now transient: the receiver NACKs,
        // the sender retransmits, and the run completes bit-for-bit
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let opts = DistOptions {
            recv_timeout: Duration::from_secs(2),
            faults: Some(FaultPlan::drop_nth(1, 0)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let report = run_distributed(&plan, &clause, &mut arrays, opts).unwrap();
        assert_eq!(
            arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
            0.0
        );
        let t = report.total();
        assert!(t.retransmits > 0, "recovery must retransmit: {t:?}");
        assert!(t.nacks_sent > 0);
        assert!(t.acks_sent > 0);
    }

    #[test]
    fn dropped_message_detected_without_retries() {
        // with recovery disabled the legacy typed error comes back
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(200),
            faults: Some(FaultPlan::drop_nth(1, 0)),
            mode: CommMode::Element,
            retry: RetryPolicy::none(),
            ..DistOptions::default()
        };
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        assert!(matches!(err, MachineError::MissingMessage { .. }), "{err}");
    }

    #[test]
    fn dropped_packet_reports_wire_coordinates() {
        // vectorized mode + no retries: the error names (peer, slot, run)
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(200),
            faults: Some(FaultPlan::drop_nth(1, 0)),
            mode: CommMode::Vectorized,
            retry: RetryPolicy::none(),
            ..DistOptions::default()
        };
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        match err {
            MachineError::MissingPacket { peer, .. } => assert_eq!(peer, 1),
            e => panic!("expected MissingPacket, got {e}"),
        }
    }

    #[test]
    fn crashed_node_reported_not_aborted() {
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let before = arrays["A"].gather();
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(500),
            faults: Some(FaultPlan::seeded(7).with_crash(2, 0)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let t0 = Instant::now();
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        assert_eq!(err, MachineError::NodePanicked { node: 2 }, "{err}");
        // bounded detection, no hang
        assert!(t0.elapsed() < Duration::from_secs(10));
        // transactional: the failed run left the array untouched
        assert_eq!(arrays["A"].gather().max_abs_diff(&before), 0.0);
    }

    #[test]
    fn persistent_drop_exhausts_budget() {
        // drop *everything* node 1 sends (including retransmits): the
        // waiting peers must give up with a typed error, quickly
        let n = 32;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        let opts = DistOptions {
            recv_timeout: Duration::from_secs(2),
            faults: Some(FaultPlan::seeded(3).with_drop(1.0).with_from_only(1)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let t0 = Instant::now();
        let err = run_distributed(&plan, &clause, &mut arrays, opts).unwrap_err();
        match err {
            MachineError::Unrecoverable { peer, retries, .. } => {
                assert_eq!(peer, 1);
                assert!(retries > 0);
            }
            e => panic!("expected Unrecoverable, got {e}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(15));
    }

    #[test]
    fn noisy_link_recovered_in_both_modes() {
        // seeded drop+dup+reorder+corrupt+delay soup, still bit-exact
        let n = 64;
        let (clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::affine(3, 1),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, 3 * n)),
            0,
            n - 1,
        );
        let mut expect = env.clone();
        expect.exec_clause(&clause);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays = scatter_arrays(&env, &dm);
            let opts = DistOptions {
                recv_timeout: Duration::from_secs(5),
                faults: Some(
                    FaultPlan::seeded(11)
                        .with_drop(0.08)
                        .with_duplicate(0.08)
                        .with_reorder(0.08)
                        .with_corrupt(0.05)
                        .with_delay(0.08),
                ),
                mode,
                retry: RetryPolicy::fast(),
                ..DistOptions::default()
            };
            run_distributed(&plan, &clause, &mut arrays, opts)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert_eq!(
                arrays["A"].gather().max_abs_diff(expect.get("A").unwrap()),
                0.0,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn sequential_clause_rejected() {
        let n = 16;
        let (mut clause, env, dm) = copy_setup(
            n,
            Fn1::identity(),
            Fn1::identity(),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
            0,
            n - 1,
        );
        clause.ordering = Ordering::Seq;
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut arrays = scatter_arrays(&env, &dm);
        assert_eq!(
            run_distributed(&plan, &clause, &mut arrays, DistOptions::default()).unwrap_err(),
            MachineError::SequentialClause
        );
    }
}
