//! # vcal-machine — simulated SPMD machines
//!
//! Executable substitutes for the parallel hardware the paper targets
//! (see DESIGN.md §5 for the substitution argument):
//!
//! * [`shared`] — the Section 2.9 shared-memory machine: one thread per
//!   virtual processor, pre-state snapshot reads, a barrier, and two
//!   write strategies (direct disjoint writes vs gather-then-commit);
//! * [`distributed`] — the Section 2.10 message-passing machine: per-node
//!   private memories, non-blocking sends / blocking receives over
//!   channels, tagged-message pairing, fault injection, full statistics;
//! * [`sequential`] — the single-node reference executor;
//! * [`darray`] — distributed array images (`A'` of Section 2.6) with
//!   scatter/gather;
//! * [`stats`] — per-node counters (iterations, ownership tests,
//!   messages) that make the paper's complexity claims measurable.
//!
//! All machines are verified to produce bit-identical results to the
//! [`vcal_core::Env::exec_clause`] reference semantics.
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub(crate) mod codec;
pub mod darray;
pub mod darray_nd;
pub mod distributed;
pub mod distributed_nd;
pub mod doacross;
pub mod error;
pub mod executor;
pub mod halo;
pub(crate) mod net;
pub mod obs;
pub mod perfmodel;
pub(crate) mod proc;
pub mod redistribute;
pub mod reduce;
pub mod sequential;
pub mod serve;
pub mod session;
pub mod shared;
pub mod shared_nd;
pub mod stats;
pub mod topology;
pub mod transport;

pub use darray::DistArray;
pub use darray_nd::DistArrayNd;
pub use distributed::{
    run_distributed, run_distributed_traced, CommMode, DistOptions, FaultInjection,
};
pub use distributed_nd::{
    run_distributed_nd, run_distributed_nd_mode, run_distributed_nd_opts, run_distributed_nd_traced,
};
pub use doacross::{carried_distances, run_doacross, run_doacross_with};
pub use error::MachineError;
pub use executor::{prepare_run, DistExecutor, PreparedPlan};
pub use halo::{exchange_ghosts, exchange_ghosts_traced, run_halo_sweep, HaloArray};
pub use net::ChaosPlan;
pub use obs::{
    replay_check, replay_check_dag, trace_plan, CollectingTracer, Event, EventKind, NullTracer,
    Phase, PhaseTiming, ReplayError, ReplaySummary, TraceLog, Tracer, HOST, NULL_TRACER,
};
pub use perfmodel::{CalibratedModel, CalibrationSample, PerfModel, PlanPrice, SimTime};
pub use proc::{worker_entry, worker_entry_with};
pub use redistribute::{run_redistribution, run_redistribution_opts, run_redistribution_traced};
pub use reduce::{run_reduce_distributed, run_reduce_shared};
pub use sequential::run_sequential;
pub use serve::{ServeClient, ServeConfig, ServeHandle, ServeRequest, ServeResponse};
pub use session::{DistSession, ProgramReport, ScheduleMode, TuneOptions, TuneReport};
pub use shared::{run_shared, WriteStrategy};
pub use shared_nd::run_shared_nd;
pub use stats::{ExecReport, NodeStats, ServiceStats};
pub use topology::{price_traffic, Topology, TrafficCost};
pub use transport::{CrashFault, FaultPlan, ProtoTimeouts, RetryPolicy, TransportKind};
pub use vcal_spmd::{
    build_dag, CacheBudget, ProgramDag, ProgramStep, SimdCensus, SimdMode, SimdPolicy,
};
