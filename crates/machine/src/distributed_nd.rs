//! The distributed-memory machine for multi-dimensional clauses on
//! processor grids — the Section 2.10 template with d-dimensional
//! Modify/Reside sets (Cartesian products of per-axis Table I schedules,
//! `vcal_spmd::optimize_nd`).
//!
//! Like the 1-D machine, it supports two [`CommMode`]s: **Element**
//! ships one `(read-slot, Ix)`-tagged message per remote value;
//! **Vectorized** (default) derives the per-ordered-pair send sets up
//! front — here by enumerating each ownership set once and bucketing by
//! the write target's owner, since the grid schedules have no 1-D
//! lattice algebra — and ships one vector message per `(source,
//! destination, slot)` with values in a deterministic order both sides
//! compute from the same shared plan.

use crate::darray_nd::DistArrayNd;
use crate::distributed::{CommMode, ELEM_MSG_BYTES, PACK_HEADER_BYTES};
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;
use vcal_core::map::IndexMap;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ix, Ordering};
use vcal_decomp::DecompNd;
use vcal_spmd::optimize_nd;

#[derive(Debug, Clone, Copy)]
struct Msg {
    slot: usize,
    i: Ix,
    value: f64,
}

/// What travels on an nd channel.
enum Wire {
    Elem(Msg),
    /// All values of one planned run, tagged by source and the run's
    /// ordinal in the `(src, dst)` pair's run list.
    Pack {
        src: i64,
        run_ord: usize,
        values: Vec<f64>,
    },
}

/// One planned vector message: the multi-indices whose values it
/// carries, in packing order.
struct NdRun {
    slot: usize,
    elems: Vec<Ix>,
}

/// `send_plan[src][dst]` = that pair's runs in wire order. Derived once
/// on the coordinating thread and shared read-only by every node, so
/// sender packing order and receiver expectations agree by construction.
type SendPlan = Vec<Vec<Vec<NdRun>>>;

/// One deduplicated read access of the clause.
struct ReadSlot {
    array: String,
    map: IndexMap,
}

enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar(usize),
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

fn resolve(e: &Expr, slots: &[ReadSlot]) -> RExpr {
    match e {
        Expr::Ref(r) => RExpr::Slot(
            slots
                .iter()
                .position(|s| s.array == r.array && s.map == r.map)
                .expect("ref must be a slot"),
        ),
        Expr::Lit(v) => RExpr::Lit(*v),
        Expr::LoopVar { dim } => RExpr::LoopVar(*dim),
        Expr::Neg(inner) => RExpr::Neg(Box::new(resolve(inner, slots))),
        Expr::Bin(op, a, b) => RExpr::Bin(
            *op,
            Box::new(resolve(a, slots)),
            Box::new(resolve(b, slots)),
        ),
    }
}

fn eval_r(e: &RExpr, i: &Ix, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar(d) => i[*d] as f64,
        RExpr::Neg(inner) => -eval_r(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_r(a, i, vals), eval_r(b, i, vals)),
    }
}

enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

/// Iterate the ownership set `{ i ∈ loop_box | proc(map(i)) = p }`, using
/// the factorized Nd schedule when available and brute-force filtering
/// otherwise.
fn for_each_owned(
    map: &IndexMap,
    dec: &DecompNd,
    loop_box: &vcal_core::Bounds,
    p: i64,
    mut visit: impl FnMut(&Ix),
) {
    match optimize_nd(map, dec, loop_box, p) {
        Some(s) => s.for_each(&mut visit),
        None => {
            for i in loop_box.iter() {
                if dec.proc_of(&map.eval(&i)) == p {
                    visit(&i);
                }
            }
        }
    }
}

/// Execute a `//` clause of any dimensionality on the distributed grid
/// machine with the default (vectorized) communication mode. All
/// referenced arrays must be in `arrays`, decomposed over grids with
/// the same total processor count.
pub fn run_distributed_nd(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    recv_timeout: Duration,
) -> Result<ExecReport, MachineError> {
    run_distributed_nd_mode(clause, arrays, recv_timeout, CommMode::default())
}

/// Like [`run_distributed_nd`] but with an explicit [`CommMode`].
pub fn run_distributed_nd_mode(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    recv_timeout: Duration,
    mode: CommMode,
) -> Result<ExecReport, MachineError> {
    if clause.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    // collect read slots (deduplicated)
    let mut slots: Vec<ReadSlot> = Vec::new();
    for r in clause.read_refs() {
        if !slots.iter().any(|s| s.array == r.array && s.map == r.map) {
            slots.push(ReadSlot {
                array: r.array.clone(),
                map: r.map.clone(),
            });
        }
    }
    let lhs_name = clause.lhs.array.clone();
    let mut referenced: Vec<String> = vec![lhs_name.clone()];
    for s in &slots {
        if !referenced.contains(&s.array) {
            referenced.push(s.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, DecompNd> = BTreeMap::new();
    let mut pmax = None;
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        match pmax {
            None => pmax = Some(da.decomp().pmax()),
            Some(p) if p == da.decomp().pmax() => {}
            _ => {
                return Err(MachineError::PlanMismatch(
                    "all arrays must use the same total processor count".into(),
                ))
            }
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let pmax = pmax.unwrap();
    let dec_lhs = decomps[&lhs_name].clone();

    let rexpr = resolve(&clause.rhs, &slots);
    let rguard = match &clause.guard {
        Guard::Always => RGuard::Always,
        Guard::Cmp { lhs, op, rhs } => RGuard::Cmp {
            slot: slots
                .iter()
                .position(|s| s.array == lhs.array && s.map == lhs.map)
                .expect("guard ref is a slot"),
            op: *op,
            rhs: *rhs,
        },
    };

    // plan-time communication schedule (vectorized mode): enumerate each
    // ownership set once, bucket by the write target's owner
    let loop_box = &clause.iter.bounds;
    let send_plan: SendPlan = if mode == CommMode::Vectorized {
        let mut sp: SendPlan = (0..pmax)
            .map(|_| (0..pmax).map(|_| Vec::new()).collect())
            .collect();
        for p in 0..pmax {
            for (slot, rs) in slots.iter().enumerate() {
                let dec_r = &decomps[&rs.array];
                let mut buckets: Vec<Vec<Ix>> = vec![Vec::new(); pmax as usize];
                for_each_owned(&rs.map, dec_r, loop_box, p, |i| {
                    let owner = dec_lhs.proc_of(&clause.lhs.map.eval(i));
                    if owner != p {
                        buckets[owner as usize].push(*i);
                    }
                });
                for (q, elems) in buckets.into_iter().enumerate() {
                    if !elems.is_empty() {
                        sp[p as usize][q].push(NdRun { slot, elems });
                    }
                }
            }
        }
        sp
    } else {
        Vec::new()
    };

    // disassemble arrays
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for name in &referenced {
        let (_, parts) = arrays.remove(name).unwrap().into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    let mut txs: Vec<Sender<Wire>> = Vec::with_capacity(pmax as usize);
    let mut rxs: Vec<Receiver<Wire>> = Vec::with_capacity(pmax as usize);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    type NodeOut = (
        i64,
        BTreeMap<String, Vec<f64>>,
        NodeStats,
        Result<(), MachineError>,
    );
    let mut results: Vec<NodeOut> = Vec::with_capacity(pmax as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, locals) in per_node.into_iter().enumerate() {
            let p = p as i64;
            let rx = rxs.remove(0);
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let slots = &slots;
            let rexpr = &rexpr;
            let rguard = &rguard;
            let lhs_name = &lhs_name;
            let send_plan = &send_plan;
            handles.push(scope.spawn(move || {
                run_node_nd(
                    p,
                    locals,
                    rx,
                    txs,
                    clause,
                    slots,
                    rexpr,
                    rguard,
                    decomps,
                    dec_lhs,
                    lhs_name,
                    recv_timeout,
                    mode,
                    send_plan,
                )
            }));
        }
        drop(txs);
        for h in handles {
            results.push(h.join().expect("nd node thread panicked"));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    let mut report = ExecReport::default();
    let mut first_err = None;
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    for (_, mut locals, stats, res) in results {
        for name in &referenced {
            parts_by_name
                .entry(name.clone())
                .or_default()
                .push(locals.remove(name).unwrap());
        }
        report.nodes.push(stats);
        if let (Err(e), None) = (res, &first_err) {
            first_err = Some(e);
        }
    }
    for (name, parts) in parts_by_name {
        let d = decomps[&name].clone();
        arrays.insert(name, DistArrayNd::from_parts(d, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Receive-side state of one nd node, by mode.
enum RecvStateNd {
    /// Element mode: out-of-order arrivals in an ordered pending buffer.
    Element { pending: BTreeMap<(usize, Ix), f64> },
    /// Vectorized mode: packets staged whole by `(source, run)`; each
    /// remote element resolves through the plan-expanded `origin` map.
    Packed {
        staging: Vec<Vec<Option<Vec<f64>>>>,
        origin: BTreeMap<(usize, Ix), (usize, usize, usize)>,
    },
}

impl RecvStateNd {
    fn new(mode: CommMode, send_plan: &SendPlan, p: i64, pmax: usize) -> RecvStateNd {
        match mode {
            CommMode::Element => RecvStateNd::Element {
                pending: BTreeMap::new(),
            },
            CommMode::Vectorized => {
                let mut staging = Vec::with_capacity(pmax);
                let mut origin = BTreeMap::new();
                for (src, runs) in send_plan.iter().map(|row| &row[p as usize]).enumerate() {
                    staging.push(vec![None; runs.len()]);
                    for (run_ord, run) in runs.iter().enumerate() {
                        for (off, i) in run.elems.iter().enumerate() {
                            origin.insert((run.slot, *i), (src, run_ord, off));
                        }
                    }
                }
                RecvStateNd::Packed { staging, origin }
            }
        }
    }

    /// Produce the remote operand for `(slot, i)`. `Ok(None)` means a
    /// timeout; a plan inconsistency is an error message.
    fn remote_value(
        &mut self,
        rx: &Receiver<Wire>,
        slot: usize,
        i: &Ix,
        timeout: Duration,
    ) -> Result<Option<f64>, &'static str> {
        match self {
            RecvStateNd::Element { pending } => {
                if let Some(v) = pending.remove(&(slot, *i)) {
                    return Ok(Some(v));
                }
                loop {
                    match rx.recv_timeout(timeout) {
                        Ok(Wire::Elem(m)) => {
                            if m.slot == slot && m.i == *i {
                                return Ok(Some(m.value));
                            }
                            pending.insert((m.slot, m.i), m.value);
                        }
                        Ok(Wire::Pack { .. }) => return Err("vector packet in element mode"),
                        Err(_) => return Ok(None),
                    }
                }
            }
            RecvStateNd::Packed { staging, origin } => {
                let &(src, ro, off) = origin
                    .get(&(slot, *i))
                    .ok_or("no planned packet covers this element")?;
                while staging[src][ro].is_none() {
                    match rx.recv_timeout(timeout) {
                        Ok(Wire::Pack {
                            src: s,
                            run_ord,
                            values,
                        }) => {
                            let row = staging
                                .get_mut(s as usize)
                                .ok_or("packet from unplanned source")?;
                            if run_ord >= row.len() {
                                return Err("packet run tag out of range");
                            }
                            row[run_ord] = Some(values);
                        }
                        Ok(Wire::Elem(_)) => return Err("element message in vectorized mode"),
                        Err(_) => return Ok(None),
                    }
                }
                Ok(Some(
                    *staging[src][ro]
                        .as_ref()
                        .unwrap()
                        .get(off)
                        .ok_or("packet shorter than its planned run")?,
                ))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node_nd(
    p: i64,
    mut locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Wire>,
    txs: Vec<Sender<Wire>>,
    clause: &Clause,
    slots: &[ReadSlot],
    rexpr: &RExpr,
    rguard: &RGuard,
    decomps: &BTreeMap<String, DecompNd>,
    dec_lhs: &DecompNd,
    lhs_name: &String,
    recv_timeout: Duration,
    mode: CommMode,
    send_plan: &SendPlan,
) -> (
    i64,
    BTreeMap<String, Vec<f64>>,
    NodeStats,
    Result<(), MachineError>,
) {
    let mut stats = NodeStats::default();
    let loop_box = &clause.iter.bounds;
    let pmax = txs.len();

    // ---- send phase ------------------------------------------------------
    match mode {
        CommMode::Element => {
            for (slot, rs) in slots.iter().enumerate() {
                let dec_r = &decomps[&rs.array];
                let local_part = &locals[&rs.array];
                let local_bounds = dec_r.local_bounds(p);
                for_each_owned(&rs.map, dec_r, loop_box, p, |i| {
                    let owner = dec_lhs.proc_of(&clause.lhs.map.eval(i));
                    if owner != p {
                        let g = rs.map.eval(i);
                        let off = local_bounds.linear_offset(&dec_r.local_of(&g));
                        stats.msgs_sent += 1;
                        stats.packets_sent += 1;
                        stats.bytes_sent += ELEM_MSG_BYTES;
                        stats.max_packet_elems = stats.max_packet_elems.max(1);
                        let _ = txs[owner as usize].send(Wire::Elem(Msg {
                            slot,
                            i: *i,
                            value: local_part[off],
                        }));
                    }
                });
            }
        }
        CommMode::Vectorized => {
            for (q, runs) in send_plan[p as usize].iter().enumerate() {
                for (run_ord, run) in runs.iter().enumerate() {
                    let rs = &slots[run.slot];
                    let dec_r = &decomps[&rs.array];
                    let local_part = &locals[&rs.array];
                    let local_bounds = dec_r.local_bounds(p);
                    let mut values = Vec::with_capacity(run.elems.len());
                    for i in &run.elems {
                        let g = rs.map.eval(i);
                        values.push(local_part[local_bounds.linear_offset(&dec_r.local_of(&g))]);
                    }
                    let elems = values.len() as u64;
                    stats.msgs_sent += elems;
                    stats.packets_sent += 1;
                    stats.bytes_sent += PACK_HEADER_BYTES + 8 * elems;
                    stats.max_packet_elems = stats.max_packet_elems.max(elems);
                    let _ = txs[q].send(Wire::Pack {
                        src: p,
                        run_ord,
                        values,
                    });
                }
            }
        }
    }
    drop(txs);

    // ---- update phase ----------------------------------------------------
    let mut recv = RecvStateNd::new(mode, send_plan, p, pmax);
    let mut vals = vec![0.0f64; slots.len()];
    let mut writes: Vec<(usize, f64)> = Vec::new();
    let mut err: Option<MachineError> = None;
    let lhs_local_bounds = dec_lhs.local_bounds(p);

    for_each_owned(&clause.lhs.map, dec_lhs, loop_box, p, |i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        for (slot, rs) in slots.iter().enumerate() {
            let dec_r = &decomps[&rs.array];
            let g = rs.map.eval(i);
            if dec_r.proc_of(&g) == p {
                stats.local_reads += 1;
                let off = dec_r.local_bounds(p).linear_offset(&dec_r.local_of(&g));
                vals[slot] = locals[&rs.array][off];
            } else {
                vals[slot] = match recv.remote_value(&rx, slot, i, recv_timeout) {
                    Ok(Some(v)) => {
                        stats.msgs_received += 1;
                        v
                    }
                    Ok(None) => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rs.array.clone(),
                            index: i[0],
                        });
                        return;
                    }
                    Err(why) => {
                        err = Some(MachineError::PlanMismatch(format!(
                            "node {p}, array `{}`: {why}",
                            rs.array
                        )));
                        return;
                    }
                };
            }
        }
        stats.data_guards += 1;
        let ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if ok {
            let target = clause.lhs.map.eval(i);
            let off = lhs_local_bounds.linear_offset(&dec_lhs.local_of(&target));
            writes.push((off, eval_r(rexpr, i, &vals)));
        }
    });

    if err.is_none() {
        let lhs_local = locals.get_mut(lhs_name).unwrap();
        for (off, v) in writes {
            lhs_local[off] = v;
        }
    }
    (p, locals, stats, err.map_or(Ok(()), Err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_decomp::Decomp1;

    fn grid(r: i64, c: i64, n0: i64, n1: i64) -> DecompNd {
        DecompNd::new(vec![
            Decomp1::block(r, Bounds::range(0, n0 - 1)),
            Decomp1::scatter(c, Bounds::range(0, n1 - 1)),
        ])
    }

    fn run_and_check(clause: &Clause, env: &Env, decs: &BTreeMap<String, DecompNd>) {
        let mut reference = env.clone();
        reference.exec_clause(clause);
        let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
        for (name, d) in decs {
            arrays.insert(
                name.clone(),
                DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
            );
        }
        run_distributed_nd(clause, &mut arrays, Duration::from_secs(5)).unwrap();
        let got = arrays[&clause.lhs.array].gather();
        assert_eq!(
            got.max_abs_diff(reference.get(&clause.lhs.array).unwrap()),
            0.0
        );
    }

    #[test]
    fn jacobi2d_distributed() {
        let n = 20i64;
        let u = |di: i64, dj: i64| {
            Expr::Ref(ArrayRef::new(
                "U",
                IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
            ))
        };
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("V", IndexMap::identity(2)),
            rhs: Expr::mul(
                Expr::add(Expr::add(u(-1, 0), u(1, 0)), Expr::add(u(0, -1), u(0, 1))),
                Expr::Lit(0.25),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                ((i[0] * 7 + i[1] * 3) % 11) as f64
            }),
        );
        env.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("U".to_string(), grid(2, 2, n, n));
        decs.insert("V".to_string(), grid(2, 2, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn transpose_across_grids() {
        // B[j,i] := A[i,j] with DIFFERENT grid decompositions for A and B
        let n = 12i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn guarded_2d_clause() {
        let n = 10i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::new("C", IndexMap::identity(2)),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
                Expr::LoopVar { dim: 1 },
            ),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| (i[0] + i[1]) as f64),
        );
        env.insert(
            "C",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                if (i[0] + i[1]) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }),
        );
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::block(4, Bounds::range(0, n - 1)),
                Decomp1::block(1, Bounds::range(0, n - 1)),
            ]),
        );
        decs.insert("C".to_string(), grid(4, 1, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn modes_agree_and_vectorized_batches() {
        // transpose across different grids forces all-to-all traffic
        let n = 16i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut reference = env.clone();
        reference.exec_clause(&clause);
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        let mut totals = Vec::new();
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
            for (name, d) in &decs {
                arrays.insert(
                    name.clone(),
                    DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
                );
            }
            let report =
                run_distributed_nd_mode(&clause, &mut arrays, Duration::from_secs(5), mode)
                    .unwrap();
            assert_eq!(
                arrays["B"]
                    .gather()
                    .max_abs_diff(reference.get("B").unwrap()),
                0.0,
                "{mode:?}"
            );
            totals.push(report.total());
        }
        let (elem, vect) = (totals[0], totals[1]);
        assert_eq!(elem.msgs_sent, vect.msgs_sent);
        assert_eq!(elem.msgs_received, vect.msgs_received);
        assert_eq!(elem.packets_sent, elem.msgs_sent);
        assert!(vect.packets_sent < vect.msgs_sent);
        assert!(vect.max_packet_elems > 1);
    }

    #[test]
    fn mismatched_pmax_rejected() {
        let n = 8i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
        };
        let mut arrays = BTreeMap::new();
        arrays.insert("A".to_string(), DistArrayNd::zeros(grid(2, 2, n, n)));
        arrays.insert("B".to_string(), DistArrayNd::zeros(grid(2, 3, n, n)));
        assert!(matches!(
            run_distributed_nd(&clause, &mut arrays, Duration::from_millis(100)),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
