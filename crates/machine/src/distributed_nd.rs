//! The distributed-memory machine for multi-dimensional clauses on
//! processor grids — the Section 2.10 template with d-dimensional
//! Modify/Reside sets (Cartesian products of per-axis Table I schedules,
//! `vcal_spmd::optimize_nd`) and messages tagged by `(read-slot, Ix)`.

use crate::darray_nd::DistArrayNd;
use crate::error::MachineError;
use crate::stats::{ExecReport, NodeStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;
use vcal_core::map::IndexMap;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ix, Ordering};
use vcal_decomp::DecompNd;
use vcal_spmd::optimize_nd;

#[derive(Debug, Clone, Copy)]
struct Msg {
    slot: usize,
    i: Ix,
    value: f64,
}

/// One deduplicated read access of the clause.
struct ReadSlot {
    array: String,
    map: IndexMap,
}

enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar(usize),
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

fn resolve(e: &Expr, slots: &[ReadSlot]) -> RExpr {
    match e {
        Expr::Ref(r) => RExpr::Slot(
            slots
                .iter()
                .position(|s| s.array == r.array && s.map == r.map)
                .expect("ref must be a slot"),
        ),
        Expr::Lit(v) => RExpr::Lit(*v),
        Expr::LoopVar { dim } => RExpr::LoopVar(*dim),
        Expr::Neg(inner) => RExpr::Neg(Box::new(resolve(inner, slots))),
        Expr::Bin(op, a, b) => {
            RExpr::Bin(*op, Box::new(resolve(a, slots)), Box::new(resolve(b, slots)))
        }
    }
}

fn eval_r(e: &RExpr, i: &Ix, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar(d) => i[*d] as f64,
        RExpr::Neg(inner) => -eval_r(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_r(a, i, vals), eval_r(b, i, vals)),
    }
}

enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

/// Iterate the ownership set `{ i ∈ loop_box | proc(map(i)) = p }`, using
/// the factorized Nd schedule when available and brute-force filtering
/// otherwise.
fn for_each_owned(
    map: &IndexMap,
    dec: &DecompNd,
    loop_box: &vcal_core::Bounds,
    p: i64,
    mut visit: impl FnMut(&Ix),
) {
    match optimize_nd(map, dec, loop_box, p) {
        Some(s) => s.for_each(&mut visit),
        None => {
            for i in loop_box.iter() {
                if dec.proc_of(&map.eval(&i)) == p {
                    visit(&i);
                }
            }
        }
    }
}

/// Execute a `//` clause of any dimensionality on the distributed grid
/// machine. All referenced arrays must be in `arrays`, decomposed over
/// grids with the same total processor count.
pub fn run_distributed_nd(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    recv_timeout: Duration,
) -> Result<ExecReport, MachineError> {
    if clause.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    // collect read slots (deduplicated)
    let mut slots: Vec<ReadSlot> = Vec::new();
    for r in clause.read_refs() {
        if !slots.iter().any(|s| s.array == r.array && s.map == r.map) {
            slots.push(ReadSlot { array: r.array.clone(), map: r.map.clone() });
        }
    }
    let lhs_name = clause.lhs.array.clone();
    let mut referenced: Vec<String> = vec![lhs_name.clone()];
    for s in &slots {
        if !referenced.contains(&s.array) {
            referenced.push(s.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, DecompNd> = BTreeMap::new();
    let mut pmax = None;
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        match pmax {
            None => pmax = Some(da.decomp().pmax()),
            Some(p) if p == da.decomp().pmax() => {}
            _ => {
                return Err(MachineError::PlanMismatch(
                    "all arrays must use the same total processor count".into(),
                ))
            }
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let pmax = pmax.unwrap();
    let dec_lhs = decomps[&lhs_name].clone();

    let rexpr = resolve(&clause.rhs, &slots);
    let rguard = match &clause.guard {
        Guard::Always => RGuard::Always,
        Guard::Cmp { lhs, op, rhs } => RGuard::Cmp {
            slot: slots
                .iter()
                .position(|s| s.array == lhs.array && s.map == lhs.map)
                .expect("guard ref is a slot"),
            op: *op,
            rhs: *rhs,
        },
    };

    // disassemble arrays
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for name in &referenced {
        let (_, parts) = arrays.remove(name).unwrap().into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    let mut txs: Vec<Sender<Msg>> = Vec::with_capacity(pmax as usize);
    let mut rxs: Vec<Receiver<Msg>> = Vec::with_capacity(pmax as usize);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    type NodeOut = (i64, BTreeMap<String, Vec<f64>>, NodeStats, Result<(), MachineError>);
    let mut results: Vec<NodeOut> = Vec::with_capacity(pmax as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, locals) in per_node.into_iter().enumerate() {
            let p = p as i64;
            let rx = rxs.remove(0);
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let slots = &slots;
            let rexpr = &rexpr;
            let rguard = &rguard;
            let lhs_name = &lhs_name;
            handles.push(scope.spawn(move || {
                run_node_nd(
                    p, locals, rx, txs, clause, slots, rexpr, rguard, decomps, dec_lhs,
                    lhs_name, recv_timeout,
                )
            }));
        }
        drop(txs);
        for h in handles {
            results.push(h.join().expect("nd node thread panicked"));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    let mut report = ExecReport::default();
    let mut first_err = None;
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    for (_, mut locals, stats, res) in results {
        for name in &referenced {
            parts_by_name
                .entry(name.clone())
                .or_default()
                .push(locals.remove(name).unwrap());
        }
        report.nodes.push(stats);
        if let (Err(e), None) = (res, &first_err) {
            first_err = Some(e);
        }
    }
    for (name, parts) in parts_by_name {
        let d = decomps[&name].clone();
        arrays.insert(name, DistArrayNd::from_parts(d, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node_nd(
    p: i64,
    mut locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Msg>,
    txs: Vec<Sender<Msg>>,
    clause: &Clause,
    slots: &[ReadSlot],
    rexpr: &RExpr,
    rguard: &RGuard,
    decomps: &BTreeMap<String, DecompNd>,
    dec_lhs: &DecompNd,
    lhs_name: &String,
    recv_timeout: Duration,
) -> (i64, BTreeMap<String, Vec<f64>>, NodeStats, Result<(), MachineError>) {
    let mut stats = NodeStats::default();
    let loop_box = &clause.iter.bounds;

    // ---- send phase ------------------------------------------------------
    for (slot, rs) in slots.iter().enumerate() {
        let dec_r = &decomps[&rs.array];
        let local_part = &locals[&rs.array];
        let local_bounds = dec_r.local_bounds(p);
        for_each_owned(&rs.map, dec_r, loop_box, p, |i| {
            let owner = dec_lhs.proc_of(&clause.lhs.map.eval(i));
            if owner != p {
                let g = rs.map.eval(i);
                let off = local_bounds.linear_offset(&dec_r.local_of(&g));
                stats.msgs_sent += 1;
                let _ = txs[owner as usize].send(Msg { slot, i: *i, value: local_part[off] });
            }
        });
    }
    drop(txs);

    // ---- update phase ----------------------------------------------------
    let mut pending: HashMap<(usize, Ix), f64> = HashMap::new();
    let mut vals = vec![0.0f64; slots.len()];
    let mut writes: Vec<(usize, f64)> = Vec::new();
    let mut err: Option<MachineError> = None;
    let lhs_local_bounds = dec_lhs.local_bounds(p);

    for_each_owned(&clause.lhs.map, dec_lhs, loop_box, p, |i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        for (slot, rs) in slots.iter().enumerate() {
            let dec_r = &decomps[&rs.array];
            let g = rs.map.eval(i);
            if dec_r.proc_of(&g) == p {
                stats.local_reads += 1;
                let off = dec_r.local_bounds(p).linear_offset(&dec_r.local_of(&g));
                vals[slot] = locals[&rs.array][off];
            } else {
                // blocking receive matched on (slot, i)
                let key = (slot, *i);
                vals[slot] = if let Some(v) = pending.remove(&key) {
                    stats.msgs_received += 1;
                    v
                } else {
                    loop {
                        match rx.recv_timeout(recv_timeout) {
                            Ok(m) => {
                                if m.slot == slot && m.i == *i {
                                    stats.msgs_received += 1;
                                    break m.value;
                                }
                                pending.insert((m.slot, m.i), m.value);
                            }
                            Err(_) => {
                                err = Some(MachineError::MissingMessage {
                                    node: p,
                                    array: rs.array.clone(),
                                    index: i[0],
                                });
                                break 0.0;
                            }
                        }
                    }
                };
                if err.is_some() {
                    return;
                }
            }
        }
        stats.data_guards += 1;
        let ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if ok {
            let target = clause.lhs.map.eval(i);
            let off = lhs_local_bounds.linear_offset(&dec_lhs.local_of(&target));
            writes.push((off, eval_r(rexpr, i, &vals)));
        }
    });

    if err.is_none() {
        let lhs_local = locals.get_mut(lhs_name).unwrap();
        for (off, v) in writes {
            lhs_local[off] = v;
        }
    }
    (p, locals, stats, err.map_or(Ok(()), Err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_decomp::Decomp1;

    fn grid(r: i64, c: i64, n0: i64, n1: i64) -> DecompNd {
        DecompNd::new(vec![
            Decomp1::block(r, Bounds::range(0, n0 - 1)),
            Decomp1::scatter(c, Bounds::range(0, n1 - 1)),
        ])
    }

    fn run_and_check(clause: &Clause, env: &Env, decs: &BTreeMap<String, DecompNd>) {
        let mut reference = env.clone();
        reference.exec_clause(clause);
        let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
        for (name, d) in decs {
            arrays.insert(
                name.clone(),
                DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
            );
        }
        run_distributed_nd(clause, &mut arrays, Duration::from_secs(5)).unwrap();
        let got = arrays[&clause.lhs.array].gather();
        assert_eq!(
            got.max_abs_diff(reference.get(&clause.lhs.array).unwrap()),
            0.0
        );
    }

    #[test]
    fn jacobi2d_distributed() {
        let n = 20i64;
        let u = |di: i64, dj: i64| {
            Expr::Ref(ArrayRef::new(
                "U",
                IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
            ))
        };
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("V", IndexMap::identity(2)),
            rhs: Expr::mul(
                Expr::add(Expr::add(u(-1, 0), u(1, 0)), Expr::add(u(0, -1), u(0, 1))),
                Expr::Lit(0.25),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                ((i[0] * 7 + i[1] * 3) % 11) as f64
            }),
        );
        env.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("U".to_string(), grid(2, 2, n, n));
        decs.insert("V".to_string(), grid(2, 2, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn transpose_across_grids() {
        // B[j,i] := A[i,j] with DIFFERENT grid decompositions for A and B
        let n = 12i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn guarded_2d_clause() {
        let n = 10i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::new("C", IndexMap::identity(2)),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
                Expr::LoopVar { dim: 1 },
            ),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| (i[0] + i[1]) as f64),
        );
        env.insert(
            "C",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                if (i[0] + i[1]) % 2 == 0 { 1.0 } else { -1.0 }
            }),
        );
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::block(4, Bounds::range(0, n - 1)),
                Decomp1::block(1, Bounds::range(0, n - 1)),
            ]),
        );
        decs.insert("C".to_string(), grid(4, 1, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn mismatched_pmax_rejected() {
        let n = 8i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
        };
        let mut arrays = BTreeMap::new();
        arrays.insert(
            "A".to_string(),
            DistArrayNd::zeros(grid(2, 2, n, n)),
        );
        arrays.insert(
            "B".to_string(),
            DistArrayNd::zeros(grid(2, 3, n, n)),
        );
        assert!(matches!(
            run_distributed_nd(&clause, &mut arrays, Duration::from_millis(100)),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
