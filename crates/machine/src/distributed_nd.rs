//! The distributed-memory machine for multi-dimensional clauses on
//! processor grids — the Section 2.10 template with d-dimensional
//! Modify/Reside sets (Cartesian products of per-axis Table I schedules,
//! `vcal_spmd::optimize_nd`).
//!
//! Like the 1-D machine, it supports two [`CommMode`]s: **Element**
//! ships one `(read-slot, Ix)`-tagged message per remote value;
//! **Vectorized** (default) derives the per-ordered-pair send sets up
//! front — here by enumerating each ownership set once and bucketing by
//! the write target's owner, since the grid schedules have no 1-D
//! lattice algebra — and ships one vector message per `(source,
//! destination, slot)` with values in a deterministic order both sides
//! compute from the same shared plan.
//!
//! Both modes run over the reliable transport of [`crate::transport`]
//! (sequencing, checksums, duplicate suppression, NACK/retransmit
//! recovery) with the same seeded fault injection, typed errors, and
//! panic-safe supervision as the 1-D machine — configure them through
//! [`run_distributed_nd_opts`].

use crate::darray_nd::DistArrayNd;
use crate::distributed::{CommMode, DistOptions, ELEM_MSG_BYTES, PACK_HEADER_BYTES};
use crate::error::MachineError;
use crate::obs::{EventKind, Phase, Tracer, NULL_TRACER};
use crate::stats::{ExecReport, NodeStats};
use crate::transport::{await_until, AwaitFail, Endpoint, Frame, WirePayload};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::time::Duration;
use vcal_core::map::IndexMap;
use vcal_core::{BinOp, Clause, CmpOp, Expr, Guard, Ix, Ordering};
use vcal_decomp::DecompNd;
use vcal_spmd::{optimize_nd, simd, CompiledKernel, FusedShape};

#[derive(Debug, Clone, Copy)]
struct Msg {
    slot: usize,
    i: Ix,
    value: f64,
}

/// The machine-level payload of an nd wire packet.
#[derive(Debug, Clone)]
enum Wire {
    Elem(Msg),
    /// All values of one planned run, tagged by the run's ordinal in the
    /// `(src, dst)` pair's run list (the source id rides on the packet
    /// envelope).
    Pack {
        run_ord: usize,
        values: Vec<f64>,
    },
}

impl WirePayload for Wire {
    fn digest(&self) -> u64 {
        let mut h = 0u64;
        match self {
            Wire::Elem(m) => {
                h ^= 1;
                h = h.rotate_left(7).wrapping_add(m.slot as u64);
                for d in 0..m.i.dims() {
                    h = h.rotate_left(7).wrapping_add(m.i[d] as u64);
                }
                h = h.rotate_left(7).wrapping_add(m.value.to_bits());
            }
            Wire::Pack { run_ord, values } => {
                h ^= 2;
                h = h.rotate_left(7).wrapping_add(*run_ord as u64);
                for v in values {
                    h = h.rotate_left(7).wrapping_add(v.to_bits());
                }
            }
        }
        h
    }

    fn corrupt(&mut self, bits: u64) {
        match self {
            Wire::Elem(m) => {
                m.value = f64::from_bits(m.value.to_bits() ^ (1 << (bits % 52)));
            }
            Wire::Pack { values, .. } => {
                if !values.is_empty() {
                    let k = (bits as usize) % values.len();
                    values[k] = f64::from_bits(values[k].to_bits() ^ (1 << (bits % 52)));
                }
            }
        }
    }
}

/// One planned vector message: the multi-indices whose values it
/// carries, in packing order.
struct NdRun {
    slot: usize,
    elems: Vec<Ix>,
}

/// `send_plan[src][dst]` = that pair's runs in wire order. Derived once
/// on the coordinating thread and shared read-only by every node, so
/// sender packing order and receiver expectations agree by construction.
type SendPlan = Vec<Vec<Vec<NdRun>>>;

/// What one nd node thread returns: id, its (unmodified) local
/// memories, the local writes it wants committed, statistics, and its
/// error state.
type NodeOutcomeNd = (
    i64,
    BTreeMap<String, Vec<f64>>,
    Vec<(usize, f64)>,
    NodeStats,
    Result<(), MachineError>,
);

/// One deduplicated read access of the clause.
struct ReadSlot {
    array: String,
    map: IndexMap,
}

enum RExpr {
    Slot(usize),
    Lit(f64),
    LoopVar(usize),
    Neg(Box<RExpr>),
    Bin(BinOp, Box<RExpr>, Box<RExpr>),
}

fn resolve(e: &Expr, slots: &[ReadSlot]) -> Result<RExpr, MachineError> {
    match e {
        Expr::Ref(r) => slots
            .iter()
            .position(|s| s.array == r.array && s.map == r.map)
            .map(RExpr::Slot)
            .ok_or_else(|| {
                MachineError::PlanMismatch(format!(
                    "read ref `{}` missing from the collected slot list",
                    r.array
                ))
            }),
        Expr::Lit(v) => Ok(RExpr::Lit(*v)),
        Expr::LoopVar { dim } => Ok(RExpr::LoopVar(*dim)),
        Expr::Neg(inner) => Ok(RExpr::Neg(Box::new(resolve(inner, slots)?))),
        Expr::Bin(op, a, b) => Ok(RExpr::Bin(
            *op,
            Box::new(resolve(a, slots)?),
            Box::new(resolve(b, slots)?),
        )),
    }
}

fn eval_r(e: &RExpr, i: &Ix, vals: &[f64]) -> f64 {
    match e {
        RExpr::Slot(s) => vals[*s],
        RExpr::Lit(v) => *v,
        RExpr::LoopVar(d) => i[*d] as f64,
        RExpr::Neg(inner) => -eval_r(inner, i, vals),
        RExpr::Bin(op, a, b) => op.apply(eval_r(a, i, vals), eval_r(b, i, vals)),
    }
}

enum RGuard {
    Always,
    Cmp { slot: usize, op: CmpOp, rhs: f64 },
}

/// One plan-time-resolved read access of a compiled nd element.
enum NdSlotRef {
    /// Owner-local: linear offset into the slot array's local part.
    Local(usize),
    /// Remote: the owning node the value arrives from.
    Remote(i64),
}

/// One iteration of a node's modify set with every per-element decision
/// — write offset, per-slot owner/offset, interior/boundary class —
/// hoisted to plan time. The node loop does no `proc_of` calls at all.
struct NdElem {
    i: Ix,
    lhs_off: usize,
    reads: Vec<NdSlotRef>,
    /// Whether any operand is remote (the element must wait on the
    /// transport; interior elements never do).
    boundary: bool,
}

/// L1 column-tile width for the nd SIMD tier, in f64 elements (8 KiB
/// per operand stream). Must be a multiple of the widest lane width
/// (16) so only a segment's final tile carries a remainder tail —
/// keeping the census accounting exact.
const ND_TILE: usize = 1024;

/// One coalesced unit-stride stretch of interior [`NdElem`]s — for a
/// row-major 2-D decomposition, an interior row segment. Elements
/// `k0..k0+len` write `lhs0..lhs0+len` and read each fused slot `j`
/// from `bases[j]..bases[j]+len`.
struct NdSeg {
    k0: usize,
    len: usize,
    lhs0: usize,
    /// Per fused *read slot* (in `FusedShape::read_slots` order), the
    /// local offset of the segment's first element.
    bases: Vec<usize>,
}

fn nd_local_off(el: &NdElem, slot: usize) -> Option<usize> {
    match el.reads.get(slot) {
        Some(NdSlotRef::Local(off)) => Some(*off),
        _ => None,
    }
}

/// Coalesce consecutive interior elements with +1-striding write and
/// fused-read offsets into maximal segments (register + L1 tiling
/// happens inside [`exec_nd_segment`]; streaming segments in row order
/// is the L2 level). Single elements stay on the scalar path — a
/// one-element "vector" would be pure dispatch overhead.
fn find_nd_segments(elems: &[NdElem], fused: &FusedShape) -> Vec<NdSeg> {
    let mut segs = Vec::new();
    if matches!(fused, FusedShape::Generic) {
        return segs;
    }
    let rslots = fused.read_slots();
    let mut k = 0usize;
    while k < elems.len() {
        let el = &elems[k];
        if el.boundary || rslots.iter().any(|s| nd_local_off(el, *s).is_none()) {
            k += 1;
            continue;
        }
        let bases: Vec<usize> = rslots
            .iter()
            .map(|s| nd_local_off(el, *s).unwrap_or(0))
            .collect();
        let lhs0 = el.lhs_off;
        let mut len = 1usize;
        while k + len < elems.len() {
            let e2 = &elems[k + len];
            if e2.boundary || e2.lhs_off != lhs0 + len {
                break;
            }
            let strided = rslots
                .iter()
                .zip(&bases)
                .all(|(s, b)| nd_local_off(e2, *s) == Some(b + len));
            if !strided {
                break;
            }
            len += 1;
        }
        if len >= 2 {
            segs.push(NdSeg {
                k0: k,
                len,
                lhs0,
                bases,
            });
        }
        k += len;
    }
    segs
}

/// Execute one coalesced segment through the lane kernels, one L1 tile
/// at a time, staging results into the ordinal-indexed `out` exactly
/// where the scalar loop would have put them.
#[allow(clippy::too_many_arguments)]
fn exec_nd_segment(
    seg: &NdSeg,
    fused: &FusedShape,
    slots: &[ReadSlot],
    locals: &BTreeMap<String, Vec<f64>>,
    opts: &DistOptions,
    tile: &mut [f64],
    out: &mut [Option<(usize, f64)>],
) {
    let rslots = fused.read_slots();
    let mut t0 = 0usize;
    while t0 < seg.len {
        let tl = ND_TILE.min(seg.len - t0);
        let buf = &mut tile[..tl];
        let src = |j: usize| -> &[f64] {
            let s = rslots[j];
            let part = &locals[&slots[s].array];
            &part[seg.bases[j] + t0..seg.bases[j] + t0 + tl]
        };
        match fused {
            FusedShape::Copy { .. } => simd::copy(opts.simd, src(0), buf),
            FusedShape::Axpy { a, b, .. } => simd::axpy(opts.simd, *a, *b, src(0), buf),
            FusedShape::Stencil {
                slots: ss,
                left_assoc,
                scale,
                offset,
            } => {
                if ss.len() == 3 {
                    simd::stencil3(
                        opts.simd,
                        *left_assoc,
                        *scale,
                        *offset,
                        src(0),
                        src(1),
                        src(2),
                        buf,
                    );
                } else {
                    simd::stencil2(opts.simd, *scale, *offset, src(0), src(1), buf);
                }
            }
            FusedShape::Generic => unreachable!("generic shapes never form segments"),
        }
        for (j, v) in buf.iter().enumerate() {
            out[seg.k0 + t0 + j] = Some((seg.lhs0 + t0 + j, *v));
        }
        t0 += tl;
    }
}

/// Iterate the ownership set `{ i ∈ loop_box | proc(map(i)) = p }`, using
/// the factorized Nd schedule when available and brute-force filtering
/// otherwise.
fn for_each_owned(
    map: &IndexMap,
    dec: &DecompNd,
    loop_box: &vcal_core::Bounds,
    p: i64,
    mut visit: impl FnMut(&Ix),
) {
    match optimize_nd(map, dec, loop_box, p) {
        Some(s) => s.for_each(&mut visit),
        None => {
            for i in loop_box.iter() {
                if dec.proc_of(&map.eval(&i)) == p {
                    visit(&i);
                }
            }
        }
    }
}

/// Execute a `//` clause of any dimensionality on the distributed grid
/// machine with the default (vectorized) communication mode. All
/// referenced arrays must be in `arrays`, decomposed over grids with
/// the same total processor count.
pub fn run_distributed_nd(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    recv_timeout: Duration,
) -> Result<ExecReport, MachineError> {
    run_distributed_nd_mode(clause, arrays, recv_timeout, CommMode::default())
}

/// Like [`run_distributed_nd`] but with an explicit [`CommMode`].
pub fn run_distributed_nd_mode(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    recv_timeout: Duration,
    mode: CommMode,
) -> Result<ExecReport, MachineError> {
    run_distributed_nd_opts(
        clause,
        arrays,
        DistOptions {
            recv_timeout,
            mode,
            ..DistOptions::default()
        },
    )
}

/// Like [`run_distributed_nd`] but with full [`DistOptions`] — timeout,
/// communication mode, seeded fault injection, and retry policy.
pub fn run_distributed_nd_opts(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    opts: DistOptions,
) -> Result<ExecReport, MachineError> {
    run_distributed_nd_traced(clause, arrays, opts, &NULL_TRACER)
}

/// Like [`run_distributed_nd_opts`] but records per-node phase events
/// and wall-clock timings through `tracer` (the nd machine traces at
/// phase granularity; its per-element indices are [`Ix`] and never
/// enter the event log).
pub fn run_distributed_nd_traced(
    clause: &Clause,
    arrays: &mut BTreeMap<String, DistArrayNd>,
    opts: DistOptions,
    tracer: &dyn Tracer,
) -> Result<ExecReport, MachineError> {
    if clause.ordering != Ordering::Par {
        return Err(MachineError::SequentialClause);
    }
    // collect read slots (deduplicated)
    let mut slots: Vec<ReadSlot> = Vec::new();
    for r in clause.read_refs() {
        if !slots.iter().any(|s| s.array == r.array && s.map == r.map) {
            slots.push(ReadSlot {
                array: r.array.clone(),
                map: r.map.clone(),
            });
        }
    }
    let lhs_name = clause.lhs.array.clone();
    let mut referenced: Vec<String> = vec![lhs_name.clone()];
    for s in &slots {
        if !referenced.contains(&s.array) {
            referenced.push(s.array.clone());
        }
    }
    let mut decomps: BTreeMap<String, DecompNd> = BTreeMap::new();
    let mut pmax = None;
    for name in &referenced {
        let da = arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
        match pmax {
            None => pmax = Some(da.decomp().pmax()),
            Some(p) if p == da.decomp().pmax() => {}
            _ => {
                return Err(MachineError::PlanMismatch(
                    "all arrays must use the same total processor count".into(),
                ))
            }
        }
        decomps.insert(name.clone(), da.decomp().clone());
    }
    let pmax =
        pmax.ok_or_else(|| MachineError::PlanMismatch("clause references no arrays".into()))?;
    let dec_lhs = decomps[&lhs_name].clone();

    let rexpr = resolve(&clause.rhs, &slots)?;
    let rguard = match &clause.guard {
        Guard::Always => RGuard::Always,
        Guard::Cmp { lhs, op, rhs } => RGuard::Cmp {
            slot: slots
                .iter()
                .position(|s| s.array == lhs.array && s.map == lhs.map)
                .ok_or_else(|| {
                    MachineError::PlanMismatch(format!(
                        "guard ref `{}` missing from the collected slot list",
                        lhs.array
                    ))
                })?,
            op: *op,
            rhs: *rhs,
        },
    };

    // compile the clause body once into flat postfix bytecode; when it
    // resolves, the node loops run it (plus the plan-time owner tables
    // below) instead of the recursive tree walker
    let kernel = CompiledKernel::compile(&clause.rhs, slots.len(), |r| {
        slots
            .iter()
            .position(|s| s.array == r.array && s.map == r.map)
    });

    // plan-time communication schedule: enumerate each ownership set
    // once, bucket by the write target's owner. Vectorized mode packs
    // these runs; the compiled element path sends from them too (the
    // bucket index *is* the destination — no per-element `proc_of`)
    let loop_box = &clause.iter.bounds;
    let send_plan: SendPlan = if opts.mode == CommMode::Vectorized || kernel.is_some() {
        let mut sp: SendPlan = (0..pmax)
            .map(|_| (0..pmax).map(|_| Vec::new()).collect())
            .collect();
        for p in 0..pmax {
            for (slot, rs) in slots.iter().enumerate() {
                let dec_r = &decomps[&rs.array];
                let mut buckets: Vec<Vec<Ix>> = vec![Vec::new(); pmax as usize];
                for_each_owned(&rs.map, dec_r, loop_box, p, |i| {
                    let owner = dec_lhs.proc_of(&clause.lhs.map.eval(i));
                    if owner != p {
                        buckets[owner as usize].push(*i);
                    }
                });
                for (q, elems) in buckets.into_iter().enumerate() {
                    if !elems.is_empty() {
                        sp[p as usize][q].push(NdRun { slot, elems });
                    }
                }
            }
        }
        sp
    } else {
        Vec::new()
    };

    // per-node execution tables: every modify element with its write
    // offset, per-slot local offset or owner, and interior/boundary
    // class resolved at plan time
    let exec_plan: Vec<Vec<NdElem>> = if kernel.is_some() {
        (0..pmax)
            .map(|p| {
                let lhs_local_bounds = dec_lhs.local_bounds(p);
                let mut elems = Vec::new();
                for_each_owned(&clause.lhs.map, &dec_lhs, loop_box, p, |i| {
                    let target = clause.lhs.map.eval(i);
                    let lhs_off = lhs_local_bounds.linear_offset(&dec_lhs.local_of(&target));
                    let mut boundary = false;
                    let reads = slots
                        .iter()
                        .map(|rs| {
                            let dec_r = &decomps[&rs.array];
                            let g = rs.map.eval(i);
                            let owner = dec_r.proc_of(&g);
                            if owner == p {
                                NdSlotRef::Local(
                                    dec_r.local_bounds(p).linear_offset(&dec_r.local_of(&g)),
                                )
                            } else {
                                boundary = true;
                                NdSlotRef::Remote(owner)
                            }
                        })
                        .collect();
                    elems.push(NdElem {
                        i: *i,
                        lhs_off,
                        reads,
                        boundary,
                    });
                });
                elems
            })
            .collect()
    } else {
        Vec::new()
    };

    // disassemble arrays (two-phase so a missing array cannot leave a
    // partial removal behind)
    let mut taken: Vec<(String, DistArrayNd)> = Vec::with_capacity(referenced.len());
    for name in &referenced {
        match arrays.remove(name) {
            Some(da) => taken.push((name.clone(), da)),
            None => {
                for (n, da) in taken {
                    arrays.insert(n, da);
                }
                return Err(MachineError::UnknownArray(name.clone()));
            }
        }
    }
    let mut per_node: Vec<BTreeMap<String, Vec<f64>>> =
        (0..pmax).map(|_| BTreeMap::new()).collect();
    for (name, da) in taken {
        let (_, parts) = da.into_parts();
        for (p, part) in parts.into_iter().enumerate() {
            per_node[p].insert(name.clone(), part);
        }
    }

    let mut txs: Vec<Sender<Frame<Wire>>> = Vec::with_capacity(pmax as usize);
    let mut rxs: Vec<Receiver<Frame<Wire>>> = Vec::with_capacity(pmax as usize);
    for _ in 0..pmax {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }

    let mut results: Vec<NodeOutcomeNd> = Vec::with_capacity(pmax as usize);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (p, locals) in per_node.into_iter().enumerate() {
            let p = p as i64;
            let rx = rxs.remove(0);
            let txs = txs.clone();
            let decomps = &decomps;
            let dec_lhs = &dec_lhs;
            let slots = &slots;
            let rexpr = &rexpr;
            let rguard = &rguard;
            let send_plan = &send_plan;
            let exec = match (&kernel, exec_plan.get(p as usize)) {
                (Some(k), Some(elems)) => Some((elems.as_slice(), k)),
                _ => None,
            };
            handles.push(scope.spawn(move || {
                run_node_nd(
                    p, locals, rx, txs, clause, slots, exec, rexpr, rguard, decomps, dec_lhs,
                    &opts, send_plan, tracer,
                )
            }));
        }
        drop(txs);
        for (p, h) in handles.into_iter().enumerate() {
            // supervisor: an escaped panic becomes a typed error
            results.push(h.join().unwrap_or_else(|_| {
                (
                    p as i64,
                    BTreeMap::new(),
                    Vec::new(),
                    NodeStats::default(),
                    Err(MachineError::NodePanicked { node: p as i64 }),
                )
            }));
        }
    });
    results.sort_by_key(|(p, ..)| *p);

    // pick the run's error (a panic is the root cause, it wins)
    let mut first_err: Option<MachineError> = None;
    for (.., res) in &results {
        if let Err(e) = res {
            match (&first_err, e) {
                (None, _) => first_err = Some(e.clone()),
                (Some(MachineError::NodePanicked { .. }), _) => {}
                (Some(_), MachineError::NodePanicked { .. }) => first_err = Some(e.clone()),
                _ => {}
            }
        }
    }

    // validate every write before committing any (all-or-nothing)
    if first_err.is_none() {
        'validate: for (p, locals, writes, ..) in &results {
            let len = locals.get(&lhs_name).map_or(0, Vec::len);
            for (off, _) in writes {
                if *off >= len {
                    first_err = Some(MachineError::PlanMismatch(format!(
                        "write offset {off} outside node {p}'s local part (len {len})"
                    )));
                    break 'validate;
                }
            }
        }
    }
    let commit = first_err.is_none();

    let mut report = ExecReport::default();
    let mut parts_by_name: BTreeMap<String, Vec<Vec<f64>>> = BTreeMap::new();
    for (p, mut locals, writes, stats, _res) in results {
        if commit {
            if let Some(lhs_local) = locals.get_mut(&lhs_name) {
                for (off, v) in writes {
                    lhs_local[off] = v; // validated above
                }
            }
        }
        for name in &referenced {
            let part = locals
                .remove(name)
                .unwrap_or_else(|| vec![0.0; decomps[name].local_bounds(p).count() as usize]);
            parts_by_name.entry(name.clone()).or_default().push(part);
        }
        report.nodes.push(stats);
    }
    for (name, parts) in parts_by_name {
        let d = decomps[&name].clone();
        arrays.insert(name, DistArrayNd::from_parts(d, parts));
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Receive-side state of one nd node, by mode.
enum RecvStateNd {
    /// Element mode: out-of-order arrivals in an ordered pending buffer.
    Element { pending: BTreeMap<(usize, Ix), f64> },
    /// Vectorized mode: packets staged whole by `(source, run)`; each
    /// remote element resolves through the plan-expanded `origin` map.
    /// Staging rows are indexed by source processor id directly.
    Packed {
        staging: Vec<Vec<Option<Vec<f64>>>>,
        origin: BTreeMap<(usize, Ix), (usize, usize, usize)>,
    },
}

impl RecvStateNd {
    fn new(mode: CommMode, send_plan: &SendPlan, p: i64, pmax: usize) -> RecvStateNd {
        match mode {
            CommMode::Element => RecvStateNd::Element {
                pending: BTreeMap::new(),
            },
            CommMode::Vectorized => {
                let mut staging = Vec::with_capacity(pmax);
                let mut origin = BTreeMap::new();
                for (src, runs) in send_plan.iter().map(|row| &row[p as usize]).enumerate() {
                    staging.push(vec![None; runs.len()]);
                    for (run_ord, run) in runs.iter().enumerate() {
                        for (off, i) in run.elems.iter().enumerate() {
                            origin.insert((run.slot, *i), (src, run_ord, off));
                        }
                    }
                }
                RecvStateNd::Packed { staging, origin }
            }
        }
    }

    /// Produce the remote operand for `(slot, i)` owed by `owner`,
    /// receiving (and recovering) through the transport as needed.
    #[allow(clippy::too_many_arguments)]
    fn remote_value(
        &mut self,
        ep: &mut Endpoint<Wire>,
        slot: usize,
        i: &Ix,
        owner: i64,
        opts: &DistOptions,
        stats: &mut NodeStats,
    ) -> Result<f64, RecvFailNd> {
        match self {
            RecvStateNd::Element { pending } => await_until(
                ep,
                owner,
                opts.recv_timeout,
                opts.retry,
                stats,
                pending,
                |pending| pending.remove(&(slot, *i)).map(Ok),
                |pending, _src, _seq, wire| match wire {
                    Wire::Elem(m) => {
                        pending.insert((m.slot, m.i), m.value);
                        Ok(())
                    }
                    Wire::Pack { .. } => Err("vector packet in element mode"),
                },
            )
            .map_err(|e| match e {
                AwaitFail::Timeout => RecvFailNd::Timeout,
                AwaitFail::Exhausted { retries } => RecvFailNd::Exhausted {
                    peer: owner,
                    retries,
                },
                AwaitFail::BadWire(w) => RecvFailNd::BadWire(w),
            }),
            RecvStateNd::Packed { staging, origin } => {
                let &(src, ro, off) = origin
                    .get(&(slot, *i))
                    .ok_or(RecvFailNd::BadWire("no planned packet covers this element"))?;
                let peer = src as i64;
                await_until(
                    ep,
                    peer,
                    opts.recv_timeout,
                    opts.retry,
                    stats,
                    staging,
                    |staging| {
                        staging[src][ro].as_ref().map(|vals| {
                            vals.get(off)
                                .copied()
                                .ok_or("packet shorter than its planned run")
                        })
                    },
                    |staging, s, _seq, wire| match wire {
                        Wire::Pack { run_ord, values } => {
                            let row = staging
                                .get_mut(s as usize)
                                .ok_or("packet from unplanned source")?;
                            let cell = row.get_mut(run_ord).ok_or("packet run tag out of range")?;
                            if cell.is_none() {
                                *cell = Some(values);
                            }
                            Ok(())
                        }
                        Wire::Elem(_) => Err("element message in vectorized mode"),
                    },
                )
                .map_err(|e| match e {
                    AwaitFail::Timeout => RecvFailNd::PacketTimeout { peer, run: ro },
                    AwaitFail::Exhausted { retries } => RecvFailNd::Exhausted { peer, retries },
                    AwaitFail::BadWire(w) => RecvFailNd::BadWire(w),
                })
            }
        }
    }
}

/// Why an nd remote value could not be produced.
enum RecvFailNd {
    Timeout,
    PacketTimeout { peer: i64, run: usize },
    Exhausted { peer: i64, retries: u32 },
    BadWire(&'static str),
}

/// The nd machine's uniform receive-failure → typed-error mapping
/// (identical wording to the legacy update loop's inline arms).
fn map_recv_fail_nd(f: RecvFailNd, p: i64, array: &str, i: &Ix, slot: usize) -> MachineError {
    match f {
        RecvFailNd::Timeout => MachineError::MissingMessage {
            node: p,
            array: array.to_string(),
            index: i[0],
        },
        RecvFailNd::PacketTimeout { peer, run } => MachineError::MissingPacket {
            node: p,
            peer,
            slot,
            run,
        },
        RecvFailNd::Exhausted { peer, retries } => MachineError::Unrecoverable {
            node: p,
            peer,
            retries,
        },
        RecvFailNd::BadWire(why) => {
            MachineError::PlanMismatch(format!("node {p}, array `{array}`: {why}"))
        }
    }
}

/// One nd node thread: run the phases under a panic guard, then
/// announce completion and service late retransmit requests.
#[allow(clippy::too_many_arguments)]
fn run_node_nd(
    p: i64,
    locals: BTreeMap<String, Vec<f64>>,
    rx: Receiver<Frame<Wire>>,
    txs: Vec<Sender<Frame<Wire>>>,
    clause: &Clause,
    slots: &[ReadSlot],
    exec: Option<(&[NdElem], &CompiledKernel)>,
    rexpr: &RExpr,
    rguard: &RGuard,
    decomps: &BTreeMap<String, DecompNd>,
    dec_lhs: &DecompNd,
    opts: &DistOptions,
    send_plan: &SendPlan,
    tracer: &dyn Tracer,
) -> NodeOutcomeNd {
    let mut locals = locals;
    let mut stats = NodeStats::default();
    let mut writes: Vec<(usize, f64)> = Vec::new();
    let mut ep = Endpoint::in_proc(p, txs, rx, opts.faults, tracer);
    let trace_on = tracer.enabled();

    let phases = catch_unwind(AssertUnwindSafe(|| {
        node_phases_nd(
            p,
            &mut locals,
            &mut ep,
            clause,
            slots,
            exec,
            rexpr,
            rguard,
            decomps,
            dec_lhs,
            opts,
            send_plan,
            &mut stats,
            &mut writes,
            tracer,
        )
    }));
    let res = match phases {
        Ok(r) => {
            ep.announce_done();
            if trace_on {
                tracer.record(p, EventKind::PhaseStart(Phase::Drain));
                let t0 = std::time::Instant::now();
                ep.drain(opts.recv_timeout, &mut stats);
                tracer.timing(p, Phase::Drain, t0.elapsed());
                tracer.record(p, EventKind::PhaseEnd(Phase::Drain));
            } else {
                ep.drain(opts.recv_timeout, &mut stats);
            }
            r
        }
        Err(_) => {
            ep.announce_done();
            Err(MachineError::NodePanicked { node: p })
        }
    };
    if res.is_err() {
        writes.clear();
    }
    (p, locals, writes, stats, res)
}

/// The send + update phases of one nd node (panics are caught by the
/// caller's supervisor). Writes are collected for the host to commit.
#[allow(clippy::too_many_arguments)]
fn node_phases_nd(
    p: i64,
    locals: &mut BTreeMap<String, Vec<f64>>,
    ep: &mut Endpoint<Wire>,
    clause: &Clause,
    slots: &[ReadSlot],
    exec: Option<(&[NdElem], &CompiledKernel)>,
    rexpr: &RExpr,
    rguard: &RGuard,
    decomps: &BTreeMap<String, DecompNd>,
    dec_lhs: &DecompNd,
    opts: &DistOptions,
    send_plan: &SendPlan,
    stats: &mut NodeStats,
    writes: &mut Vec<(usize, f64)>,
    tracer: &dyn Tracer,
) -> Result<(), MachineError> {
    let loop_box = &clause.iter.bounds;
    let pmax = ep.peer_count();
    let trace_on = tracer.enabled();

    // ---- send phase ------------------------------------------------------
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Send));
    }
    let send_t0 = trace_on.then(std::time::Instant::now);
    match (opts.mode, exec.is_some()) {
        (CommMode::Element, true) => {
            // compiled: the plan buckets already know every destination —
            // the per-element `proc_of(lhs(i))` owner test is hoisted to
            // plan time (the bucket index is the destination)
            for (q, runs) in send_plan[p as usize].iter().enumerate() {
                for run in runs {
                    let rs = &slots[run.slot];
                    let dec_r = &decomps[&rs.array];
                    let local_part = &locals[&rs.array];
                    let local_bounds = dec_r.local_bounds(p);
                    for i in &run.elems {
                        let g = rs.map.eval(i);
                        let off = local_bounds.linear_offset(&dec_r.local_of(&g));
                        stats.msgs_sent += 1;
                        stats.packets_sent += 1;
                        stats.bytes_sent += ELEM_MSG_BYTES;
                        stats.max_packet_elems = stats.max_packet_elems.max(1);
                        ep.send(
                            q,
                            Wire::Elem(Msg {
                                slot: run.slot,
                                i: *i,
                                value: local_part[off],
                            }),
                        );
                    }
                }
            }
        }
        (CommMode::Element, false) => {
            // naive fallback: per-element ownership test + tagged send
            for (slot, rs) in slots.iter().enumerate() {
                let dec_r = &decomps[&rs.array];
                let local_part = &locals[&rs.array];
                let local_bounds = dec_r.local_bounds(p);
                for_each_owned(&rs.map, dec_r, loop_box, p, |i| {
                    let owner = dec_lhs.proc_of(&clause.lhs.map.eval(i));
                    if owner != p {
                        let g = rs.map.eval(i);
                        let off = local_bounds.linear_offset(&dec_r.local_of(&g));
                        stats.msgs_sent += 1;
                        stats.packets_sent += 1;
                        stats.bytes_sent += ELEM_MSG_BYTES;
                        stats.max_packet_elems = stats.max_packet_elems.max(1);
                        ep.send(
                            owner as usize,
                            Wire::Elem(Msg {
                                slot,
                                i: *i,
                                value: local_part[off],
                            }),
                        );
                    }
                });
            }
        }
        (CommMode::Vectorized, _) => {
            for (q, runs) in send_plan[p as usize].iter().enumerate() {
                for (run_ord, run) in runs.iter().enumerate() {
                    let rs = &slots[run.slot];
                    let dec_r = &decomps[&rs.array];
                    let local_part = &locals[&rs.array];
                    let local_bounds = dec_r.local_bounds(p);
                    let mut values = Vec::with_capacity(run.elems.len());
                    for i in &run.elems {
                        let g = rs.map.eval(i);
                        values.push(local_part[local_bounds.linear_offset(&dec_r.local_of(&g))]);
                    }
                    let elems = values.len() as u64;
                    stats.msgs_sent += elems;
                    stats.packets_sent += 1;
                    stats.bytes_sent += PACK_HEADER_BYTES + 8 * elems;
                    stats.max_packet_elems = stats.max_packet_elems.max(elems);
                    ep.send(q, Wire::Pack { run_ord, values });
                }
            }
        }
    }
    ep.end_send_phase(); // flush delayed packets; crash point
    if let Some(t0) = send_t0 {
        tracer.timing(p, Phase::Send, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Send));
    }

    // ---- update phase ----------------------------------------------------
    if trace_on {
        tracer.record(p, EventKind::PhaseStart(Phase::Update));
    }
    let update_t0 = trace_on.then(std::time::Instant::now);

    // compiled path: bytecode kernel over the plan-time element tables.
    // With overlap, every interior element (all operands owner-local)
    // executes before any boundary element blocks on the transport;
    // writes are staged by visit ordinal so the commit order — and the
    // result, even for a non-injective write map — is overlap-invariant.
    if let Some((elems, kernel)) = exec {
        let mut recv = RecvStateNd::new(opts.mode, send_plan, p, pmax);
        // per-run scratch, allocated once for the whole update phase
        let mut vals = vec![0.0f64; slots.len()];
        let mut stack: Vec<f64> = Vec::with_capacity(kernel.stack_capacity());
        let mut out: Vec<Option<(usize, f64)>> = vec![None; elems.len()];
        let n_slots = slots.len();
        // Cache-blocked SIMD tier (DESIGN.md §14): coalesce consecutive
        // interior elements whose write offset and every fused read
        // offset advance by +1 — for a row-major 2-D grid these are
        // exactly the interior row segments — then stream each segment
        // through L1-sized column tiles of lane chunks. Staging by
        // ordinal `out[k]` keeps the commit order identical to the
        // scalar path, so results are bitwise unchanged.
        let segs = if opts.simd.enabled() && matches!(rguard, RGuard::Always) {
            find_nd_segments(elems, &kernel.fused)
        } else {
            Vec::new()
        };
        let mut tile = vec![0.0f64; ND_TILE];
        let passes: &[Option<bool>] = if opts.overlap {
            &[Some(false), Some(true)]
        } else {
            &[None]
        };
        for pass in passes {
            let mut si = 0usize;
            // advance past segments while scalar elements run, counting
            // each maximal scalar stretch as one fallback "run"
            let mut in_fallback = false;
            let mut k = 0usize;
            while k < elems.len() {
                if let Some(seg) = segs.get(si) {
                    if seg.k0 == k {
                        // segments are interior-only: execute them on the
                        // interior (or single) pass, skip on the boundary pass
                        if pass.is_none_or(|want_boundary| !want_boundary) {
                            exec_nd_segment(
                                seg,
                                &kernel.fused,
                                slots,
                                locals,
                                opts,
                                &mut tile,
                                &mut out,
                            );
                            stats.iterations += seg.len as u64;
                            stats.local_reads += (seg.len * n_slots) as u64;
                            stats.data_guards += seg.len as u64;
                            let lanes = opts.simd.census_lanes() as u64;
                            stats.simd_runs += 1;
                            stats.simd_lane_elems += seg.len as u64 / lanes * lanes;
                            stats.simd_tail_elems += seg.len as u64 % lanes;
                            stats.simd_lanes = stats.simd_lanes.max(lanes);
                        }
                        in_fallback = false;
                        k += seg.len;
                        si += 1;
                        continue;
                    }
                }
                let el = &elems[k];
                if let Some(want_boundary) = pass {
                    if el.boundary != *want_boundary {
                        in_fallback = false;
                        k += 1;
                        continue;
                    }
                }
                if !in_fallback {
                    stats.simd_fallback_runs += 1;
                    in_fallback = true;
                }
                stats.iterations += 1;
                for (slot, r) in el.reads.iter().enumerate() {
                    vals[slot] = match r {
                        NdSlotRef::Local(off) => {
                            stats.local_reads += 1;
                            locals[&slots[slot].array][*off]
                        }
                        NdSlotRef::Remote(owner) => {
                            match recv.remote_value(ep, slot, &el.i, *owner, opts, stats) {
                                Ok(v) => {
                                    stats.msgs_received += 1;
                                    v
                                }
                                Err(f) => {
                                    let res = Err(map_recv_fail_nd(
                                        f,
                                        p,
                                        &slots[slot].array,
                                        &el.i,
                                        slot,
                                    ));
                                    if let Some(t0) = update_t0 {
                                        tracer.timing(p, Phase::Update, t0.elapsed());
                                        tracer.record(p, EventKind::PhaseEnd(Phase::Update));
                                    }
                                    return res;
                                }
                            }
                        }
                    };
                }
                stats.data_guards += 1;
                let ok = match rguard {
                    RGuard::Always => true,
                    RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
                };
                if ok {
                    out[k] = Some((el.lhs_off, kernel.eval(el.i.coords(), &vals, &mut stack)));
                }
                k += 1;
            }
        }
        writes.extend(out.into_iter().flatten());
        if trace_on {
            tracer.record(
                p,
                EventKind::SimdCensus {
                    vector_runs: stats.simd_runs,
                    fallback_runs: stats.simd_fallback_runs,
                    lane_elems: stats.simd_lane_elems,
                    tail_elems: stats.simd_tail_elems,
                },
            );
        }
        if let Some(t0) = update_t0 {
            tracer.timing(p, Phase::Update, t0.elapsed());
            tracer.record(p, EventKind::PhaseEnd(Phase::Update));
        }
        return Ok(());
    }

    let mut recv = RecvStateNd::new(opts.mode, send_plan, p, pmax);
    let mut vals = vec![0.0f64; slots.len()];
    let mut err: Option<MachineError> = None;
    let lhs_local_bounds = dec_lhs.local_bounds(p);

    for_each_owned(&clause.lhs.map, dec_lhs, loop_box, p, |i| {
        if err.is_some() {
            return;
        }
        stats.iterations += 1;
        for (slot, rs) in slots.iter().enumerate() {
            let dec_r = &decomps[&rs.array];
            let g = rs.map.eval(i);
            let owner = dec_r.proc_of(&g);
            if owner == p {
                stats.local_reads += 1;
                let off = dec_r.local_bounds(p).linear_offset(&dec_r.local_of(&g));
                vals[slot] = locals[&rs.array][off];
            } else {
                vals[slot] = match recv.remote_value(ep, slot, i, owner, opts, stats) {
                    Ok(v) => {
                        stats.msgs_received += 1;
                        v
                    }
                    Err(RecvFailNd::Timeout) => {
                        err = Some(MachineError::MissingMessage {
                            node: p,
                            array: rs.array.clone(),
                            index: i[0],
                        });
                        return;
                    }
                    Err(RecvFailNd::PacketTimeout { peer, run }) => {
                        err = Some(MachineError::MissingPacket {
                            node: p,
                            peer,
                            slot,
                            run,
                        });
                        return;
                    }
                    Err(RecvFailNd::Exhausted { peer, retries }) => {
                        err = Some(MachineError::Unrecoverable {
                            node: p,
                            peer,
                            retries,
                        });
                        return;
                    }
                    Err(RecvFailNd::BadWire(why)) => {
                        err = Some(MachineError::PlanMismatch(format!(
                            "node {p}, array `{}`: {why}",
                            rs.array
                        )));
                        return;
                    }
                };
            }
        }
        stats.data_guards += 1;
        let ok = match rguard {
            RGuard::Always => true,
            RGuard::Cmp { slot, op, rhs } => op.holds(vals[*slot], *rhs),
        };
        if ok {
            let target = clause.lhs.map.eval(i);
            let off = lhs_local_bounds.linear_offset(&dec_lhs.local_of(&target));
            writes.push((off, eval_r(rexpr, i, &vals)));
        }
    });
    if let Some(t0) = update_t0 {
        tracer.timing(p, Phase::Update, t0.elapsed());
        tracer.record(p, EventKind::PhaseEnd(Phase::Update));
    }

    err.map_or(Ok(()), Err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultPlan;
    use crate::transport::RetryPolicy;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, ArrayRef, Bounds, Env, IndexSet};
    use vcal_decomp::Decomp1;

    fn grid(r: i64, c: i64, n0: i64, n1: i64) -> DecompNd {
        DecompNd::new(vec![
            Decomp1::block(r, Bounds::range(0, n0 - 1)),
            Decomp1::scatter(c, Bounds::range(0, n1 - 1)),
        ])
    }

    fn run_and_check(clause: &Clause, env: &Env, decs: &BTreeMap<String, DecompNd>) {
        let mut reference = env.clone();
        reference.exec_clause(clause);
        let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
        for (name, d) in decs {
            arrays.insert(
                name.clone(),
                DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
            );
        }
        run_distributed_nd(clause, &mut arrays, Duration::from_secs(5)).unwrap();
        let got = arrays[&clause.lhs.array].gather();
        assert_eq!(
            got.max_abs_diff(reference.get(&clause.lhs.array).unwrap()),
            0.0
        );
    }

    #[test]
    fn jacobi2d_distributed() {
        let n = 20i64;
        let u = |di: i64, dj: i64| {
            Expr::Ref(ArrayRef::new(
                "U",
                IndexMap::per_dim(vec![Fn1::shift(di), Fn1::shift(dj)]),
            ))
        };
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(1, n - 2, 1, n - 2)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("V", IndexMap::identity(2)),
            rhs: Expr::mul(
                Expr::add(Expr::add(u(-1, 0), u(1, 0)), Expr::add(u(0, -1), u(0, 1))),
                Expr::Lit(0.25),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                ((i[0] * 7 + i[1] * 3) % 11) as f64
            }),
        );
        env.insert("V", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("U".to_string(), grid(2, 2, n, n));
        decs.insert("V".to_string(), grid(2, 2, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn transpose_across_grids() {
        // B[j,i] := A[i,j] with DIFFERENT grid decompositions for A and B
        let n = 12i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn guarded_2d_clause() {
        let n = 10i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::new("C", IndexMap::identity(2)),
                op: CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
                Expr::LoopVar { dim: 1 },
            ),
        };
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        env.insert(
            "B",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| (i[0] + i[1]) as f64),
        );
        env.insert(
            "C",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                if (i[0] + i[1]) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            }),
        );
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::block(4, Bounds::range(0, n - 1)),
                Decomp1::block(1, Bounds::range(0, n - 1)),
            ]),
        );
        decs.insert("C".to_string(), grid(4, 1, n, n));
        run_and_check(&clause, &env, &decs);
    }

    #[test]
    fn modes_agree_and_vectorized_batches() {
        // transpose across different grids forces all-to-all traffic
        let n = 16i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut reference = env.clone();
        reference.exec_clause(&clause);
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        let mut totals = Vec::new();
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
            for (name, d) in &decs {
                arrays.insert(
                    name.clone(),
                    DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
                );
            }
            let report =
                run_distributed_nd_mode(&clause, &mut arrays, Duration::from_secs(5), mode)
                    .unwrap();
            assert_eq!(
                arrays["B"]
                    .gather()
                    .max_abs_diff(reference.get("B").unwrap()),
                0.0,
                "{mode:?}"
            );
            totals.push(report.total());
        }
        let (elem, vect) = (totals[0], totals[1]);
        assert_eq!(elem.msgs_sent, vect.msgs_sent);
        assert_eq!(elem.msgs_received, vect.msgs_received);
        assert_eq!(elem.packets_sent, elem.msgs_sent);
        assert!(vect.packets_sent < vect.msgs_sent);
        assert!(vect.max_packet_elems > 1);
    }

    #[test]
    fn faulty_transpose_recovers_bit_exact() {
        // a noisy seeded link on the all-to-all transpose still converges
        let n = 12i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range2(0, n - 1, 0, n - 1), |i| {
                (i[0] * 100 + i[1]) as f64
            }),
        );
        env.insert("B", Array::zeros(Bounds::range2(0, n - 1, 0, n - 1)));
        let mut reference = env.clone();
        reference.exec_clause(&clause);
        let mut decs = BTreeMap::new();
        decs.insert("A".to_string(), grid(2, 2, n, n));
        decs.insert(
            "B".to_string(),
            DecompNd::new(vec![
                Decomp1::scatter(2, Bounds::range(0, n - 1)),
                Decomp1::block(2, Bounds::range(0, n - 1)),
            ]),
        );
        for mode in [CommMode::Element, CommMode::Vectorized] {
            let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
            for (name, d) in &decs {
                arrays.insert(
                    name.clone(),
                    DistArrayNd::scatter_from(env.get(name).unwrap(), d.clone()),
                );
            }
            let opts = DistOptions {
                recv_timeout: Duration::from_secs(5),
                faults: Some(
                    FaultPlan::seeded(42)
                        .with_drop(0.1)
                        .with_duplicate(0.1)
                        .with_reorder(0.1),
                ),
                mode,
                retry: RetryPolicy::fast(),
                ..DistOptions::default()
            };
            let report = run_distributed_nd_opts(&clause, &mut arrays, opts)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert_eq!(
                arrays["B"]
                    .gather()
                    .max_abs_diff(reference.get("B").unwrap()),
                0.0,
                "{mode:?}"
            );
            assert!(report.total().acks_sent > 0);
        }
    }

    #[test]
    fn nd_crash_fault_is_typed_error() {
        let n = 12i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("B", IndexMap::permutation(2, &[1, 0])),
            rhs: Expr::Ref(ArrayRef::new("A", IndexMap::identity(2))),
        };
        let mut arrays: BTreeMap<String, DistArrayNd> = BTreeMap::new();
        arrays.insert("A".to_string(), DistArrayNd::zeros(grid(2, 2, n, n)));
        arrays.insert("B".to_string(), DistArrayNd::zeros(grid(2, 2, n, n)));
        let opts = DistOptions {
            recv_timeout: Duration::from_millis(500),
            faults: Some(FaultPlan::seeded(1).with_crash(3, 0)),
            retry: RetryPolicy::fast(),
            ..DistOptions::default()
        };
        let err = run_distributed_nd_opts(&clause, &mut arrays, opts).unwrap_err();
        assert_eq!(err, MachineError::NodePanicked { node: 3 });
    }

    #[test]
    fn mismatched_pmax_rejected() {
        let n = 8i64;
        let clause = Clause {
            iter: IndexSet::full(Bounds::range2(0, n - 1, 0, n - 1)),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::new("A", IndexMap::identity(2)),
            rhs: Expr::Ref(ArrayRef::new("B", IndexMap::identity(2))),
        };
        let mut arrays = BTreeMap::new();
        arrays.insert("A".to_string(), DistArrayNd::zeros(grid(2, 2, n, n)));
        arrays.insert("B".to_string(), DistArrayNd::zeros(grid(2, 3, n, n)));
        assert!(matches!(
            run_distributed_nd(&clause, &mut arrays, Duration::from_millis(100)),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
