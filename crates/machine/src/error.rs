//! Machine execution errors.

use std::fmt;

/// Errors raised by the simulated machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The clause uses the `•` (sequential) ordering; SPMD machines only
    /// execute `//` clauses (the paper: "in the case of a sequential
    /// operator the expression translates to a sequential program").
    SequentialClause,
    /// A referenced array is missing from the environment.
    UnknownArray(String),
    /// The distributed machine timed out waiting for a message that never
    /// arrived (fault injection, or an inconsistent plan).
    MissingMessage {
        /// The waiting processor.
        node: i64,
        /// The read slot it was waiting on.
        array: String,
        /// The loop index whose operand was missing.
        index: i64,
    },
    /// The plan and the supplied arrays disagree (extent or processor
    /// count mismatch).
    PlanMismatch(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::SequentialClause => {
                write!(f, "SPMD machines execute `//` clauses only")
            }
            MachineError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            MachineError::MissingMessage { node, array, index } => write!(
                f,
                "node {node} timed out waiting for {array}[g({index})] — message lost"
            ),
            MachineError::PlanMismatch(m) => write!(f, "plan/array mismatch: {m}"),
        }
    }
}

impl std::error::Error for MachineError {}
