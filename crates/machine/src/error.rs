//! Machine execution errors.

use std::fmt;

/// Errors raised by the simulated machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The clause uses the `•` (sequential) ordering; SPMD machines only
    /// execute `//` clauses (the paper: "in the case of a sequential
    /// operator the expression translates to a sequential program").
    SequentialClause,
    /// A referenced array is missing from the environment.
    UnknownArray(String),
    /// The distributed machine timed out waiting for a message that never
    /// arrived (fault injection, or an inconsistent plan).
    MissingMessage {
        /// The waiting processor.
        node: i64,
        /// The read slot it was waiting on.
        array: String,
        /// The loop index whose operand was missing.
        index: i64,
    },
    /// The distributed machine timed out waiting for a planned packet
    /// in vectorized mode — the lost unit is a whole run, so the
    /// diagnosis matches the wire protocol: which peer owed which run
    /// of which read slot.
    MissingPacket {
        /// The waiting processor.
        node: i64,
        /// The processor that owed the packet.
        peer: i64,
        /// The read slot the run belongs to.
        slot: usize,
        /// The run ordinal in the `(peer, node)` pair's run list.
        run: usize,
    },
    /// The NACK/retransmit budget was exhausted without recovering the
    /// missing data — the fault is not transient.
    Unrecoverable {
        /// The waiting processor.
        node: i64,
        /// The peer that never delivered.
        peer: i64,
        /// Retransmit requests sent before giving up.
        retries: u32,
    },
    /// A node thread panicked; the supervisor caught it, quiesced the
    /// remaining nodes, and restored the array state.
    NodePanicked {
        /// The processor whose thread panicked.
        node: i64,
    },
    /// A pipeline peer hung up before delivering everything it owed
    /// (DOACROSS predecessor exited early).
    PeerDisconnected {
        /// The waiting processor.
        node: i64,
        /// The peer that disconnected.
        peer: i64,
    },
    /// The plan and the supplied arrays disagree (extent or processor
    /// count mismatch).
    PlanMismatch(String),
    /// A transport-level failure on a real wire backend: handshake
    /// rejection (version mismatch), codec failure, a dead socket that
    /// outlived its reconnect budget, or a worker process that exited
    /// without delivering its result.
    Transport {
        /// The node whose link failed (-1 for the host/router itself).
        node: i64,
        /// Human-readable cause, including any version numbers.
        detail: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::SequentialClause => {
                write!(f, "SPMD machines execute `//` clauses only")
            }
            MachineError::UnknownArray(a) => write!(f, "unknown array `{a}`"),
            MachineError::MissingMessage { node, array, index } => write!(
                f,
                "node {node} timed out waiting for {array}[g({index})] — message lost"
            ),
            MachineError::MissingPacket {
                node,
                peer,
                slot,
                run,
            } => write!(
                f,
                "node {node} timed out waiting for packet (peer {peer}, slot {slot}, run {run}) \
                 — packet lost"
            ),
            MachineError::Unrecoverable {
                node,
                peer,
                retries,
            } => write!(
                f,
                "node {node} gave up on peer {peer} after {retries} retransmit requests \
                 — fault is not transient"
            ),
            MachineError::NodePanicked { node } => write!(
                f,
                "node {node} panicked during execution; remaining nodes quiesced, \
                 array state restored"
            ),
            MachineError::PeerDisconnected { node, peer } => write!(
                f,
                "node {node}'s pipeline peer {peer} hung up before delivering its \
                 boundary values"
            ),
            MachineError::PlanMismatch(m) => write!(f, "plan/array mismatch: {m}"),
            MachineError::Transport { node, detail } => {
                write!(f, "node {node} transport failure: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineError {}
