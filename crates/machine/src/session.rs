//! A distributed-memory *session*: persistent distributed arrays plus the
//! plan/execute/redistribute cycle, so multi-clause programs (sweeps,
//! phase changes) read like the original algorithm.
//!
//! [`DistSession::run`] is the steady-state entry point: plans are
//! cached by `(clause signature, decomposition fingerprint)` and
//! executed on a persistent [`DistExecutor`] worker pool, so a clause
//! repeated in a timestep loop pays plan derivation, schedule
//! compilation, and thread spawning exactly once (see DESIGN.md §12).
//! [`DistSession::redistribute`] and any decomposition change invalidate
//! the cache. [`ExecReport::cache_hits`]/[`ExecReport::cache_misses`]
//! report which path a run took.
//!
//! Every reuse tier — plan cache, DAG cache, tune cache — is a bounded
//! LRU ([`vcal_spmd::BoundedLru`]) with an entry/byte budget, and each
//! tier can be **owned** (the classic per-session caches) or **shared**:
//! `vcalc serve` (DESIGN.md §18) hangs many concurrent sessions off one
//! `Arc<Mutex<SessionCaches>>` and one worker pool, with a per-tenant
//! namespace mixed into every key so tenants can never observe each
//! other's cache fate. Budget-pressure evictions surface on
//! [`ExecReport::evictions`] and [`ProgramReport::evictions`].

use crate::darray::DistArray;
use crate::distributed::{run_distributed, run_distributed_traced, DistOptions};
use crate::error::MachineError;
use crate::executor::{prepare_run, DistExecutor, PreparedPlan};
use crate::net::lock;
use crate::obs::{CollectingTracer, EventKind, Tracer, HOST, NULL_TRACER};
use crate::perfmodel::{CalibratedModel, CalibrationSample};
use crate::proc::ProcPool;
use crate::redistribute::{run_redistribution_opts, run_redistribution_traced};
use crate::stats::ExecReport;
use crate::transport::TransportKind;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use vcal_core::{Array, Clause, Env};
use vcal_decomp::{Decomp1, RedistPlan};
use vcal_spmd::{
    build_dag, candidate_for_assignment, clause_arrays, clause_signature, decomp_fingerprint,
    describe_assignment, enumerate_candidates, program_signature, BoundedLru, CacheBudget,
    DecompMap, ProgramDag, ProgramStep, SpmdPlan, TuneCandidate, TuneSpaceOptions,
};

/// Cache key of every tier: `(tenant namespace, signature, decomposition
/// fingerprint)`. Owned sessions use namespace 0; shared (serve-mode)
/// sessions mix in the tenant fingerprint, so two tenants submitting the
/// byte-identical program still occupy disjoint key spaces — the
/// cross-tenant isolation guarantee is structural, not advisory.
type CacheKey = (u64, u64, u64);

/// Approximate resident bytes charged per DAG edge/wave entry.
const DAG_ENTRY_BYTES: usize = 64;
/// Flat byte charge per cached tune price (the entry is a key + an f64).
const TUNE_ENTRY_BYTES: usize = 40;

/// The three bounded reuse tiers a session consults, owned directly or
/// shared behind a mutex by every session of a resident service.
#[derive(Debug)]
pub(crate) struct SessionCaches {
    /// Prepared plans by clause signature × clause-restricted fingerprint.
    plans: BoundedLru<CacheKey, Arc<PreparedPlan>>,
    /// Program dependence DAGs by program signature × fingerprint.
    dags: BoundedLru<CacheKey, Arc<ProgramDag>>,
    /// Tuner candidate prices by clause signature × candidate fingerprint.
    tunes: BoundedLru<CacheKey, f64>,
}

impl SessionCaches {
    /// Empty tiers sharing one budget (the tune tier gets a deeper entry
    /// budget — its entries are 40 bytes, not kilobytes, and a candidate
    /// sweep touches `budget × clauses` keys in one call).
    pub(crate) fn new(budget: CacheBudget) -> SessionCaches {
        let tune_budget = CacheBudget {
            max_entries: budget.max_entries.saturating_mul(16),
            max_bytes: budget.max_bytes,
        };
        SessionCaches {
            plans: BoundedLru::new(budget),
            dags: BoundedLru::new(budget),
            tunes: BoundedLru::new(tune_budget),
        }
    }

    /// Budget-pressure evictions across all three tiers, lifetime.
    pub(crate) fn evictions(&self) -> u64 {
        self.plans.evictions() + self.dags.evictions() + self.tunes.evictions()
    }
}

impl Default for SessionCaches {
    fn default() -> Self {
        SessionCaches::new(CacheBudget::default())
    }
}

/// Where a session's caches live.
#[derive(Debug)]
enum CacheHandle {
    /// Classic: this session owns its tiers (namespace 0). Boxed so the
    /// handle stays pointer-sized next to the shared arm.
    Owned(Box<SessionCaches>),
    /// Serve mode: tiers shared across sessions, keys namespaced by the
    /// tenant fingerprint.
    Shared {
        caches: Arc<Mutex<SessionCaches>>,
        ns: u64,
    },
}

impl CacheHandle {
    /// Run `f` against the tiers with this session's namespace. The
    /// shared arm holds the mutex only for the closure — callers build
    /// plans *outside* it so tenants never serialize behind each other's
    /// planning.
    fn with<R>(&mut self, f: impl FnOnce(&mut SessionCaches, u64) -> R) -> R {
        match self {
            CacheHandle::Owned(c) => f(c, 0),
            CacheHandle::Shared { caches, ns } => f(&mut lock(caches), *ns),
        }
    }
}

/// The execution backends a session dispatches onto: the in-process
/// thread pool and/or the socket-backend worker-process pool, created
/// lazily and identified by `(backend, pmax, chaos, timeouts)`.
#[derive(Debug, Default)]
pub(crate) struct PoolState {
    pool: Option<DistExecutor>,
    procs: Option<ProcPool>,
}

impl PoolState {
    /// Execute one prepared clause on whichever backend `opts` selects,
    /// (re)creating the pool when its identity no longer matches.
    fn run_clause(
        &mut self,
        prepared: &Arc<PreparedPlan>,
        clause: &Clause,
        arrays: &mut BTreeMap<String, DistArray>,
        opts: DistOptions,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let pmax = prepared.plan().pmax;
        if opts.transport != TransportKind::InProc {
            // socket backend: real worker processes behind the router;
            // the pool's identity is (backend, pmax, chaos plan, timeouts)
            let want = pmax.max(0) as usize;
            if self.procs.as_ref().is_some_and(|pp| {
                pp.kind() != opts.transport
                    || pp.pmax() != want
                    || pp.chaos() != opts.chaos
                    || pp.timeouts() != opts.timeouts
            }) {
                self.procs = None;
            }
            if self.procs.is_none() {
                self.procs = Some(ProcPool::new(
                    opts.transport,
                    want,
                    opts.chaos,
                    opts.timeouts,
                )?);
            }
            let procs = match self.procs.as_mut() {
                Some(pp) => pp,
                None => unreachable!("process pool created above"),
            };
            return procs.run(prepared, clause, arrays, opts, tracer);
        }
        self.inproc(pmax).run(prepared, arrays, opts, tracer)
    }

    /// Execute one DAG wave on the in-process pool (the socket backends
    /// never reach here — their waves run member-by-member).
    fn run_wave(
        &mut self,
        jobs: &[Arc<PreparedPlan>],
        arrays: &mut BTreeMap<String, DistArray>,
        opts: DistOptions,
        tracer: &dyn Tracer,
    ) -> Result<Vec<ExecReport>, MachineError> {
        let pmax = jobs[0].plan().pmax;
        let pool = self.inproc(pmax);
        // a width-1 wave is just a single run — skip the wave machinery
        // (per-job snapshots, staged commits) it exists to coordinate
        if jobs.len() == 1 {
            Ok(vec![pool.run(&jobs[0], arrays, opts, tracer)?])
        } else {
            pool.run_wave(jobs, arrays, opts, tracer)
        }
    }

    /// The in-process pool for `pmax` nodes, recreated on a size change.
    fn inproc(&mut self, pmax: i64) -> &mut DistExecutor {
        if self
            .pool
            .as_ref()
            .is_some_and(|pool| pool.pmax() != pmax.max(0) as usize)
        {
            self.pool = None;
        }
        self.pool.get_or_insert_with(|| DistExecutor::new(pmax))
    }

    /// OS pids of the live worker processes (empty off the socket
    /// backends).
    fn pids(&self) -> Vec<u32> {
        self.procs.as_ref().map(ProcPool::pids).unwrap_or_default()
    }
}

/// Where a session's execution pools live — owned, or shared by every
/// session of a resident service (requests then serialize on the pool,
/// which is the point: one pool, many tenants).
#[derive(Debug)]
enum PoolHandle {
    Owned(Box<PoolState>),
    Shared(Arc<Mutex<PoolState>>),
}

impl PoolHandle {
    fn with<R>(&mut self, f: impl FnOnce(&mut PoolState) -> R) -> R {
        match self {
            PoolHandle::Owned(p) => f(p),
            PoolHandle::Shared(m) => f(&mut lock(m)),
        }
    }
}

/// How [`DistSession::run_program`] orders a multi-clause program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Strict program order, one step at a time — the differential
    /// oracle every other schedule must match bitwise.
    #[default]
    Seq,
    /// Dependence-DAG wave schedule: pairwise-independent steps share a
    /// wave and execute concurrently on the persistent worker pool,
    /// with ordinal-keyed commits for bit-identical results.
    Dag,
}

/// What one [`DistSession::run_program`] call did: per-step execution
/// reports (program order) plus the schedule's shape and cache fate.
#[derive(Debug, Default)]
pub struct ProgramReport {
    /// One [`ExecReport`] per program step, in program order.
    pub steps: Vec<ExecReport>,
    /// Waves executed (equals `steps.len()` under [`ScheduleMode::Seq`]).
    pub waves: usize,
    /// Dependence edges in the program DAG (0 under `Seq`).
    pub dag_edges: usize,
    /// Widest wave — peak concurrently-dispatched steps (1 under `Seq`).
    pub dag_width: usize,
    /// Whether the program DAG came from the session's DAG cache.
    pub dag_cache_hits: u64,
    /// Whether the program DAG had to be built this call.
    pub dag_cache_misses: u64,
    /// Candidate decompositions the auto-tuner priced with the
    /// calibrated cost model (0 outside [`DistSession::run_program_tuned`]).
    pub candidates_priced: u64,
    /// Redistribution steps the auto-tuner inserted because a layout
    /// switch was predicted to amortize (0 outside the tuned path).
    pub redistributions_inserted: u64,
    /// Per-clause candidate prices served from the session's tune
    /// cache instead of being re-priced (0 outside the tuned path).
    pub tune_cache_hits: u64,
    /// Cache entries (any tier) evicted by budget pressure during this
    /// call — LRU retirement, not fingerprint invalidation.
    pub evictions: u64,
}

/// Auto-tuner configuration for [`DistSession::run_program_tuned`].
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// Maximum candidates priced with the calibrated model (the
    /// `--tune-budget`; the incumbent assignment is always priced).
    pub budget: usize,
    /// Warm steps profiled (traced) before tuning; clamped to the step
    /// count. The first profiled step is cold (plans build); only warm
    /// profiles feed calibration when more than one step runs.
    pub profile_steps: u64,
    /// Re-profile and re-tune every `N` steps (the `--retune-every`
    /// flag): the timestep loop is cut into rounds of at most `N`
    /// steps, each starting with a fresh profile→calibrate→price pass,
    /// so a very long loop adapts to drift (cache effects, host load,
    /// layout changes a previous round made). `None` tunes once for
    /// the whole loop — the classic behavior.
    pub retune_every: Option<u64>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            budget: 16,
            profile_steps: 2,
            retune_every: None,
        }
    }
}

/// What one auto-tuned program run decided and why.
#[derive(Debug, Clone, Default)]
pub struct TuneReport {
    /// Candidate assignments priced with the calibrated model (summed
    /// over every retune round).
    pub candidates_priced: u64,
    /// Per-clause prices served from the tune cache.
    pub tune_cache_hits: u64,
    /// Redistribution steps inserted (arrays whose layout switched).
    pub redistributions_inserted: u64,
    /// Tuning rounds executed (1 unless [`TuneOptions::retune_every`]
    /// cut the loop).
    pub rounds: u64,
    /// Human description of the chosen assignment (last round's).
    pub chosen: String,
    /// Whether any round switched away from its incumbent layout.
    pub switched: bool,
    /// Whether the model constants were fit from measured trace
    /// timings (`false`: degenerate profile, era-default ratios used).
    pub calibrated: bool,
    /// Predicted per-step critical path of the chosen assignment (ns).
    pub predicted_step_ns: f64,
    /// Predicted per-step critical path of the incumbent (ns).
    pub baseline_step_ns: f64,
    /// Predicted per-step critical path of the worst priced candidate (ns).
    pub worst_step_ns: f64,
    /// Predicted cost of the inserted redistributions (ns; 0 if none).
    pub switch_cost_ns: f64,
    /// Measured wall-clock of the last profiled step (ns).
    pub measured_step_ns: f64,
    /// |predicted − measured| / measured for the incumbent on the last
    /// profiled step — how honest the calibrated model is about the
    /// layout it actually observed.
    pub model_error: f64,
}

/// Persistent distributed state for a whole program.
#[derive(Debug)]
pub struct DistSession {
    arrays: BTreeMap<String, DistArray>,
    decomps: DecompMap,
    opts: DistOptions,
    caches: CacheHandle,
    pools: PoolHandle,
}

impl DistSession {
    /// Scatter every array of `env` according to `decomps`.
    /// Arrays without a decomposition entry are ignored.
    pub fn new(env: &Env, decomps: DecompMap) -> Result<DistSession, MachineError> {
        let mut arrays = BTreeMap::new();
        for (name, dec) in &decomps {
            let global = env
                .get(name)
                .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
            if global.bounds() != dec.extent() {
                return Err(MachineError::PlanMismatch(format!(
                    "array `{name}` has bounds {} but decomposition extent {}",
                    global.bounds(),
                    dec.extent()
                )));
            }
            arrays.insert(name.clone(), DistArray::scatter_from(global, dec.clone()));
        }
        Ok(DistSession {
            arrays,
            decomps,
            opts: DistOptions::default(),
            caches: CacheHandle::Owned(Box::default()),
            pools: PoolHandle::Owned(Box::default()),
        })
    }

    /// A serve-mode session: same distributed state as
    /// [`DistSession::new`], but every cache tier and the worker pool
    /// are shared with other sessions, and all cache keys carry the
    /// tenant namespace `ns` (see DESIGN.md §18).
    pub(crate) fn new_shared(
        env: &Env,
        decomps: DecompMap,
        opts: DistOptions,
        caches: Arc<Mutex<SessionCaches>>,
        ns: u64,
        pools: Arc<Mutex<PoolState>>,
    ) -> Result<DistSession, MachineError> {
        let mut s = DistSession::new(env, decomps)?;
        s.opts = opts;
        s.caches = CacheHandle::Shared { caches, ns };
        s.pools = PoolHandle::Shared(pools);
        Ok(s)
    }

    /// Replace the (owned) cache tiers with empty ones under `budget` —
    /// builder form, for sessions expected to sweep many more distinct
    /// clauses or layouts than the default budget holds. No-op on a
    /// shared-cache session (the service owns that budget).
    pub fn with_cache_budget(mut self, budget: CacheBudget) -> DistSession {
        if let CacheHandle::Owned(c) = &mut self.caches {
            **c = SessionCaches::new(budget);
        }
        self
    }

    /// Override the execution options (timeouts, fault injection).
    pub fn with_options(mut self, opts: DistOptions) -> DistSession {
        self.opts = opts;
        self
    }

    /// Replace the execution options in place (e.g. clear a fault plan
    /// after a crashed run). Cached plans stay valid — they depend only
    /// on clauses and decompositions, never on options.
    pub fn set_options(&mut self, opts: DistOptions) {
        self.opts = opts;
    }

    /// The current decomposition of `name`.
    pub fn decomp_of(&self, name: &str) -> Option<&Decomp1> {
        self.decomps.get(name)
    }

    /// Plan and execute one `//` clause against the session state.
    ///
    /// Steady-state: the prepared plan is cached and the execution runs
    /// on the session's persistent worker pool, so calling this in a
    /// timestep loop hits the warm path automatically after the first
    /// iteration. Results are bit-identical to the cold
    /// [`crate::run_distributed`] path.
    pub fn run(&mut self, clause: &Clause) -> Result<ExecReport, MachineError> {
        self.run_cached(clause, &NULL_TRACER)
    }

    /// Like [`DistSession::run`] but with an observability tracer — plan
    /// derivation, every machine phase, and all transport traffic are
    /// recorded through it.
    pub fn run_traced(
        &mut self,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        self.run_cached(clause, tracer)
    }

    /// Look up (or build and cache) the prepared plan for one clause.
    /// Returns the plan, whether it was a cache hit, and how many
    /// entries the insertion evicted under budget pressure.
    fn prepare_cached(
        &mut self,
        clause: &Clause,
    ) -> Result<(Arc<PreparedPlan>, bool, u64), MachineError> {
        let sig = clause_signature(clause);
        let names = clause_arrays(clause);
        let fp = decomp_fingerprint(&self.decomps, names.iter().map(String::as_str));
        if let Some(p) = self
            .caches
            .with(|c, ns| c.plans.get(&(ns, sig, fp)).cloned())
        {
            return Ok((p, true, 0));
        }
        // build OUTSIDE the shared lock: planning is exactly the
        // expensive part the cache exists to amortize, and one tenant's
        // cold miss must not serialize every other tenant's lookups
        let plan = SpmdPlan::build(clause, &self.decomps)
            .map_err(|e| MachineError::PlanMismatch(e.to_string()))?;
        let prepared = Arc::new(prepare_run(plan, clause, &self.decomps)?);
        let bytes = prepared.approx_bytes();
        // distinct fingerprints of one clause coexist (shared tiers see
        // several layouts per tenant at once); a session's own stale
        // entries are retired by redistribute, the only fingerprint
        // churn an owned session can have. LRU pressure bounds the rest.
        let evicted = self.caches.with(|c, ns| {
            let before = c.plans.evictions();
            c.plans.insert((ns, sig, fp), Arc::clone(&prepared), bytes);
            c.plans.evictions() - before
        });
        Ok((prepared, false, evicted))
    }

    /// The cached warm path shared by [`DistSession::run`] and
    /// [`DistSession::run_traced`].
    fn run_cached(
        &mut self,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let (prepared, hit, evicted) = self.prepare_cached(clause)?;
        let DistSession {
            arrays,
            opts,
            pools,
            ..
        } = self;
        let mut report = pools.with(|p| p.run_clause(&prepared, clause, arrays, *opts, tracer))?;
        report.cache_hits = u64::from(hit);
        report.cache_misses = u64::from(!hit);
        report.evictions = evicted;
        Ok(report)
    }

    /// Look up (or build and cache) the dependence DAG for a program.
    /// Returns the DAG, whether it was a cache hit, and eviction count.
    fn dag_cached(&mut self, steps: &[ProgramStep]) -> (Arc<ProgramDag>, bool, u64) {
        let sig = program_signature(steps);
        let names: BTreeSet<String> = steps.iter().flat_map(ProgramStep::arrays).collect();
        let fp = decomp_fingerprint(&self.decomps, names.iter().map(String::as_str));
        if let Some(d) = self
            .caches
            .with(|c, ns| c.dags.get(&(ns, sig, fp)).cloned())
        {
            return (d, true, 0);
        }
        let dag = Arc::new(build_dag(steps, &self.decomps));
        let bytes = (dag.edges.len() + steps.len()) * DAG_ENTRY_BYTES;
        // as with plans: distinct fingerprints of one program coexist,
        // so shared tiers serve several layouts per tenant concurrently
        let evicted = self.caches.with(|c, ns| {
            let before = c.dags.evictions();
            c.dags.insert((ns, sig, fp), Arc::clone(&dag), bytes);
            c.dags.evictions() - before
        });
        (dag, false, evicted)
    }

    /// Execute a whole multi-step program under a [`ScheduleMode`].
    ///
    /// [`ScheduleMode::Seq`] runs the steps in strict program order —
    /// each clause through the cached warm path, each redistribution
    /// through [`DistSession::redistribute`] — and is the differential
    /// oracle. [`ScheduleMode::Dag`] builds (or recalls from the DAG
    /// cache) the program's dependence DAG and executes it wave by
    /// wave: pairwise-independent clauses of one wave are dispatched
    /// together to the persistent in-process pool, which pipelines
    /// clause *k+1*'s sends behind clause *k*'s boundary runs and
    /// commits per-clause writes in ordinal order, so the results are
    /// bit-identical to `Seq`. Redistribution steps always run
    /// host-side, sequentially within their wave; socket-backend
    /// sessions ([`TransportKind::Uds`]/`Tcp`) execute wave members
    /// sequentially too (the wave fan-out needs the shared-memory
    /// pool), preserving the schedule's events and semantics.
    ///
    /// With an enabled tracer the host records a deterministic
    /// `dag_ready` event per wave member at wave entry, `clause_begin`
    /// when a step is dispatched, and `clause_end` when its writes have
    /// committed — [`crate::obs::replay_check_dag`] re-validates that
    /// ordering against the DAG.
    pub fn run_program(
        &mut self,
        steps: &[ProgramStep],
        schedule: ScheduleMode,
        tracer: &dyn Tracer,
    ) -> Result<ProgramReport, MachineError> {
        match schedule {
            ScheduleMode::Seq => self.run_program_seq(steps, tracer),
            ScheduleMode::Dag => self.run_program_dag(steps, tracer),
        }
    }

    fn run_program_seq(
        &mut self,
        steps: &[ProgramStep],
        tracer: &dyn Tracer,
    ) -> Result<ProgramReport, MachineError> {
        let trace_on = tracer.enabled();
        let mut reports = Vec::with_capacity(steps.len());
        let mut evictions = 0;
        for (s, step) in steps.iter().enumerate() {
            if trace_on {
                tracer.record(HOST, EventKind::DagReady { step: s });
                tracer.record(HOST, EventKind::ClauseBegin { step: s });
            }
            let report = match step {
                ProgramStep::Clause(c) => self.run_cached(c, tracer)?,
                ProgramStep::Redistribute { array, to } => {
                    self.redistribute_traced(array, to.clone(), tracer)?
                }
            };
            if trace_on {
                tracer.record(HOST, EventKind::ClauseEnd { step: s });
            }
            evictions += report.evictions;
            reports.push(report);
        }
        Ok(ProgramReport {
            waves: steps.len(),
            dag_width: 1,
            steps: reports,
            evictions,
            ..ProgramReport::default()
        })
    }

    fn run_program_dag(
        &mut self,
        steps: &[ProgramStep],
        tracer: &dyn Tracer,
    ) -> Result<ProgramReport, MachineError> {
        let (dag, dag_hit, mut evictions) = self.dag_cached(steps);
        let trace_on = tracer.enabled();
        let mut reports: Vec<Option<ExecReport>> = (0..steps.len()).map(|_| None).collect();
        for wave in &dag.waves {
            if trace_on {
                for &s in wave {
                    tracer.record(HOST, EventKind::DagReady { step: s });
                }
            }
            // redistributions first: host-side, sequential. A wave is
            // pairwise independent, so no clause of this wave touches a
            // redistributed array — order within the wave is free.
            let mut clause_steps: Vec<(usize, &Clause)> = Vec::new();
            for &s in wave {
                match &steps[s] {
                    ProgramStep::Redistribute { array, to } => {
                        if trace_on {
                            tracer.record(HOST, EventKind::ClauseBegin { step: s });
                        }
                        let r = self.redistribute_traced(array, to.clone(), tracer)?;
                        if trace_on {
                            tracer.record(HOST, EventKind::ClauseEnd { step: s });
                        }
                        reports[s] = Some(r);
                    }
                    ProgramStep::Clause(c) => clause_steps.push((s, c)),
                }
            }
            if clause_steps.is_empty() {
                continue;
            }
            if self.opts.transport != TransportKind::InProc {
                // socket backend: no shared-memory wave fan-out — run
                // the wave's clauses one by one, same events, same
                // ordinal commit order
                for &(s, c) in &clause_steps {
                    if trace_on {
                        tracer.record(HOST, EventKind::ClauseBegin { step: s });
                    }
                    let r = self.run_cached(c, tracer)?;
                    if trace_on {
                        tracer.record(HOST, EventKind::ClauseEnd { step: s });
                    }
                    evictions += r.evictions;
                    reports[s] = Some(r);
                }
                continue;
            }
            // in-process pool: prepare every member (plans are built
            // lazily per wave so they see post-redistribution layouts),
            // then dispatch the whole wave at once
            let mut jobs = Vec::with_capacity(clause_steps.len());
            let mut hits = Vec::with_capacity(clause_steps.len());
            for &(_, c) in &clause_steps {
                let (prepared, hit, ev) = self.prepare_cached(c)?;
                jobs.push(prepared);
                hits.push(hit);
                evictions += ev;
            }
            if trace_on {
                for &(s, _) in &clause_steps {
                    tracer.record(HOST, EventKind::ClauseBegin { step: s });
                }
            }
            let DistSession {
                arrays,
                opts,
                pools,
                ..
            } = self;
            let wave_reports = pools.with(|p| p.run_wave(&jobs, arrays, *opts, tracer))?;
            if trace_on {
                for &(s, _) in &clause_steps {
                    tracer.record(HOST, EventKind::ClauseEnd { step: s });
                }
            }
            for (((s, _), mut r), hit) in clause_steps.iter().zip(wave_reports).zip(hits) {
                r.cache_hits = u64::from(hit);
                r.cache_misses = u64::from(!hit);
                reports[*s] = Some(r);
            }
        }
        let steps_out = reports.into_iter().map(|r| r.unwrap_or_default()).collect();
        Ok(ProgramReport {
            steps: steps_out,
            waves: dag.waves.len(),
            dag_edges: dag.edges.len(),
            dag_width: dag.width(),
            dag_cache_hits: u64::from(dag_hit),
            dag_cache_misses: u64::from(!dag_hit),
            evictions,
            ..ProgramReport::default()
        })
    }

    /// Price one candidate's program cost (sum of per-clause critical
    /// paths) through the session tune cache: a (clause signature,
    /// clause-restricted decomposition fingerprint) pair that was
    /// already priced — by this candidate or an earlier one differing
    /// only in untouched arrays — is served from the cache.
    fn price_candidate(
        &mut self,
        clauses: &[&Clause],
        cand: &TuneCandidate,
        model: &CalibratedModel,
        hits: &mut u64,
    ) -> f64 {
        let mut total = 0.0;
        for (clause, plan) in clauses.iter().zip(&cand.plans) {
            let sig = clause_signature(clause);
            let names = clause_arrays(clause);
            let fp = decomp_fingerprint(&cand.decomps, names.iter().map(String::as_str));
            if let Some(p) = self
                .caches
                .with(|c, ns| c.tunes.get(&(ns, sig, fp)).copied())
            {
                *hits += 1;
                total += p;
                continue;
            }
            let price_ns = model.price_plan(plan, self.opts.mode).total_ns;
            self.caches
                .with(|c, ns| c.tunes.insert((ns, sig, fp), price_ns, TUNE_ENTRY_BYTES));
            total += price_ns;
        }
        total
    }

    /// Execute an `n_steps` timestep loop of `steps` with the
    /// cost-driven decomposition auto-tuner in the loop (DESIGN.md §17):
    ///
    /// 1. **Profile** — the first `profile_steps` iterations run under
    ///    the incumbent decompositions with an internal tracer; their
    ///    counters and measured per-phase wall-clock calibrate the §4
    ///    cost model's constants ([`CalibratedModel::fit`]).
    /// 2. **Search** — the candidate space (Block / Scatter /
    ///    BlockScatter(b) per array, bounded by `budget`) is priced per
    ///    clause from plans alone through the session tune cache; the
    ///    incumbent is always priced for the stay/switch comparison.
    /// 3. **Switch** — if the predicted per-step gain of the argmin
    ///    candidate, amortized over the remaining steps, exceeds the
    ///    predicted cost of redistributing every array whose layout
    ///    changes, the redistributions are inserted (executed
    ///    immediately, mid-program) and the loop continues under the
    ///    new layout.
    ///
    /// With [`TuneOptions::retune_every`] set to `N`, the loop is cut
    /// into rounds of at most `N` steps and the whole
    /// profile→calibrate→price→switch pass reruns at each round
    /// boundary, so very long loops re-adapt mid-flight; gains are
    /// always amortized over *all* steps remaining in the loop, not
    /// just the current round.
    ///
    /// Results are bitwise identical to running the same `n_steps`
    /// loop untuned — redistribution moves values without transforming
    /// them, and every candidate executes bit-identically to the
    /// sequential reference — so the tuner can never trade correctness
    /// for speed. The returned [`ProgramReport`] is the last step's,
    /// with the tuner counters filled in; the [`TuneReport`] records
    /// what the search saw and decided.
    ///
    /// Programs that already contain explicit [`ProgramStep::Redistribute`]
    /// steps are rejected ([`MachineError::PlanMismatch`]): a
    /// mid-program layout change contradicts the tuner's
    /// one-assignment-per-loop candidate model.
    pub fn run_program_tuned(
        &mut self,
        steps: &[ProgramStep],
        n_steps: u64,
        schedule: ScheduleMode,
        topts: TuneOptions,
        tracer: &dyn Tracer,
    ) -> Result<(ProgramReport, TuneReport), MachineError> {
        if n_steps == 0 {
            return Err(MachineError::PlanMismatch(
                "tuned timestep loop needs at least one step".into(),
            ));
        }
        for s in steps {
            if let ProgramStep::Redistribute { array, .. } = s {
                return Err(MachineError::PlanMismatch(format!(
                    "cannot tune a program with an explicit redistribution (array `{array}`)"
                )));
            }
        }
        let mut tune = TuneReport::default();
        let mut hits = 0u64;
        let mut last_report = None;
        let mut remaining_total = n_steps;
        while remaining_total > 0 {
            let round = match topts.retune_every {
                Some(r) => r.max(1).min(remaining_total),
                None => remaining_total,
            };
            self.tune_round(
                steps,
                round,
                remaining_total,
                schedule,
                &topts,
                tracer,
                &mut tune,
                &mut hits,
                &mut last_report,
            )?;
            tune.rounds += 1;
            remaining_total -= round;
        }
        let mut report = match last_report {
            Some(r) => r,
            None => self.run_program(steps, schedule, tracer)?,
        };
        report.candidates_priced = tune.candidates_priced;
        report.redistributions_inserted = tune.redistributions_inserted;
        report.tune_cache_hits = hits;
        tune.tune_cache_hits = hits;
        Ok((report, tune))
    }

    /// One profile→calibrate→price→switch→run round of the tuned loop:
    /// executes `round` steps total, amortizing any layout switch over
    /// `remaining_total` (the steps left in the *whole* loop, later
    /// rounds included — a switch pays off across round boundaries).
    #[allow(clippy::too_many_arguments)]
    fn tune_round(
        &mut self,
        steps: &[ProgramStep],
        round: u64,
        remaining_total: u64,
        schedule: ScheduleMode,
        topts: &TuneOptions,
        tracer: &dyn Tracer,
        tune: &mut TuneReport,
        hits: &mut u64,
        last_report: &mut Option<ProgramReport>,
    ) -> Result<(), MachineError> {
        let clauses: Vec<&Clause> = steps
            .iter()
            .filter_map(|s| match s {
                ProgramStep::Clause(c) => Some(c),
                ProgramStep::Redistribute { .. } => None,
            })
            .collect();

        // 1. profile: run the leading steps traced, collect one
        // calibration sample per step. The first step is cold (plans
        // build, pools spawn) — when more than one profile step runs,
        // only the warm ones feed the fit.
        let profile = topts.profile_steps.clamp(1, round);
        let mut samples = Vec::new();
        let mut measured_ns = 0.0;
        for _ in 0..profile {
            let t = CollectingTracer::new();
            let t0 = std::time::Instant::now();
            let report = self.run_program(steps, schedule, &t)?;
            measured_ns = t0.elapsed().as_nanos() as f64;
            // timings come from the step's one trace log; counters are
            // accumulated over the per-clause reports
            let mut sample = CalibrationSample::of(&ExecReport::default(), &t.finish());
            for er in &report.steps {
                let tot = er.total();
                sample.iterations += tot.iterations;
                sample.packets += tot.packets_sent;
                sample.bytes += tot.bytes_sent;
                sample.recv_elems += tot.msgs_received;
            }
            samples.push(sample);
            *last_report = Some(report);
        }
        let warm_samples: &[CalibrationSample] = if samples.len() > 1 {
            &samples[1..]
        } else {
            &samples[..]
        };
        let model = match CalibratedModel::fit(warm_samples) {
            Some(m) => {
                tune.calibrated = true;
                m
            }
            None => CalibratedModel::default(),
        };
        tune.measured_step_ns = measured_ns;

        // 2. search: enumerate and price the candidate space
        let owned_clauses: Vec<Clause> = clauses.iter().map(|c| (*c).clone()).collect();
        let names = vcal_spmd::program_arrays(&owned_clauses);
        let mut extents = BTreeMap::new();
        for name in &names {
            let dec = self
                .decomps
                .get(name)
                .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
            extents.insert(name.clone(), dec.extent());
        }
        let pmax = extents
            .keys()
            .next()
            .and_then(|n| self.decomps.get(n))
            .map(Decomp1::pmax)
            .unwrap_or(1);
        let sopts = TuneSpaceOptions {
            budget: topts.budget.max(1),
            ..TuneSpaceOptions::default()
        };
        let space = enumerate_candidates(&owned_clauses, &extents, pmax, &sopts)
            .map_err(MachineError::PlanMismatch)?;

        // the incumbent must participate even if the budget (or an
        // out-of-family layout) excluded it
        let incumbent_dm: DecompMap = names
            .iter()
            .map(|n| (n.clone(), self.decomps[n].clone()))
            .collect();
        let incumbent_fp =
            decomp_fingerprint(&incumbent_dm, incumbent_dm.keys().map(String::as_str));
        let mut candidates = space.candidates;
        if !candidates.iter().any(|c| c.fingerprint == incumbent_fp) {
            let inc = candidate_for_assignment(&owned_clauses, incumbent_dm.clone(), &sopts)
                .ok_or_else(|| {
                    MachineError::PlanMismatch(
                        "incumbent decomposition has no plan — cannot tune".into(),
                    )
                })?;
            candidates.push(inc);
        }

        let mut best: Option<(f64, usize)> = None;
        let mut worst = 0.0f64;
        let mut baseline = 0.0f64;
        for (k, cand) in candidates.iter().enumerate() {
            let price = self.price_candidate(&clauses, cand, &model, hits);
            tune.candidates_priced += 1;
            if cand.fingerprint == incumbent_fp {
                baseline = price;
            }
            worst = worst.max(price);
            // strict total order on (price, fingerprint): byte-stable
            // argmin even under exact cost ties
            let better = match best {
                None => true,
                Some((bp, bk)) => (price, cand.fingerprint) < (bp, candidates[bk].fingerprint),
            };
            if better {
                best = Some((price, k));
            }
        }
        let (best_price, best_k) = best.unwrap_or((baseline, 0));
        tune.predicted_step_ns = best_price;
        tune.baseline_step_ns = baseline;
        tune.worst_step_ns = worst;
        if measured_ns > 0.0 {
            tune.model_error = (baseline - measured_ns).abs() / measured_ns;
        }

        // 3. switch if the gain, amortized over every step left in the
        // whole loop, beats the redistribution bill
        let horizon = remaining_total - profile;
        let chosen = &candidates[best_k];
        let mut redists: Vec<(String, Decomp1)> = Vec::new();
        let mut switch_cost = 0.0;
        if chosen.fingerprint != incumbent_fp {
            for (name, to) in &chosen.decomps {
                let from = &self.decomps[name];
                if from == to {
                    continue;
                }
                if from.is_replicated() || to.is_replicated() {
                    // no redistribution plan exists out of (or into) a
                    // replicated image — the switch is infeasible, keep
                    // the incumbent
                    redists.clear();
                    break;
                }
                switch_cost += model.price_redist(&RedistPlan::build(from, to));
                redists.push((name.clone(), to.clone()));
            }
        }
        let gain = (baseline - best_price) * horizon as f64;
        let switch = !redists.is_empty() && gain > switch_cost;
        tune.chosen = describe_assignment(if switch {
            &chosen.decomps
        } else {
            &incumbent_dm
        });
        tune.switched |= switch;
        if switch {
            tune.switch_cost_ns += switch_cost;
            for (name, to) in redists {
                self.redistribute_traced(&name, to, tracer)?;
                tune.redistributions_inserted += 1;
            }
        } else {
            tune.predicted_step_ns = baseline;
        }

        // run the round's remaining steps under the (possibly new) layout
        for _ in 0..(round - profile) {
            *last_report = Some(self.run_program(steps, schedule, tracer)?);
        }
        Ok(())
    }

    /// OS process ids of the live worker processes, in node order —
    /// empty until a socket-backend run has spawned the pool. Exists so
    /// supervision tests can kill a specific worker mid-run.
    pub fn worker_pids(&mut self) -> Vec<u32> {
        self.pools.with(|p| p.pids())
    }

    /// Execute a prebuilt plan (reuse across sweeps).
    pub fn run_plan(
        &mut self,
        plan: &SpmdPlan,
        clause: &Clause,
    ) -> Result<ExecReport, MachineError> {
        run_distributed(plan, clause, &mut self.arrays, self.opts)
    }

    /// Like [`DistSession::run_plan`] but with an observability tracer.
    pub fn run_plan_traced(
        &mut self,
        plan: &SpmdPlan,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        run_distributed_traced(plan, clause, &mut self.arrays, self.opts, tracer)
    }

    /// Build a plan once for repeated execution.
    pub fn plan(&self, clause: &Clause) -> Result<SpmdPlan, MachineError> {
        SpmdPlan::build(clause, &self.decomps)
            .map_err(|e| MachineError::PlanMismatch(e.to_string()))
    }

    /// Dynamically redistribute `name` to a new layout (Section 5
    /// extension), updating the session's decomposition map.
    pub fn redistribute(&mut self, name: &str, to: Decomp1) -> Result<ExecReport, MachineError> {
        let current = self
            .arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))?;
        let plan = RedistPlan::build(current.decomp(), &to);
        // redistribution inherits the session's fault/retry options
        let (new_array, report) = run_redistribution_opts(&plan, current, self.opts)?;
        self.arrays.insert(name.to_string(), new_array);
        self.decomps.insert(name.to_string(), to);
        self.retire_plans();
        Ok(report)
    }

    /// Like [`DistSession::redistribute`] but with an observability tracer.
    pub fn redistribute_traced(
        &mut self,
        name: &str,
        to: Decomp1,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let current = self
            .arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))?;
        let plan = RedistPlan::build(current.decomp(), &to);
        let (new_array, report) = run_redistribution_traced(&plan, current, self.opts, tracer)?;
        self.arrays.insert(name.to_string(), new_array);
        self.decomps.insert(name.to_string(), to);
        self.retire_plans();
        Ok(report)
    }

    /// The decomposition map changed: every cached plan of *this
    /// session's namespace* whose fingerprint covers the moved array is
    /// stale. Retire the whole namespace (cheap, safe); other tenants'
    /// entries in a shared tier are untouched.
    fn retire_plans(&mut self) {
        self.caches.with(|c, ns| c.plans.retain(|k| k.0 != ns));
    }

    /// Gather one array back to a global image.
    pub fn gather(&self, name: &str) -> Result<Array, MachineError> {
        self.arrays
            .get(name)
            .map(DistArray::gather)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))
    }

    /// Gather the whole state back into an [`Env`].
    pub fn gather_all(&self) -> Env {
        let mut env = Env::new();
        for (name, da) in &self.arrays {
            env.insert(name.clone(), da.gather());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    #[test]
    fn session_sweeps_match_reference() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 64i64;
        let sweep = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        };
        let back = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() == 10 {
                    5.0
                } else {
                    0.0
                }
            }),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));

        let mut reference = env.clone();
        for _ in 0..4 {
            reference.exec_clause(&sweep);
            reference.exec_clause(&back);
        }

        let mut dm = DecompMap::new();
        dm.insert("U".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("V".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        let mut session = DistSession::new(&env, dm).unwrap();
        let sweep_plan = session.plan(&sweep).unwrap();
        let back_plan = session.plan(&back).unwrap();
        for _ in 0..4 {
            session.run_plan(&sweep_plan, &sweep).unwrap();
            session.run_plan(&back_plan, &back).unwrap();
        }
        assert_eq!(
            session
                .gather("U")
                .unwrap()
                .max_abs_diff(reference.get("U").unwrap()),
            0.0
        );
    }

    #[test]
    fn session_redistribution_mid_program() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 48i64;
        let double = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::mul(
                Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
                Expr::Lit(2.0),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );

        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        let mut session = DistSession::new(&env, dm).unwrap();
        session.run(&double).unwrap();
        // switch layout mid-program
        let report = session
            .redistribute("A", Decomp1::scatter(4, Bounds::range(0, n - 1)))
            .unwrap();
        assert!(report.total().msgs_sent > 0);
        assert_eq!(
            session.decomp_of("A").unwrap(),
            &Decomp1::scatter(4, Bounds::range(0, n - 1))
        );
        session.run(&double).unwrap();
        let got = session.gather("A").unwrap();
        for i in 0..n {
            assert_eq!(got.get(&vcal_core::Ix::d1(i)), (i * 4) as f64);
        }
    }

    #[test]
    fn dag_schedule_matches_seq_oracle() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 40i64;
        // A and B are independent (wave 0 together); C reads both (wave 1)
        let write = |lhs: &str, rhs: Expr| Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1(lhs, Fn1::identity()),
            rhs,
        };
        let steps = vec![
            ProgramStep::Clause(write(
                "A",
                Expr::add(Expr::Ref(ArrayRef::d1("A", Fn1::shift(-1))), Expr::Lit(1.0)),
            )),
            ProgramStep::Clause(write(
                "B",
                Expr::mul(
                    Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
                    Expr::Lit(2.0),
                ),
            )),
            ProgramStep::Clause(write(
                "C",
                Expr::add(
                    Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
                    Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
                ),
            )),
        ];
        let mut env = Env::new();
        for name in ["A", "B", "C"] {
            env.insert(
                name,
                Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
            );
        }
        let mut dm = DecompMap::new();
        for name in ["A", "B", "C"] {
            dm.insert(name.into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        }
        let mut seq = DistSession::new(&env, dm.clone()).unwrap();
        let rs = seq
            .run_program(&steps, ScheduleMode::Seq, &NULL_TRACER)
            .unwrap();
        assert_eq!(rs.waves, 3);

        let mut dag = DistSession::new(&env, dm).unwrap();
        let rd = dag
            .run_program(&steps, ScheduleMode::Dag, &NULL_TRACER)
            .unwrap();
        assert_eq!(rd.waves, 2, "A and B share a wave");
        assert_eq!(rd.dag_width, 2);
        assert_eq!(rd.dag_cache_misses, 1);
        for name in ["A", "B", "C"] {
            assert_eq!(
                dag.gather(name)
                    .unwrap()
                    .max_abs_diff(&seq.gather(name).unwrap()),
                0.0,
                "array {name} diverged"
            );
        }
        // warm rerun hits the DAG cache
        let rw = dag
            .run_program(&steps, ScheduleMode::Dag, &NULL_TRACER)
            .unwrap();
        assert_eq!(rw.dag_cache_hits, 1);
        assert_eq!(rw.steps[0].cache_hits, 1, "clause plans warm too");
    }

    #[test]
    fn bounds_mismatch_rejected() {
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, 9)));
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(2, Bounds::range(0, 15)));
        assert!(matches!(
            DistSession::new(&env, dm),
            Err(MachineError::PlanMismatch(_))
        ));
    }

    /// A 1-entry plan-cache budget forces an eviction when a second
    /// distinct clause arrives, and the eviction surfaces on the report
    /// — while results stay bit-identical to the unbounded session.
    #[test]
    fn bounded_plan_cache_evicts_and_reports() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 32i64;
        let write = |lhs: &str, delta: f64| Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1(lhs, Fn1::identity()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1(lhs, Fn1::identity())),
                Expr::Lit(delta),
            ),
        };
        let (a, b) = (write("A", 1.0), write("B", 2.0));
        let mut env = Env::new();
        for name in ["A", "B"] {
            env.insert(
                name,
                Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
            );
        }
        let mut reference = env.clone();
        for _ in 0..2 {
            reference.exec_clause(&a);
            reference.exec_clause(&b);
        }
        let mut dm = DecompMap::new();
        for name in ["A", "B"] {
            dm.insert(name.into(), Decomp1::block(2, Bounds::range(0, n - 1)));
        }
        let mut session = DistSession::new(&env, dm)
            .unwrap()
            .with_cache_budget(CacheBudget {
                max_entries: 1,
                max_bytes: usize::MAX,
            });
        session.run(&a).unwrap();
        let rb = session.run(&b).unwrap();
        assert_eq!(rb.evictions, 1, "B's insert must evict A's plan");
        // A misses again (it was evicted), and evicts B in turn
        let ra = session.run(&a).unwrap();
        assert_eq!(ra.cache_hits, 0);
        assert_eq!(ra.evictions, 1);
        session.run(&b).unwrap();
        for name in ["A", "B"] {
            assert_eq!(
                session
                    .gather(name)
                    .unwrap()
                    .max_abs_diff(reference.get(name).unwrap()),
                0.0,
                "bounded cache changed results on `{name}`"
            );
        }
    }

    /// `retune_every` cuts the loop into rounds, every round re-profiles,
    /// and the result stays bit-identical to the sequential reference.
    #[test]
    fn retune_rounds_match_reference() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 64i64;
        let sweep = ProgramStep::Clause(Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        });
        let back = ProgramStep::Clause(Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        });
        let steps = vec![sweep, back];
        let n_steps = 10u64;
        let mut env = Env::new();
        for name in ["U", "V"] {
            env.insert(
                name,
                Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64 * 0.5 - 3.0),
            );
        }
        let mut reference = env.clone();
        for _ in 0..n_steps {
            for s in &steps {
                if let ProgramStep::Clause(c) = s {
                    reference.exec_clause(c);
                }
            }
        }
        let mut dm = DecompMap::new();
        for name in ["U", "V"] {
            dm.insert(name.into(), Decomp1::scatter(4, Bounds::range(0, n - 1)));
        }
        let mut session = DistSession::new(&env, dm).unwrap();
        let (report, tune) = session
            .run_program_tuned(
                &steps,
                n_steps,
                ScheduleMode::Seq,
                TuneOptions {
                    retune_every: Some(3),
                    ..TuneOptions::default()
                },
                &NULL_TRACER,
            )
            .unwrap();
        assert_eq!(tune.rounds, 4, "10 steps at retune-every 3 = 4 rounds");
        assert!(
            report.candidates_priced > 0,
            "every round prices candidates"
        );
        for name in ["U", "V"] {
            assert_eq!(
                session
                    .gather(name)
                    .unwrap()
                    .max_abs_diff(reference.get(name).unwrap()),
                0.0,
                "retuned loop diverged on `{name}`"
            );
        }
    }
}
