//! A distributed-memory *session*: persistent distributed arrays plus the
//! plan/execute/redistribute cycle, so multi-clause programs (sweeps,
//! phase changes) read like the original algorithm.
//!
//! [`DistSession::run`] is the steady-state entry point: plans are
//! cached by `(clause signature, decomposition fingerprint)` and
//! executed on a persistent [`DistExecutor`] worker pool, so a clause
//! repeated in a timestep loop pays plan derivation, schedule
//! compilation, and thread spawning exactly once (see DESIGN.md §12).
//! [`DistSession::redistribute`] and any decomposition change invalidate
//! the cache. [`ExecReport::cache_hits`]/[`ExecReport::cache_misses`]
//! report which path a run took.

use crate::darray::DistArray;
use crate::distributed::{run_distributed, run_distributed_traced, DistOptions};
use crate::error::MachineError;
use crate::executor::{prepare_run, DistExecutor, PreparedPlan};
use crate::obs::{Tracer, NULL_TRACER};
use crate::proc::ProcPool;
use crate::redistribute::{run_redistribution_opts, run_redistribution_traced};
use crate::stats::ExecReport;
use crate::transport::TransportKind;
use std::collections::BTreeMap;
use std::sync::Arc;
use vcal_core::{Array, Clause, Env};
use vcal_decomp::{Decomp1, RedistPlan};
use vcal_spmd::{clause_arrays, clause_signature, decomp_fingerprint, DecompMap, SpmdPlan};

/// One cached prepared plan, keyed by clause signature + decomposition
/// fingerprint. The signature identifies *which* clause; the
/// fingerprint covers the decompositions of exactly the arrays that
/// clause touches, so redistributing an unrelated array does not evict.
#[derive(Debug)]
struct CacheEntry {
    sig: u64,
    fp: u64,
    prepared: Arc<PreparedPlan>,
}

/// Persistent distributed state for a whole program.
#[derive(Debug)]
pub struct DistSession {
    arrays: BTreeMap<String, DistArray>,
    decomps: DecompMap,
    opts: DistOptions,
    cache: Vec<CacheEntry>,
    pool: Option<DistExecutor>,
    /// Worker-process pool, used instead of `pool` when the options
    /// select a socket backend ([`TransportKind::Uds`] / `Tcp`).
    procs: Option<ProcPool>,
}

impl DistSession {
    /// Scatter every array of `env` according to `decomps`.
    /// Arrays without a decomposition entry are ignored.
    pub fn new(env: &Env, decomps: DecompMap) -> Result<DistSession, MachineError> {
        let mut arrays = BTreeMap::new();
        for (name, dec) in &decomps {
            let global = env
                .get(name)
                .ok_or_else(|| MachineError::UnknownArray(name.clone()))?;
            if global.bounds() != dec.extent() {
                return Err(MachineError::PlanMismatch(format!(
                    "array `{name}` has bounds {} but decomposition extent {}",
                    global.bounds(),
                    dec.extent()
                )));
            }
            arrays.insert(name.clone(), DistArray::scatter_from(global, dec.clone()));
        }
        Ok(DistSession {
            arrays,
            decomps,
            opts: DistOptions::default(),
            cache: Vec::new(),
            pool: None,
            procs: None,
        })
    }

    /// Override the execution options (timeouts, fault injection).
    pub fn with_options(mut self, opts: DistOptions) -> DistSession {
        self.opts = opts;
        self
    }

    /// Replace the execution options in place (e.g. clear a fault plan
    /// after a crashed run). Cached plans stay valid — they depend only
    /// on clauses and decompositions, never on options.
    pub fn set_options(&mut self, opts: DistOptions) {
        self.opts = opts;
    }

    /// The current decomposition of `name`.
    pub fn decomp_of(&self, name: &str) -> Option<&Decomp1> {
        self.decomps.get(name)
    }

    /// Plan and execute one `//` clause against the session state.
    ///
    /// Steady-state: the prepared plan is cached and the execution runs
    /// on the session's persistent worker pool, so calling this in a
    /// timestep loop hits the warm path automatically after the first
    /// iteration. Results are bit-identical to the cold
    /// [`crate::run_distributed`] path.
    pub fn run(&mut self, clause: &Clause) -> Result<ExecReport, MachineError> {
        self.run_cached(clause, &NULL_TRACER)
    }

    /// Like [`DistSession::run`] but with an observability tracer — plan
    /// derivation, every machine phase, and all transport traffic are
    /// recorded through it.
    pub fn run_traced(
        &mut self,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        self.run_cached(clause, tracer)
    }

    /// The cached warm path shared by [`DistSession::run`] and
    /// [`DistSession::run_traced`].
    fn run_cached(
        &mut self,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let sig = clause_signature(clause);
        let names = clause_arrays(clause);
        let fp = decomp_fingerprint(&self.decomps, names.iter().map(String::as_str));
        let (prepared, hit) = match self.cache.iter().find(|e| e.sig == sig && e.fp == fp) {
            Some(e) => (Arc::clone(&e.prepared), true),
            None => {
                let plan = SpmdPlan::build(clause, &self.decomps)
                    .map_err(|e| MachineError::PlanMismatch(e.to_string()))?;
                let prepared = Arc::new(prepare_run(plan, clause, &self.decomps)?);
                // one slot per clause: an entry with a stale fingerprint
                // can never hit again (redistribute also clears outright)
                self.cache.retain(|e| e.sig != sig);
                self.cache.push(CacheEntry {
                    sig,
                    fp,
                    prepared: Arc::clone(&prepared),
                });
                (prepared, false)
            }
        };
        let pmax = prepared.plan().pmax;
        if self.opts.transport != TransportKind::InProc {
            // socket backend: real worker processes behind the router;
            // the pool's identity is (backend, pmax, chaos plan)
            let want = pmax.max(0) as usize;
            if self.procs.as_ref().is_some_and(|pp| {
                pp.kind() != self.opts.transport
                    || pp.pmax() != want
                    || pp.chaos() != self.opts.chaos
            }) {
                self.procs = None;
            }
            if self.procs.is_none() {
                self.procs = Some(ProcPool::new(self.opts.transport, want, self.opts.chaos)?);
            }
            let procs = match self.procs.as_mut() {
                Some(pp) => pp,
                None => unreachable!("process pool created above"),
            };
            let mut report = procs.run(&prepared, clause, &mut self.arrays, self.opts, tracer)?;
            report.cache_hits = u64::from(hit);
            report.cache_misses = u64::from(!hit);
            return Ok(report);
        }
        if self
            .pool
            .as_ref()
            .is_some_and(|pool| pool.pmax() != pmax.max(0) as usize)
        {
            self.pool = None;
        }
        let pool = self.pool.get_or_insert_with(|| DistExecutor::new(pmax));
        let mut report = pool.run(&prepared, &mut self.arrays, self.opts, tracer)?;
        report.cache_hits = u64::from(hit);
        report.cache_misses = u64::from(!hit);
        Ok(report)
    }

    /// OS process ids of the live worker processes, in node order —
    /// empty until a socket-backend run has spawned the pool. Exists so
    /// supervision tests can kill a specific worker mid-run.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.procs.as_ref().map(ProcPool::pids).unwrap_or_default()
    }

    /// Execute a prebuilt plan (reuse across sweeps).
    pub fn run_plan(
        &mut self,
        plan: &SpmdPlan,
        clause: &Clause,
    ) -> Result<ExecReport, MachineError> {
        run_distributed(plan, clause, &mut self.arrays, self.opts)
    }

    /// Like [`DistSession::run_plan`] but with an observability tracer.
    pub fn run_plan_traced(
        &mut self,
        plan: &SpmdPlan,
        clause: &Clause,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        run_distributed_traced(plan, clause, &mut self.arrays, self.opts, tracer)
    }

    /// Build a plan once for repeated execution.
    pub fn plan(&self, clause: &Clause) -> Result<SpmdPlan, MachineError> {
        SpmdPlan::build(clause, &self.decomps)
            .map_err(|e| MachineError::PlanMismatch(e.to_string()))
    }

    /// Dynamically redistribute `name` to a new layout (Section 5
    /// extension), updating the session's decomposition map.
    pub fn redistribute(&mut self, name: &str, to: Decomp1) -> Result<ExecReport, MachineError> {
        let current = self
            .arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))?;
        let plan = RedistPlan::build(current.decomp(), &to);
        // redistribution inherits the session's fault/retry options
        let (new_array, report) = run_redistribution_opts(&plan, current, self.opts)?;
        self.arrays.insert(name.to_string(), new_array);
        self.decomps.insert(name.to_string(), to);
        // the decomposition map changed: every cached plan whose
        // fingerprint covers `name` is stale, so drop them all
        self.cache.clear();
        Ok(report)
    }

    /// Like [`DistSession::redistribute`] but with an observability tracer.
    pub fn redistribute_traced(
        &mut self,
        name: &str,
        to: Decomp1,
        tracer: &dyn Tracer,
    ) -> Result<ExecReport, MachineError> {
        let current = self
            .arrays
            .get(name)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))?;
        let plan = RedistPlan::build(current.decomp(), &to);
        let (new_array, report) = run_redistribution_traced(&plan, current, self.opts, tracer)?;
        self.arrays.insert(name.to_string(), new_array);
        self.decomps.insert(name.to_string(), to);
        self.cache.clear();
        Ok(report)
    }

    /// Gather one array back to a global image.
    pub fn gather(&self, name: &str) -> Result<Array, MachineError> {
        self.arrays
            .get(name)
            .map(DistArray::gather)
            .ok_or_else(|| MachineError::UnknownArray(name.to_string()))
    }

    /// Gather the whole state back into an [`Env`].
    pub fn gather_all(&self) -> Env {
        let mut env = Env::new();
        for (name, da) in &self.arrays {
            env.insert(name.clone(), da.gather());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    #[test]
    fn session_sweeps_match_reference() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 64i64;
        let sweep = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::mul(
                Expr::add(
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
                ),
                Expr::Lit(0.5),
            ),
        };
        let back = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        };
        let mut env = Env::new();
        env.insert(
            "U",
            Array::from_fn(Bounds::range(0, n - 1), |i| {
                if i.scalar() == 10 {
                    5.0
                } else {
                    0.0
                }
            }),
        );
        env.insert("V", Array::zeros(Bounds::range(0, n - 1)));

        let mut reference = env.clone();
        for _ in 0..4 {
            reference.exec_clause(&sweep);
            reference.exec_clause(&back);
        }

        let mut dm = DecompMap::new();
        dm.insert("U".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        dm.insert("V".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        let mut session = DistSession::new(&env, dm).unwrap();
        let sweep_plan = session.plan(&sweep).unwrap();
        let back_plan = session.plan(&back).unwrap();
        for _ in 0..4 {
            session.run_plan(&sweep_plan, &sweep).unwrap();
            session.run_plan(&back_plan, &back).unwrap();
        }
        assert_eq!(
            session
                .gather("U")
                .unwrap()
                .max_abs_diff(reference.get("U").unwrap()),
            0.0
        );
    }

    #[test]
    fn session_redistribution_mid_program() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
        let n = 48i64;
        let double = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::mul(
                Expr::Ref(ArrayRef::d1("A", Fn1::identity())),
                Expr::Lit(2.0),
            ),
        };
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, n - 1), |i| i.scalar() as f64),
        );

        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, n - 1)));
        let mut session = DistSession::new(&env, dm).unwrap();
        session.run(&double).unwrap();
        // switch layout mid-program
        let report = session
            .redistribute("A", Decomp1::scatter(4, Bounds::range(0, n - 1)))
            .unwrap();
        assert!(report.total().msgs_sent > 0);
        assert_eq!(
            session.decomp_of("A").unwrap(),
            &Decomp1::scatter(4, Bounds::range(0, n - 1))
        );
        session.run(&double).unwrap();
        let got = session.gather("A").unwrap();
        for i in 0..n {
            assert_eq!(got.get(&vcal_core::Ix::d1(i)), (i * 4) as f64);
        }
    }

    #[test]
    fn bounds_mismatch_rejected() {
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range(0, 9)));
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(2, Bounds::range(0, 15)));
        assert!(matches!(
            DistSession::new(&env, dm),
            Err(MachineError::PlanMismatch(_))
        ));
    }
}
