//! Multi-dimensional SPMD schedules.
//!
//! The paper carries out its derivations in one dimension "for reasons of
//! clarity"; the generalization is per-axis: with data decomposed axis by
//! axis onto a processor grid ([`vcal_decomp::DecompNd`]) and an access
//! map that sends each output axis through a 1-D function of one input
//! axis ([`vcal_core::IndexMap`]), the ownership condition factorizes
//!
//! ```text
//! proc(f(i)) = p   ⇔   ∀axis d:  proc_d(f_d(i[src_d])) = grid(p)[d]
//! ```
//!
//! so the per-processor iteration set is a *Cartesian product* of 1-D
//! schedules, each produced by the Table I optimizer.

use crate::optimizer::{optimize, OptKind};
use crate::schedule::Schedule;
use vcal_core::map::IndexMap;
use vcal_core::{Bounds, Ix};
use vcal_decomp::DecompNd;

/// A per-processor iteration schedule over a d-dimensional loop box:
/// the product of one 1-D schedule per *loop* dimension.
#[derive(Debug, Clone)]
pub struct ScheduleNd {
    /// One schedule per loop dimension, in loop-dimension order.
    pub axes: Vec<Schedule>,
    /// The Table I kind chosen per loop dimension.
    pub kinds: Vec<OptKind>,
}

impl ScheduleNd {
    /// Visit every scheduled point in lexicographic order of the
    /// per-axis schedules.
    pub fn for_each(&self, mut visit: impl FnMut(&Ix)) {
        // materialize each axis once (axes are small relative to the
        // product) then walk the product
        let lists: Vec<Vec<i64>> = self
            .axes
            .iter()
            .map(|s| {
                let mut v = Vec::new();
                s.for_each(|i| v.push(i));
                v
            })
            .collect();
        if lists.iter().any(Vec::is_empty) {
            return;
        }
        let d = lists.len();
        let mut idx = vec![0usize; d];
        let mut coords: Vec<i64> = lists.iter().map(|l| l[0]).collect();
        loop {
            visit(&Ix::new(&coords));
            // odometer
            let mut axis = d;
            loop {
                if axis == 0 {
                    return;
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < lists[axis].len() {
                    coords[axis] = lists[axis][idx[axis]];
                    for a in axis + 1..d {
                        idx[a] = 0;
                        coords[a] = lists[a][0];
                    }
                    break;
                }
            }
        }
    }

    /// Number of scheduled points.
    pub fn count(&self) -> u64 {
        self.axes.iter().map(Schedule::count).product()
    }

    /// Total loop-overhead work: sum of per-axis work times the product
    /// of the other axes' visit counts (each axis' tests repeat once per
    /// combination of outer iterations) — an upper bound that reduces to
    /// the exact product cost for closed forms.
    pub fn work_estimate(&self) -> u64 {
        let counts: Vec<u64> = self.axes.iter().map(Schedule::count).collect();
        let mut total = 0u64;
        for (d, s) in self.axes.iter().enumerate() {
            let outer: u64 = counts[..d].iter().product();
            total += outer.max(1) * s.work_estimate();
        }
        total
    }
}

/// Derive the d-dimensional schedule of
/// `{ i ∈ loop_box | proc(map(i)) = p }` under `dec`.
///
/// Requirements (checked): the map must have one output axis per
/// decomposition axis, and each *loop* dimension must feed at most one
/// output axis (otherwise the ownership condition does not factorize and
/// the caller should fall back to brute force).
pub fn optimize_nd(
    map: &IndexMap,
    dec: &DecompNd,
    loop_box: &Bounds,
    p: i64,
) -> Option<ScheduleNd> {
    if map.d_out() != dec.dims() || map.d_in() != loop_box.dims() {
        return None;
    }
    // each loop dim may drive at most one output axis
    let mut driver_of_loopdim: Vec<Option<usize>> = vec![None; map.d_in()];
    for (out_axis, df) in map.dims().iter().enumerate() {
        if driver_of_loopdim[df.src].replace(out_axis).is_some() {
            return None; // coupled axes: no factorization
        }
    }
    let grid = dec.grid_coords(p);
    let mut axes = vec![Schedule::Empty; map.d_in()];
    let mut kinds = vec![OptKind::EmptyLoop; map.d_in()];
    for (loop_dim, driver) in driver_of_loopdim.iter().enumerate() {
        let (imin, imax) = (loop_box.lo()[loop_dim], loop_box.hi()[loop_dim]);
        match driver {
            Some(out_axis) => {
                let f = &map.dims()[*out_axis].f;
                let d1 = &dec.axes()[*out_axis];
                let opt = optimize(f, d1, imin, imax, grid[*out_axis]);
                axes[loop_dim] = opt.schedule;
                kinds[loop_dim] = opt.kind;
            }
            None => {
                // loop dim not used by the access: every index iterates
                axes[loop_dim] = Schedule::range(imin, imax);
                kinds[loop_dim] = OptKind::EmptyLoop;
            }
        }
    }
    Some(ScheduleNd { axes, kinds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::map::DimFn;
    use vcal_decomp::Decomp1;

    fn grid(n0: i64, n1: i64, p0: i64, p1: i64) -> DecompNd {
        DecompNd::new(vec![
            Decomp1::block(p0, Bounds::range(0, n0 - 1)),
            Decomp1::scatter(p1, Bounds::range(0, n1 - 1)),
        ])
    }

    fn brute(map: &IndexMap, dec: &DecompNd, loop_box: &Bounds, p: i64) -> Vec<Ix> {
        loop_box
            .iter()
            .filter(|i| dec.proc_of(&map.eval(i)) == p)
            .collect()
    }

    #[test]
    fn identity_2d_partition() {
        let dec = grid(12, 10, 2, 2);
        let map = IndexMap::identity(2);
        let lb = Bounds::range2(0, 11, 0, 9);
        let mut total = 0u64;
        for p in 0..dec.pmax() {
            let s = optimize_nd(&map, &dec, &lb, p).unwrap();
            let mut got = Vec::new();
            s.for_each(|i| got.push(*i));
            got.sort();
            let mut want = brute(&map, &dec, &lb, p);
            want.sort();
            assert_eq!(got, want, "p={p}");
            total += s.count();
        }
        assert_eq!(total, 120);
    }

    #[test]
    fn shifted_2d_stencil_access() {
        // A[i-1, 2j+1] under a 2x3 grid
        let dec = DecompNd::new(vec![
            Decomp1::block(2, Bounds::range(-1, 10)),
            Decomp1::block_scatter(2, 3, Bounds::range(0, 25)),
        ]);
        let map = IndexMap::per_dim(vec![Fn1::shift(-1), Fn1::affine(2, 1)]);
        let lb = Bounds::range2(0, 10, 0, 12);
        for p in 0..dec.pmax() {
            let s = optimize_nd(&map, &dec, &lb, p).unwrap();
            let mut got = Vec::new();
            s.for_each(|i| got.push(*i));
            got.sort();
            let mut want = brute(&map, &dec, &lb, p);
            want.sort();
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn transpose_access_factorizes() {
        // A[j, i]: output axis 0 reads loop dim 1 and vice versa —
        // still one driver per loop dim, so it factorizes.
        let dec = grid(8, 8, 2, 2);
        let map = IndexMap::permutation(2, &[1, 0]);
        let lb = Bounds::range2(0, 7, 0, 7);
        for p in 0..dec.pmax() {
            let s = optimize_nd(&map, &dec, &lb, p).unwrap();
            let mut got = Vec::new();
            s.for_each(|i| got.push(*i));
            got.sort();
            let mut want = brute(&map, &dec, &lb, p);
            want.sort();
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn coupled_axes_rejected() {
        // A[i, i]: loop dim 0 drives both output axes — not factorizable
        let dec = grid(8, 8, 2, 2);
        let map = IndexMap::new(
            2,
            vec![
                DimFn {
                    src: 0,
                    f: Fn1::identity(),
                },
                DimFn {
                    src: 0,
                    f: Fn1::identity(),
                },
            ],
        );
        assert!(optimize_nd(&map, &dec, &Bounds::range2(0, 7, 0, 7), 0).is_none());
    }

    #[test]
    fn unused_loop_dim_iterates_fully() {
        // 1-D data indexed by the first loop dim of a 2-D loop: every j
        // iterates on the owner of row i... here out=1 axis, loop 2-D
        let dec = DecompNd::new(vec![Decomp1::block(4, Bounds::range(0, 15))]);
        let map = IndexMap::new(
            2,
            vec![DimFn {
                src: 0,
                f: Fn1::identity(),
            }],
        );
        let lb = Bounds::range2(0, 15, 0, 3);
        for p in 0..4 {
            let s = optimize_nd(&map, &dec, &lb, p).unwrap();
            assert_eq!(s.count(), 4 * 4, "p={p}"); // 4 owned rows x 4 js
        }
    }

    #[test]
    fn empty_axis_empties_product() {
        let dec = grid(12, 10, 2, 2);
        // constant access on axis 0: only the owner's grid row is active
        let map = IndexMap::new(
            2,
            vec![
                DimFn {
                    src: 0,
                    f: Fn1::Const(0),
                },
                DimFn {
                    src: 1,
                    f: Fn1::identity(),
                },
            ],
        );
        let lb = Bounds::range2(0, 5, 0, 9);
        let mut nonempty = 0;
        for p in 0..4 {
            let s = optimize_nd(&map, &dec, &lb, p).unwrap();
            if s.count() > 0 {
                nonempty += 1;
            }
            let want = brute(&map, &dec, &lb, p);
            assert_eq!(s.count() as usize, want.len(), "p={p}");
        }
        assert_eq!(nonempty, 2); // grid row 0, both columns
    }

    #[test]
    fn work_estimate_reasonable() {
        let dec = grid(64, 64, 2, 2);
        let map = IndexMap::identity(2);
        let lb = Bounds::range2(0, 63, 0, 63);
        let s = optimize_nd(&map, &dec, &lb, 0).unwrap();
        assert_eq!(s.count(), 32 * 32);
        assert!(s.work_estimate() >= s.count());
        assert!(s.work_estimate() < 4 * s.count());
    }
}
