//! Compiled (steady-state) schedules — Section 4's amortization made
//! explicit.
//!
//! The paper's run-time cost analysis assumes the closed-form
//! enumerators (`gen_p`, extended Euclid, `f^{-1}` probes) are paid
//! once and the resulting loop *templates* replayed for every timestep.
//! Our executor, however, re-walks [`Schedule::for_each`] on every run:
//! the repeated-block and repeated-scatter shapes call
//! `Fn1::preimage_range` per cycle or probe on *every* execution.
//!
//! [`CompiledSchedule`] materializes that enumeration output exactly
//! once, at plan time, into flat strided run tables ([`IterRun`]) — the
//! same greedy coalescing the communication planner applies to pair
//! sets — plus the receive-side addressing tables the vectorized
//! machine otherwise rebuilds per run (`(slot, i)` →
//! `(source, run, offset)`). A warm execution then iterates plain
//! strided loops and does no closed-form re-derivation at all.
//!
//! The module also provides the plan-cache keys used by the machine's
//! session layer: a [`clause_signature`] and a [`decomp_fingerprint`]
//! (FNV-1a over the canonical debug rendering — stable within a
//! process, which is all a session-lifetime cache needs).

use crate::program::{DecompMap, SpmdPlan};
use crate::schedule::Schedule;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vcal_core::Clause;

/// One strided run of loop iterations: `start + step·t` for
/// `t ∈ [0, count)`. The steady-state analog of
/// [`CommRun`](crate::comm::CommRun), without a slot tag (runs are
/// stored per schedule, not per wire pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterRun {
    /// First loop index.
    pub start: i64,
    /// Stride between consecutive indices (may be negative or zero —
    /// visit *order* is preserved, not sortedness).
    pub step: i64,
    /// Number of indices (≥ 1).
    pub count: i64,
}

impl IterRun {
    /// Visit the indices of the run in order.
    #[inline]
    pub fn for_each(&self, mut visit: impl FnMut(i64)) {
        let mut i = self.start;
        for _ in 0..self.count {
            visit(i);
            i += self.step;
        }
    }

    /// Number of indices in the run.
    pub fn len(&self) -> u64 {
        self.count.max(0) as u64
    }

    /// Whether the run is degenerate.
    pub fn is_empty(&self) -> bool {
        self.count <= 0
    }
}

/// Visit every index of a run table in order.
pub fn for_each_run(runs: &[IterRun], mut visit: impl FnMut(i64)) {
    for r in runs {
        r.for_each(&mut visit);
    }
}

/// Greedily coalesce an index sequence into maximal equal-stride runs,
/// preserving the sequence order exactly (no sorting, no dedup — a
/// schedule's visit order is part of its semantics, and
/// `RepeatedScatter` visits in `t`-major order, not ascending).
fn coalesce_ordered(v: &[i64], out: &mut Vec<IterRun>) {
    let mut k = 0usize;
    while k < v.len() {
        if k + 1 == v.len() {
            out.push(IterRun {
                start: v[k],
                step: 1,
                count: 1,
            });
            break;
        }
        let step = v[k + 1] - v[k];
        let mut j = k + 1;
        while j + 1 < v.len() && v[j + 1] - v[j] == step {
            j += 1;
        }
        out.push(IterRun {
            start: v[k],
            step,
            count: (j - k + 1) as i64,
        });
        k = j + 1;
    }
}

fn flatten_into(s: &Schedule, out: &mut Vec<IterRun>) {
    match s {
        Schedule::Empty => {}
        Schedule::Range { lo, hi } => {
            if lo <= hi {
                out.push(IterRun {
                    start: *lo,
                    step: 1,
                    count: hi - lo + 1,
                });
            }
        }
        Schedule::Strided { start, step, count } => {
            if *count > 0 {
                out.push(IterRun {
                    start: *start,
                    step: *step,
                    count: *count,
                });
            }
        }
        Schedule::Concat(parts) => {
            for p in parts {
                flatten_into(p, out);
            }
        }
        // the shapes that re-derive per visit: enumerate once, coalesce
        other => {
            let mut idx = Vec::new();
            other.for_each(|i| idx.push(i));
            coalesce_ordered(&idx, out);
        }
    }
}

/// Flatten a schedule into strided runs whose concatenated visit order
/// is *identical* to [`Schedule::for_each`]. Arithmetic shapes convert
/// directly; the repeated/guarded shapes pay their enumeration cost
/// here, once, instead of on every execution.
pub fn flatten_schedule(s: &Schedule) -> Vec<IterRun> {
    let mut out = Vec::new();
    flatten_into(s, &mut out);
    out
}

/// The steady-state tables of one processor: every enumeration the
/// executor would otherwise re-derive per run, materialized.
#[derive(Debug, Clone)]
pub struct CompiledNode {
    /// Processor id.
    pub p: i64,
    /// `Modify_p` as flat runs, in schedule visit order.
    pub modify: Vec<IterRun>,
    /// `Modify_p` iteration count (pre-sizes the write buffer).
    pub modify_iters: u64,
    /// `Modify_p` loop-overhead estimate (the `guard_tests` accounting
    /// the cold path charges via `Schedule::work_estimate`).
    pub modify_work: u64,
    /// Per read slot: the reside schedule as flat runs (`None` for
    /// replicated slots, which never enter the send phase).
    pub resides: Vec<Option<Vec<IterRun>>>,
    /// Per read slot: the reside schedule's loop-overhead estimate
    /// (zero for replicated slots).
    pub reside_work: Vec<u64>,
    /// source processor id → ordinal in the recv pair list
    /// (`usize::MAX` when the source sends nothing).
    pub src_ord: Vec<usize>,
    /// source ordinal → processor id (the NACK target).
    pub src_peers: Vec<i64>,
    /// source ordinal → number of planned incoming runs (the staging
    /// shape the receiver pre-sizes).
    pub staging_runs: Vec<usize>,
    /// `(slot, i)` → `(source ordinal, run, offset)` — the vectorized
    /// receive addressing, expanded once from the plan's receive runs.
    pub origin: BTreeMap<(usize, i64), (usize, usize, usize)>,
}

/// A whole plan's enumeration output, materialized for repeated
/// execution. Built once per `(clause, decompositions)`; shared
/// read-only by every warm run.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// Per-processor tables, indexed by processor id.
    pub nodes: Vec<CompiledNode>,
}

impl CompiledSchedule {
    /// Materialize every node's Table I enumeration output and receive
    /// addressing from `plan`.
    pub fn compile(plan: &SpmdPlan) -> CompiledSchedule {
        let pmax = plan.pmax.max(0) as usize;
        let nodes = plan
            .nodes
            .iter()
            .map(|node| {
                let modify = flatten_schedule(&node.modify.schedule);
                let mut resides = Vec::with_capacity(node.resides.len());
                let mut reside_work = Vec::with_capacity(node.resides.len());
                for rp in &node.resides {
                    if rp.replicated {
                        resides.push(None);
                        reside_work.push(0);
                    } else {
                        resides.push(Some(flatten_schedule(&rp.opt.schedule)));
                        reside_work.push(rp.opt.schedule.work_estimate());
                    }
                }
                let mut src_ord = vec![usize::MAX; pmax];
                let mut src_peers = Vec::with_capacity(node.comm.recvs.len());
                let mut staging_runs = Vec::with_capacity(node.comm.recvs.len());
                let mut origin = BTreeMap::new();
                for (ord, pc) in node.comm.recvs.iter().enumerate() {
                    if let Some(slot) = src_ord.get_mut(pc.peer as usize) {
                        *slot = ord;
                    }
                    src_peers.push(pc.peer);
                    staging_runs.push(pc.runs.len());
                    for (run_ord, run) in pc.runs.iter().enumerate() {
                        let mut off = 0usize;
                        run.for_each(|i| {
                            origin.insert((run.slot, i), (ord, run_ord, off));
                            off += 1;
                        });
                    }
                }
                CompiledNode {
                    p: node.p,
                    modify,
                    modify_iters: node.modify.schedule.count(),
                    modify_work: node.modify.schedule.work_estimate(),
                    resides,
                    reside_work,
                    src_ord,
                    src_peers,
                    staging_runs,
                    origin,
                }
            })
            .collect();
        CompiledSchedule { nodes }
    }

    /// Total iterations across all nodes (sanity/report helper).
    pub fn total_iters(&self) -> u64 {
        self.nodes.iter().map(|n| n.modify_iters).sum()
    }
}

/// FNV-1a over a formatted rendering, via `fmt::Write` — no
/// intermediate `String`.
struct FnvWriter(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// A session-lifetime signature of a clause: FNV-1a over its canonical
/// debug rendering (every field of the clause participates — iteration
/// set, ordering, guard, lhs access, rhs expression). Two clauses with
/// equal signatures plan identically for the same decompositions.
pub fn clause_signature(clause: &Clause) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    let _ = write!(w, "{clause:?}");
    w.0
}

/// The arrays a clause touches (lhs first, then reads in reference
/// order, deduplicated) — the set whose decompositions a plan depends
/// on, and therefore the set a decomposition fingerprint must cover.
pub fn clause_arrays(clause: &Clause) -> Vec<String> {
    let mut names = vec![clause.lhs.array.clone()];
    for r in clause.read_refs() {
        if !names.contains(&r.array) {
            names.push(r.array.clone());
        }
    }
    names
}

/// Fingerprint the decompositions of `names` (order-insensitive: names
/// are hashed sorted). A missing entry hashes as absent, so adding the
/// decomposition later changes the fingerprint too. Redistribution or
/// replacement of any covered array's decomposition changes the result
/// — the plan-cache invalidation rule.
pub fn decomp_fingerprint<'a>(
    decomps: &DecompMap,
    names: impl IntoIterator<Item = &'a str>,
) -> u64 {
    let mut sorted: Vec<&str> = names.into_iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut w = FnvWriter(FNV_OFFSET);
    for name in sorted {
        let _ = match decomps.get(name) {
            Some(dec) => write!(w, "{name}={dec:?};"),
            None => write!(w, "{name}=<none>;"),
        };
    }
    w.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    fn copy_clause(imin: i64, imax: i64, f: Fn1, g: Fn1) -> Clause {
        Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::Ref(ArrayRef::d1("B", g)),
        }
    }

    fn decomps(a: Decomp1, b: Decomp1) -> DecompMap {
        let mut m = DecompMap::new();
        m.insert("A".into(), a);
        m.insert("B".into(), b);
        m
    }

    fn visit_order(runs: &[IterRun]) -> Vec<i64> {
        let mut v = Vec::new();
        for_each_run(runs, |i| v.push(i));
        v
    }

    #[test]
    fn flatten_preserves_visit_order_across_table1_shapes() {
        let n = 96i64;
        let e = Bounds::range(0, n - 1);
        let decs = [
            Decomp1::block(4, e),
            Decomp1::scatter(4, e),
            Decomp1::block_scatter(3, 4, e),
        ];
        let fns = [
            (Fn1::identity(), 0, n - 1),
            (Fn1::shift(5), 0, n - 6),
            (Fn1::affine(3, 1), 0, (n - 2) / 3),
            (Fn1::rotate(7, n), 0, n - 1),
        ];
        for da in &decs {
            for db in &decs {
                for (f, flo, fhi) in &fns {
                    for (g, glo, ghi) in &fns {
                        let (lo, hi) = ((*flo).max(*glo), (*fhi).min(*ghi));
                        if lo > hi {
                            continue;
                        }
                        let clause = copy_clause(lo, hi, f.clone(), g.clone());
                        let dm = decomps(da.clone(), db.clone());
                        for naive in [false, true] {
                            let plan = if naive {
                                SpmdPlan::build_naive(&clause, &dm).unwrap()
                            } else {
                                SpmdPlan::build(&clause, &dm).unwrap()
                            };
                            let compiled = CompiledSchedule::compile(&plan);
                            for (node, cn) in plan.nodes.iter().zip(&compiled.nodes) {
                                let mut want = Vec::new();
                                node.modify.schedule.for_each(|i| want.push(i));
                                assert_eq!(
                                    visit_order(&cn.modify),
                                    want,
                                    "modify p={} naive={naive}",
                                    node.p
                                );
                                assert_eq!(cn.modify_iters, want.len() as u64);
                                for (slot, rp) in node.resides.iter().enumerate() {
                                    if rp.replicated {
                                        assert!(cn.resides[slot].is_none());
                                        continue;
                                    }
                                    let mut want = Vec::new();
                                    rp.opt.schedule.for_each(|i| want.push(i));
                                    let got = cn.resides[slot]
                                        .as_deref()
                                        .expect("non-replicated slot flattened");
                                    assert_eq!(
                                        visit_order(got),
                                        want,
                                        "reside p={} slot={slot} naive={naive}",
                                        node.p
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn origin_tables_match_runtime_expansion() {
        let n = 1024i64;
        let clause = copy_clause(0, (n - 2) / 2, Fn1::affine(2, 1), Fn1::affine(3, 2));
        let dm = decomps(
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, 3 * n)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let compiled = CompiledSchedule::compile(&plan);
        for (node, cn) in plan.nodes.iter().zip(&compiled.nodes) {
            // exactly the expansion the vectorized receiver performs
            let mut want = BTreeMap::new();
            for (ord, pc) in node.comm.recvs.iter().enumerate() {
                assert_eq!(cn.src_ord[pc.peer as usize], ord);
                assert_eq!(cn.src_peers[ord], pc.peer);
                assert_eq!(cn.staging_runs[ord], pc.runs.len());
                for (run_ord, run) in pc.runs.iter().enumerate() {
                    let mut off = 0usize;
                    run.for_each(|i| {
                        want.insert((run.slot, i), (ord, run_ord, off));
                        off += 1;
                    });
                }
            }
            assert_eq!(cn.origin, want, "p={}", node.p);
        }
    }

    #[test]
    fn coalesce_keeps_t_major_order() {
        // a deliberately non-monotone sequence must round-trip exactly
        let v = [0, 4, 8, 1, 5, 9, 2, 6, 10, 40];
        let mut runs = Vec::new();
        coalesce_ordered(&v, &mut runs);
        assert_eq!(visit_order(&runs), v);
    }

    #[test]
    fn signatures_separate_clauses_and_fingerprints_track_decomps() {
        let c1 = copy_clause(0, 63, Fn1::identity(), Fn1::identity());
        let c2 = copy_clause(0, 63, Fn1::identity(), Fn1::shift(1));
        assert_ne!(clause_signature(&c1), clause_signature(&c2));
        assert_eq!(clause_signature(&c1), clause_signature(&c1.clone()));
        assert_eq!(clause_arrays(&c1), vec!["A".to_string(), "B".to_string()]);

        let e = Bounds::range(0, 63);
        let dm1 = decomps(Decomp1::block(4, e), Decomp1::block(4, e));
        let dm2 = decomps(Decomp1::scatter(4, e), Decomp1::block(4, e));
        let names = ["A", "B"];
        assert_ne!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm2, names)
        );
        // an uncovered array's decomposition does not perturb the print
        let mut dm3 = dm1.clone();
        dm3.insert("Z".into(), Decomp1::scatter(4, e));
        assert_eq!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm3, names)
        );
        // ... but a covered one does, including appearing at all
        assert_ne!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm1, ["A"])
        );
    }
}
