//! Compiled (steady-state) schedules — Section 4's amortization made
//! explicit.
//!
//! The paper's run-time cost analysis assumes the closed-form
//! enumerators (`gen_p`, extended Euclid, `f^{-1}` probes) are paid
//! once and the resulting loop *templates* replayed for every timestep.
//! Our executor, however, re-walks [`Schedule::for_each`] on every run:
//! the repeated-block and repeated-scatter shapes call
//! `Fn1::preimage_range` per cycle or probe on *every* execution.
//!
//! [`CompiledSchedule`] materializes that enumeration output exactly
//! once, at plan time, into flat strided run tables ([`IterRun`]) — the
//! same greedy coalescing the communication planner applies to pair
//! sets — plus the receive-side addressing tables the vectorized
//! machine otherwise rebuilds per run (`(slot, i)` →
//! `(source, run, offset)`). A warm execution then iterates plain
//! strided loops and does no closed-form re-derivation at all.
//!
//! The module also provides the plan-cache keys used by the machine's
//! session layer: a [`clause_signature`] and a [`decomp_fingerprint`]
//! (FNV-1a over the canonical debug rendering — stable within a
//! process, which is all a session-lifetime cache needs).

use crate::kernel::{CompiledKernel, FusedShape};
use crate::program::{DecompMap, SpmdPlan};
use crate::schedule::Schedule;
use crate::simd::{SimdCensus, SimdPolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use vcal_core::{Clause, Guard};

/// One strided run of loop iterations: `start + step·t` for
/// `t ∈ [0, count)`. The steady-state analog of
/// [`CommRun`](crate::comm::CommRun), without a slot tag (runs are
/// stored per schedule, not per wire pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterRun {
    /// First loop index.
    pub start: i64,
    /// Stride between consecutive indices (may be negative or zero —
    /// visit *order* is preserved, not sortedness).
    pub step: i64,
    /// Number of indices (≥ 1).
    pub count: i64,
}

impl IterRun {
    /// Visit the indices of the run in order.
    #[inline]
    pub fn for_each(&self, mut visit: impl FnMut(i64)) {
        let mut i = self.start;
        for _ in 0..self.count {
            visit(i);
            i += self.step;
        }
    }

    /// Number of indices in the run.
    pub fn len(&self) -> u64 {
        self.count.max(0) as u64
    }

    /// Whether the run is degenerate.
    pub fn is_empty(&self) -> bool {
        self.count <= 0
    }
}

/// Visit every index of a run table in order.
pub fn for_each_run(runs: &[IterRun], mut visit: impl FnMut(i64)) {
    for r in runs {
        r.for_each(&mut visit);
    }
}

/// Greedily coalesce an index sequence into maximal equal-stride runs,
/// preserving the sequence order exactly (no sorting, no dedup — a
/// schedule's visit order is part of its semantics, and
/// `RepeatedScatter` visits in `t`-major order, not ascending).
fn coalesce_ordered(v: &[i64], out: &mut Vec<IterRun>) {
    let mut k = 0usize;
    while k < v.len() {
        if k + 1 == v.len() {
            out.push(IterRun {
                start: v[k],
                step: 1,
                count: 1,
            });
            break;
        }
        let step = v[k + 1] - v[k];
        let mut j = k + 1;
        while j + 1 < v.len() && v[j + 1] - v[j] == step {
            j += 1;
        }
        out.push(IterRun {
            start: v[k],
            step,
            count: (j - k + 1) as i64,
        });
        k = j + 1;
    }
}

fn flatten_into(s: &Schedule, out: &mut Vec<IterRun>) {
    match s {
        Schedule::Empty => {}
        Schedule::Range { lo, hi } => {
            if lo <= hi {
                out.push(IterRun {
                    start: *lo,
                    step: 1,
                    count: hi - lo + 1,
                });
            }
        }
        Schedule::Strided { start, step, count } => {
            if *count > 0 {
                out.push(IterRun {
                    start: *start,
                    step: *step,
                    count: *count,
                });
            }
        }
        Schedule::Concat(parts) => {
            for p in parts {
                flatten_into(p, out);
            }
        }
        // the shapes that re-derive per visit: enumerate once, coalesce
        other => {
            let mut idx = Vec::new();
            other.for_each(|i| idx.push(i));
            coalesce_ordered(&idx, out);
        }
    }
}

/// Flatten a schedule into strided runs whose concatenated visit order
/// is *identical* to [`Schedule::for_each`]. Arithmetic shapes convert
/// directly; the repeated/guarded shapes pay their enumeration cost
/// here, once, instead of on every execution.
pub fn flatten_schedule(s: &Schedule) -> Vec<IterRun> {
    let mut out = Vec::new();
    flatten_into(s, &mut out);
    out
}

/// Precomputed local-offset addressing for one strided run: either the
/// closed-form affine progression `base + step·t` (the common Table I
/// outcome) or, when the composition `local_of ∘ g ∘ gen_p` is not
/// affine over the run, an explicit per-element table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPattern {
    /// `offset(t) = base + step·t`.
    Affine {
        /// Offset of the run's first element.
        base: i64,
        /// Offset stride between consecutive run elements.
        step: i64,
    },
    /// Explicit offsets, one per run element.
    Table(Vec<i64>),
}

impl AccessPattern {
    /// The local offset of run element `t`.
    #[inline]
    pub fn offset(&self, t: usize) -> i64 {
        match self {
            AccessPattern::Affine { base, step } => base + step * t as i64,
            AccessPattern::Table(offs) => offs.get(t).copied().unwrap_or(0),
        }
    }

    /// Whether the pattern is unit-stride (`copy_from_slice` eligible).
    pub fn is_unit_stride(&self) -> bool {
        matches!(self, AccessPattern::Affine { step: 1, .. })
    }

    /// Compress explicit offsets into an affine pattern when possible.
    fn compress(offs: Vec<i64>) -> AccessPattern {
        match offs.len() {
            0 => AccessPattern::Affine { base: 0, step: 0 },
            1 => AccessPattern::Affine {
                base: offs[0],
                step: 0,
            },
            _ => {
                let step = offs[1] - offs[0];
                if offs.windows(2).all(|w| w[1] - w[0] == step) {
                    AccessPattern::Affine {
                        base: offs[0],
                        step,
                    }
                } else {
                    AccessPattern::Table(offs)
                }
            }
        }
    }
}

/// Where one element of one read slot comes from inside a boundary run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    /// Owner-local: read the local part at this offset.
    Local(i64),
    /// Remote: consume the value the named peer sends for this element.
    Remote(i64),
}

/// How one read slot is addressed across a whole [`ExecRun`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotAccess {
    /// Every element of the run reads owner-local memory (always the
    /// case for interior runs and replicated slots).
    Local(AccessPattern),
    /// Boundary runs: a per-element mix of local reads and remote
    /// consumptions.
    Mixed(Vec<SlotRef>),
}

/// One compiled update-phase run: a strided span of `Modify_p` whose
/// elements all share the same locality class, with every address the
/// inner loop needs resolved at plan time.
///
/// *Interior* runs (`boundary == false`) read only owner-local memory —
/// provable from the Table I dispatch, because the plan's receive runs
/// (`Reside_q ∩ Modify_p` for `q ≠ p`) enumerate exactly the remote
/// reads. *Boundary* runs consume at least one remote element and must
/// wait for the matching receives.
#[derive(Debug, Clone)]
pub struct ExecRun {
    /// The loop indices of the run (same visit order as `modify`).
    pub run: IterRun,
    /// Whether any element of the run reads remote data.
    pub boundary: bool,
    /// Local offsets of the written elements `local_of(f(i))`.
    pub lhs: AccessPattern,
    /// Per read slot, the resolved addressing.
    pub slots: Vec<SlotAccess>,
    /// Number of remote-element consumptions in the run (zero for
    /// interior runs).
    pub remote_elems: u64,
}

impl ExecRun {
    /// Whether the SIMD lane tier can take this run for `fused`: a
    /// nonempty *interior* run with a recognized (non-Generic) shape,
    /// unit-stride writes, and every slot the shape reads addressed
    /// owner-local at unit stride. This is the single eligibility
    /// predicate shared by the plan-time census and both machines'
    /// runtime dispatch, so the two never disagree.
    pub fn simd_eligible(&self, fused: &FusedShape) -> bool {
        !self.boundary
            && !self.run.is_empty()
            && !matches!(fused, FusedShape::Generic)
            && self.lhs.is_unit_stride()
            && fused.read_slots().iter().all(
                |s| matches!(self.slots.get(*s), Some(SlotAccess::Local(p)) if p.is_unit_stride()),
            )
    }
}

/// Interior/boundary census of a compiled schedule — printed by `vcalc`
/// next to the Table I dispatch census.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapCensus {
    /// Interior runs across all nodes.
    pub interior_runs: u64,
    /// Elements in interior runs.
    pub interior_elems: u64,
    /// Boundary runs across all nodes.
    pub boundary_runs: u64,
    /// Elements in boundary runs.
    pub boundary_elems: u64,
    /// Remote-element consumptions across all boundary runs.
    pub remote_elems: u64,
}

/// The steady-state tables of one processor: every enumeration the
/// executor would otherwise re-derive per run, materialized.
#[derive(Debug, Clone)]
pub struct CompiledNode {
    /// Processor id.
    pub p: i64,
    /// `Modify_p` as flat runs, in schedule visit order.
    pub modify: Vec<IterRun>,
    /// `Modify_p` iteration count (pre-sizes the write buffer).
    pub modify_iters: u64,
    /// `Modify_p` loop-overhead estimate (the `guard_tests` accounting
    /// the cold path charges via `Schedule::work_estimate`).
    pub modify_work: u64,
    /// Per read slot: the reside schedule as flat runs (`None` for
    /// replicated slots, which never enter the send phase).
    pub resides: Vec<Option<Vec<IterRun>>>,
    /// Per read slot: the reside schedule's loop-overhead estimate
    /// (zero for replicated slots).
    pub reside_work: Vec<u64>,
    /// source processor id → ordinal in the recv pair list
    /// (`usize::MAX` when the source sends nothing).
    pub src_ord: Vec<usize>,
    /// source ordinal → processor id (the NACK target).
    pub src_peers: Vec<i64>,
    /// source ordinal → number of planned incoming runs (the staging
    /// shape the receiver pre-sizes).
    pub staging_runs: Vec<usize>,
    /// `(slot, i)` → `(source ordinal, run, offset)` — the vectorized
    /// receive addressing, expanded once from the plan's receive runs.
    pub origin: BTreeMap<(usize, i64), (usize, usize, usize)>,
    /// The interior/boundary execution split of `modify`, with fully
    /// resolved addressing. Empty when the plan was compiled without
    /// execution tables ([`CompiledSchedule::compile`]) or contains a
    /// naive-guard schedule — the machines then run the legacy
    /// element-at-a-time path.
    pub exec: Vec<ExecRun>,
}

impl CompiledNode {
    /// Interior/boundary census of this node's exec table.
    pub fn census(&self) -> OverlapCensus {
        let mut c = OverlapCensus::default();
        for er in &self.exec {
            if er.boundary {
                c.boundary_runs += 1;
                c.boundary_elems += er.run.len();
                c.remote_elems += er.remote_elems;
            } else {
                c.interior_runs += 1;
                c.interior_elems += er.run.len();
            }
        }
        c
    }
}

/// A whole plan's enumeration output, materialized for repeated
/// execution. Built once per `(clause, decompositions)`; shared
/// read-only by every warm run.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// Per-processor tables, indexed by processor id.
    pub nodes: Vec<CompiledNode>,
    /// The clause expression compiled to bytecode + fused shape, shared
    /// by every node (`None` when compiled without execution tables or
    /// when a reference failed to resolve).
    pub kernel: Option<CompiledKernel>,
    /// Whether the source clause carries a data-dependent guard. Guarded
    /// clauses never take the fused/SIMD fast path (the guard must be
    /// tested per element), so the SIMD census classifies all their runs
    /// as fallback.
    pub guarded: bool,
}

impl CompiledSchedule {
    /// Materialize every node's Table I enumeration output and receive
    /// addressing from `plan`.
    pub fn compile(plan: &SpmdPlan) -> CompiledSchedule {
        let pmax = plan.pmax.max(0) as usize;
        let nodes = plan
            .nodes
            .iter()
            .map(|node| {
                let modify = flatten_schedule(&node.modify.schedule);
                let mut resides = Vec::with_capacity(node.resides.len());
                let mut reside_work = Vec::with_capacity(node.resides.len());
                for rp in &node.resides {
                    if rp.replicated {
                        resides.push(None);
                        reside_work.push(0);
                    } else {
                        resides.push(Some(flatten_schedule(&rp.opt.schedule)));
                        reside_work.push(rp.opt.schedule.work_estimate());
                    }
                }
                let mut src_ord = vec![usize::MAX; pmax];
                let mut src_peers = Vec::with_capacity(node.comm.recvs.len());
                let mut staging_runs = Vec::with_capacity(node.comm.recvs.len());
                let mut origin = BTreeMap::new();
                for (ord, pc) in node.comm.recvs.iter().enumerate() {
                    if let Some(slot) = src_ord.get_mut(pc.peer as usize) {
                        *slot = ord;
                    }
                    src_peers.push(pc.peer);
                    staging_runs.push(pc.runs.len());
                    for (run_ord, run) in pc.runs.iter().enumerate() {
                        let mut off = 0usize;
                        run.for_each(|i| {
                            origin.insert((run.slot, i), (ord, run_ord, off));
                            off += 1;
                        });
                    }
                }
                CompiledNode {
                    p: node.p,
                    modify,
                    modify_iters: node.modify.schedule.count(),
                    modify_work: node.modify.schedule.work_estimate(),
                    resides,
                    reside_work,
                    src_ord,
                    src_peers,
                    staging_runs,
                    origin,
                    exec: Vec::new(),
                }
            })
            .collect();
        CompiledSchedule {
            nodes,
            kernel: None,
            guarded: false,
        }
    }

    /// Like [`CompiledSchedule::compile`], but additionally compile the
    /// clause kernel and split every node's `Modify_p` into interior and
    /// boundary [`ExecRun`]s with plan-time-resolved addressing.
    ///
    /// The execution tables require every schedule of the plan to be
    /// closed-form: a naive-guard plan keeps empty tables and the
    /// machines fall back to the legacy element path (the split is only
    /// *provable* from the Table I dispatch).
    pub fn compile_exec(plan: &SpmdPlan, clause: &Clause, decomps: &DecompMap) -> CompiledSchedule {
        let mut cs = Self::compile(plan);
        cs.guarded = !matches!(clause.guard, Guard::Always);
        let closed = plan.nodes.iter().all(|n| {
            n.modify.kind.is_closed_form()
                && n.resides.iter().all(|rp| rp.opt.kind.is_closed_form())
        });
        let (Some(node0), true) = (plan.nodes.first(), closed) else {
            return cs;
        };
        let resolve = |r: &vcal_core::ArrayRef| {
            let g = r.map.as_fn1()?;
            node0
                .resides
                .iter()
                .position(|rp| rp.array == r.array && rp.g == *g)
        };
        let Some(kernel) = CompiledKernel::compile(&clause.rhs, node0.resides.len(), resolve)
        else {
            return cs;
        };
        let Some(dec_lhs) = decomps.get(&plan.lhs_array) else {
            return cs;
        };
        for (node, cn) in plan.nodes.iter().zip(&mut cs.nodes) {
            cn.exec = build_exec(node, cn, plan, dec_lhs, decomps);
        }
        cs.kernel = Some(kernel);
        cs
    }

    /// Whether the execution tables (kernel + interior/boundary split)
    /// were built.
    pub fn has_exec(&self) -> bool {
        self.kernel.is_some()
    }

    /// Interior/boundary census summed over all nodes.
    pub fn overlap_census(&self) -> OverlapCensus {
        let mut total = OverlapCensus::default();
        for n in &self.nodes {
            let c = n.census();
            total.interior_runs += c.interior_runs;
            total.interior_elems += c.interior_elems;
            total.boundary_runs += c.boundary_runs;
            total.boundary_elems += c.boundary_elems;
            total.remote_elems += c.remote_elems;
        }
        total
    }

    /// Total iterations across all nodes (sanity/report helper).
    pub fn total_iters(&self) -> u64 {
        self.nodes.iter().map(|n| n.modify_iters).sum()
    }

    /// Plan-time SIMD census under `policy`, summed over all nodes: how
    /// many exec runs the lane tier will vectorize and how their
    /// elements split into full lanes vs remainder tails. Uses the same
    /// [`ExecRun::simd_eligible`] predicate the machines dispatch on,
    /// so this predicts the runtime census exactly (`vcalc --trace`
    /// prints both side by side).
    pub fn simd_census(&self, policy: SimdPolicy) -> SimdCensus {
        let mut c = SimdCensus {
            lanes: policy.census_lanes() as u64,
            ..Default::default()
        };
        let Some(kernel) = &self.kernel else {
            return c;
        };
        for node in &self.nodes {
            for er in &node.exec {
                if policy.enabled() && !self.guarded && er.simd_eligible(&kernel.fused) {
                    c.add_vector_run(er.run.len());
                } else {
                    c.fallback_runs += 1;
                }
            }
        }
        c
    }
}

/// Split one node's modify visit sequence into maximal same-class
/// (interior vs boundary) strided runs and resolve every address.
///
/// Classification comes from the receive addressing already expanded in
/// `cn.origin`: `(slot, i)` has an entry exactly when the plan routes
/// that read over the wire, i.e. when `g_slot(i)` is owned elsewhere.
/// An index is *boundary* iff any of its non-replicated reads has such
/// an entry — no per-element `proc_of` is ever evaluated.
fn build_exec(
    node: &crate::program::NodePlan,
    cn: &CompiledNode,
    plan: &SpmdPlan,
    dec_lhs: &vcal_decomp::Decomp1,
    decomps: &DecompMap,
) -> Vec<ExecRun> {
    // indices with at least one remote read
    let bset: BTreeSet<i64> = cn.origin.keys().map(|&(_, i)| i).collect();
    let mut seq = Vec::with_capacity(cn.modify_iters as usize);
    for_each_run(&cn.modify, |i| seq.push(i));

    let mut exec = Vec::new();
    let mut k = 0usize;
    while k < seq.len() {
        let boundary = bset.contains(&seq[k]);
        let mut j = k + 1;
        while j < seq.len() && bset.contains(&seq[j]) == boundary {
            j += 1;
        }
        let mut runs = Vec::new();
        coalesce_ordered(&seq[k..j], &mut runs);
        for run in runs {
            exec.push(build_exec_run(
                run, boundary, node, cn, plan, dec_lhs, decomps,
            ));
        }
        k = j;
    }
    exec
}

fn build_exec_run(
    run: IterRun,
    boundary: bool,
    node: &crate::program::NodePlan,
    cn: &CompiledNode,
    plan: &SpmdPlan,
    dec_lhs: &vcal_decomp::Decomp1,
    decomps: &DecompMap,
) -> ExecRun {
    let n = run.len() as usize;
    let mut lhs_offs = Vec::with_capacity(n);
    run.for_each(|i| lhs_offs.push(dec_lhs.local_of(plan.f.eval(i))));
    let mut remote_elems = 0u64;
    let slots = node
        .resides
        .iter()
        .enumerate()
        .map(|(slot, rp)| {
            let local_off = |i: i64| match decomps.get(&rp.array) {
                Some(d) => d.local_of(rp.g.eval(i)),
                None => 0,
            };
            if !boundary || rp.replicated {
                let mut offs = Vec::with_capacity(n);
                run.for_each(|i| offs.push(local_off(i)));
                SlotAccess::Local(AccessPattern::compress(offs))
            } else {
                let mut refs = Vec::with_capacity(n);
                run.for_each(|i| {
                    refs.push(match cn.origin.get(&(slot, i)) {
                        Some(&(ord, _, _)) => {
                            remote_elems += 1;
                            SlotRef::Remote(cn.src_peers.get(ord).copied().unwrap_or(-1))
                        }
                        None => SlotRef::Local(local_off(i)),
                    });
                });
                // a boundary run can still be all-local in one slot
                if refs.iter().all(|r| matches!(r, SlotRef::Local(_))) {
                    let offs = refs
                        .iter()
                        .map(|r| match r {
                            SlotRef::Local(o) => *o,
                            SlotRef::Remote(_) => 0,
                        })
                        .collect();
                    SlotAccess::Local(AccessPattern::compress(offs))
                } else {
                    SlotAccess::Mixed(refs)
                }
            }
        })
        .collect();
    ExecRun {
        run,
        boundary,
        lhs: AccessPattern::compress(lhs_offs),
        slots,
        remote_elems,
    }
}

/// FNV-1a over a formatted rendering, via `fmt::Write` — no
/// intermediate `String`.
struct FnvWriter(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// A session-lifetime signature of a clause: FNV-1a over its canonical
/// debug rendering (every field of the clause participates — iteration
/// set, ordering, guard, lhs access, rhs expression). Two clauses with
/// equal signatures plan identically for the same decompositions.
pub fn clause_signature(clause: &Clause) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    let _ = write!(w, "{clause:?}");
    w.0
}

/// The arrays a clause touches (lhs first, then reads in reference
/// order, deduplicated) — the set whose decompositions a plan depends
/// on, and therefore the set a decomposition fingerprint must cover.
pub fn clause_arrays(clause: &Clause) -> Vec<String> {
    let mut names = vec![clause.lhs.array.clone()];
    for r in clause.read_refs() {
        if !names.contains(&r.array) {
            names.push(r.array.clone());
        }
    }
    names
}

/// Fingerprint the decompositions of `names` (order-insensitive: names
/// are hashed sorted). A missing entry hashes as absent, so adding the
/// decomposition later changes the fingerprint too. Redistribution or
/// replacement of any covered array's decomposition changes the result
/// — the plan-cache invalidation rule.
pub fn decomp_fingerprint<'a>(
    decomps: &DecompMap,
    names: impl IntoIterator<Item = &'a str>,
) -> u64 {
    let mut sorted: Vec<&str> = names.into_iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut w = FnvWriter(FNV_OFFSET);
    for name in sorted {
        let _ = match decomps.get(name) {
            Some(dec) => write!(w, "{name}={dec:?};"),
            None => write!(w, "{name}=<none>;"),
        };
    }
    w.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    fn copy_clause(imin: i64, imax: i64, f: Fn1, g: Fn1) -> Clause {
        Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::Ref(ArrayRef::d1("B", g)),
        }
    }

    fn decomps(a: Decomp1, b: Decomp1) -> DecompMap {
        let mut m = DecompMap::new();
        m.insert("A".into(), a);
        m.insert("B".into(), b);
        m
    }

    fn visit_order(runs: &[IterRun]) -> Vec<i64> {
        let mut v = Vec::new();
        for_each_run(runs, |i| v.push(i));
        v
    }

    #[test]
    fn flatten_preserves_visit_order_across_table1_shapes() {
        let n = 96i64;
        let e = Bounds::range(0, n - 1);
        let decs = [
            Decomp1::block(4, e),
            Decomp1::scatter(4, e),
            Decomp1::block_scatter(3, 4, e),
        ];
        let fns = [
            (Fn1::identity(), 0, n - 1),
            (Fn1::shift(5), 0, n - 6),
            (Fn1::affine(3, 1), 0, (n - 2) / 3),
            (Fn1::rotate(7, n), 0, n - 1),
        ];
        for da in &decs {
            for db in &decs {
                for (f, flo, fhi) in &fns {
                    for (g, glo, ghi) in &fns {
                        let (lo, hi) = ((*flo).max(*glo), (*fhi).min(*ghi));
                        if lo > hi {
                            continue;
                        }
                        let clause = copy_clause(lo, hi, f.clone(), g.clone());
                        let dm = decomps(da.clone(), db.clone());
                        for naive in [false, true] {
                            let plan = if naive {
                                SpmdPlan::build_naive(&clause, &dm).unwrap()
                            } else {
                                SpmdPlan::build(&clause, &dm).unwrap()
                            };
                            let compiled = CompiledSchedule::compile(&plan);
                            for (node, cn) in plan.nodes.iter().zip(&compiled.nodes) {
                                let mut want = Vec::new();
                                node.modify.schedule.for_each(|i| want.push(i));
                                assert_eq!(
                                    visit_order(&cn.modify),
                                    want,
                                    "modify p={} naive={naive}",
                                    node.p
                                );
                                assert_eq!(cn.modify_iters, want.len() as u64);
                                for (slot, rp) in node.resides.iter().enumerate() {
                                    if rp.replicated {
                                        assert!(cn.resides[slot].is_none());
                                        continue;
                                    }
                                    let mut want = Vec::new();
                                    rp.opt.schedule.for_each(|i| want.push(i));
                                    let got = cn.resides[slot]
                                        .as_deref()
                                        .expect("non-replicated slot flattened");
                                    assert_eq!(
                                        visit_order(got),
                                        want,
                                        "reside p={} slot={slot} naive={naive}",
                                        node.p
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn origin_tables_match_runtime_expansion() {
        let n = 1024i64;
        let clause = copy_clause(0, (n - 2) / 2, Fn1::affine(2, 1), Fn1::affine(3, 2));
        let dm = decomps(
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, 3 * n)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let compiled = CompiledSchedule::compile(&plan);
        for (node, cn) in plan.nodes.iter().zip(&compiled.nodes) {
            // exactly the expansion the vectorized receiver performs
            let mut want = BTreeMap::new();
            for (ord, pc) in node.comm.recvs.iter().enumerate() {
                assert_eq!(cn.src_ord[pc.peer as usize], ord);
                assert_eq!(cn.src_peers[ord], pc.peer);
                assert_eq!(cn.staging_runs[ord], pc.runs.len());
                for (run_ord, run) in pc.runs.iter().enumerate() {
                    let mut off = 0usize;
                    run.for_each(|i| {
                        want.insert((run.slot, i), (ord, run_ord, off));
                        off += 1;
                    });
                }
            }
            assert_eq!(cn.origin, want, "p={}", node.p);
        }
    }

    #[test]
    fn exec_split_matches_proc_of_reference() {
        // stencil-ish clause with remote neighbours at block edges
        let n = 96i64;
        let clause = Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::mul(
                Expr::Lit(0.5),
                Expr::add(
                    Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
                    Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
                ),
            ),
        };
        let e = Bounds::range(0, n - 1);
        for (da, db) in [
            (Decomp1::block(4, e), Decomp1::block(4, e)),
            (Decomp1::block(4, e), Decomp1::scatter(4, e)),
            (Decomp1::block_scatter(3, 4, e), Decomp1::block(4, e)),
        ] {
            let dm = decomps(da, db);
            let plan = SpmdPlan::build(&clause, &dm).unwrap();
            let compiled = CompiledSchedule::compile_exec(&plan, &clause, &dm);
            assert!(compiled.has_exec());
            let kernel = compiled.kernel.as_ref().unwrap();
            assert!(matches!(
                kernel.fused,
                crate::kernel::FusedShape::Stencil { .. }
            ));
            for (node, cn) in plan.nodes.iter().zip(&compiled.nodes) {
                // exec covers modify exactly, in visit order
                let mut got = Vec::new();
                for er in &cn.exec {
                    er.run.for_each(|i| got.push(i));
                }
                assert_eq!(got, visit_order(&cn.modify), "p={}", node.p);
                // classification agrees with the brute-force proc_of test
                for er in &cn.exec {
                    let mut t = 0usize;
                    er.run.for_each(|i| {
                        let any_remote = node.resides.iter().any(|rp| {
                            !rp.replicated && dm[&rp.array].proc_of(rp.g.eval(i)) != node.p
                        });
                        assert_eq!(er.boundary, any_remote, "p={} i={i}", node.p);
                        // lhs addressing matches the runtime computation
                        assert_eq!(
                            er.lhs.offset(t),
                            dm["A"].local_of(plan.f.eval(i)),
                            "p={} i={i}",
                            node.p
                        );
                        for (slot, rp) in node.resides.iter().enumerate() {
                            let local = dm[&rp.array].local_of(rp.g.eval(i));
                            let owner = dm[&rp.array].proc_of(rp.g.eval(i));
                            match &er.slots[slot] {
                                SlotAccess::Local(pat) => {
                                    assert_eq!(owner, node.p, "p={} i={i}", node.p);
                                    assert_eq!(pat.offset(t), local, "p={} i={i}", node.p);
                                }
                                SlotAccess::Mixed(refs) => match refs[t] {
                                    SlotRef::Local(off) => {
                                        assert_eq!(owner, node.p);
                                        assert_eq!(off, local);
                                    }
                                    SlotRef::Remote(peer) => {
                                        assert_eq!(peer, owner, "p={} i={i}", node.p)
                                    }
                                },
                            }
                        }
                        t += 1;
                    });
                }
            }
            // census adds up
            let c = compiled.overlap_census();
            assert_eq!(c.interior_elems + c.boundary_elems, compiled.total_iters());
            assert_eq!(
                c.remote_elems,
                plan.nodes.iter().map(|n| n.comm.recv_elems()).sum::<u64>()
            );
        }
        // a naive plan keeps the legacy path
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::block(4, Bounds::range(0, n - 1)),
        );
        let naive = SpmdPlan::build_naive(&clause, &dm).unwrap();
        let compiled = CompiledSchedule::compile_exec(&naive, &clause, &dm);
        assert!(!compiled.has_exec());
        assert!(compiled.nodes.iter().all(|cn| cn.exec.is_empty()));
    }

    #[test]
    fn coalesce_keeps_t_major_order() {
        // a deliberately non-monotone sequence must round-trip exactly
        let v = [0, 4, 8, 1, 5, 9, 2, 6, 10, 40];
        let mut runs = Vec::new();
        coalesce_ordered(&v, &mut runs);
        assert_eq!(visit_order(&runs), v);
    }

    #[test]
    fn signatures_separate_clauses_and_fingerprints_track_decomps() {
        let c1 = copy_clause(0, 63, Fn1::identity(), Fn1::identity());
        let c2 = copy_clause(0, 63, Fn1::identity(), Fn1::shift(1));
        assert_ne!(clause_signature(&c1), clause_signature(&c2));
        assert_eq!(clause_signature(&c1), clause_signature(&c1.clone()));
        assert_eq!(clause_arrays(&c1), vec!["A".to_string(), "B".to_string()]);

        let e = Bounds::range(0, 63);
        let dm1 = decomps(Decomp1::block(4, e), Decomp1::block(4, e));
        let dm2 = decomps(Decomp1::scatter(4, e), Decomp1::block(4, e));
        let names = ["A", "B"];
        assert_ne!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm2, names)
        );
        // an uncovered array's decomposition does not perturb the print
        let mut dm3 = dm1.clone();
        dm3.insert("Z".into(), Decomp1::scatter(4, e));
        assert_eq!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm3, names)
        );
        // ... but a covered one does, including appearing at all
        assert_ne!(
            decomp_fingerprint(&dm1, names),
            decomp_fingerprint(&dm1, ["A"])
        );
    }
}
