//! Program-level clause dependency analysis and DAG scheduling.
//!
//! A multi-clause program executes today as a strict sequence. But the
//! pair-set algebra that powers communication planning (`Reside_p ∩
//! Modify_q`, see [`crate::comm`]) is exactly an element-footprint
//! calculus: the image of a clause's access functions over its iteration
//! range is the set of array elements it reads or writes. Two clauses
//! that touch disjoint element sets on every shared array are
//! independent — executing them in either order (or concurrently from a
//! common snapshot) is bitwise identical to the sequential order.
//!
//! This module computes those footprints per program step, intersects
//! them with the closed-form set algebra ([`crate::setops::intersect`],
//! with bounded enumeration and a conservative "dependent" fallback),
//! condenses the dependence graph with Tarjan's SCC algorithm, and emits
//! a [`ProgramDag`]: a wave schedule in which each wave is an antichain
//! of pairwise-independent steps that the executor may run concurrently.
//!
//! Redistribution steps alias the *whole* array (the layout of every
//! element changes), so they read+write the full extent: any clause
//! touching the array before the redistribution must complete first, and
//! any clause after it depends on it — dependence flows *through* a
//! redistribution transitively, never around it.
//!
//! Because dependence edges only ever point forward in program order
//! (step `i` → step `j` requires `i < j`), the graph built here is
//! always acyclic and every strongly connected component is a
//! singleton. Tarjan condensation is still performed on the general
//! graph: a hypothetical multi-step component (a cycle) would be
//! serialized into consecutive single-step waves, which is the only
//! correct schedule for mutually dependent steps.

use crate::compiled::clause_signature;
use crate::program::DecompMap;
use crate::schedule::Schedule;
use crate::setops;
use vcal_core::func::Fn1;
use vcal_core::Clause;
use vcal_decomp::Decomp1;

/// Largest iteration count (or schedule size) this module will
/// enumerate exactly before falling back to a conservative interval
/// hull. The fallback only ever *adds* dependence edges — it loses
/// parallelism, never correctness.
const ENUM_MAX: i64 = 1 << 16;

/// One step of a multi-clause program.
#[derive(Debug, Clone)]
pub enum ProgramStep {
    /// A `//` clause executed on the distributed machine.
    Clause(Clause),
    /// A dynamic redistribution of `array` to layout `to`.
    Redistribute {
        /// The array whose layout changes.
        array: String,
        /// The new decomposition.
        to: Decomp1,
    },
}

impl ProgramStep {
    /// Every array this step touches (reads or writes).
    pub fn arrays(&self) -> Vec<String> {
        match self {
            ProgramStep::Clause(c) => crate::compiled::clause_arrays(c),
            ProgramStep::Redistribute { array, .. } => vec![array.clone()],
        }
    }
}

/// The kind of data dependence an edge records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write: the later step reads elements the earlier wrote.
    Raw,
    /// Write-after-read: the later step overwrites elements the earlier read.
    War,
    /// Write-after-write: both steps write overlapping elements.
    Waw,
}

impl DepKind {
    /// Stable lowercase name (`raw` / `war` / `waw`).
    pub fn name(self) -> &'static str {
        match self {
            DepKind::Raw => "raw",
            DepKind::War => "war",
            DepKind::Waw => "waw",
        }
    }
}

/// One dependence edge: step `from` must commit before step `to` starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// The earlier step (program order).
    pub from: usize,
    /// The later, dependent step.
    pub to: usize,
    /// The shared array the dependence flows through.
    pub array: String,
    /// The dependence kind.
    pub kind: DepKind,
}

/// The condensed dependence DAG of a program, with its wave schedule.
#[derive(Debug, Clone)]
pub struct ProgramDag {
    /// Number of program steps.
    pub steps: usize,
    /// All dependence edges, `(from, to)` lexicographic order.
    pub edges: Vec<DepEdge>,
    /// Tarjan strongly connected components, topological order, each
    /// component's steps in program order. Always singletons for graphs
    /// built by [`build_dag`] (edges point forward in program order).
    pub sccs: Vec<Vec<usize>>,
    /// The wave schedule: each wave is a set of pairwise-independent
    /// steps (program order within the wave) that may execute
    /// concurrently; waves execute in order.
    pub waves: Vec<Vec<usize>>,
    /// FNV-1a signature of the program text (clause signatures plus
    /// redistribution targets) — the DAG cache key, combined with the
    /// decomposition fingerprint of the touched arrays.
    pub signature: u64,
}

impl ProgramDag {
    /// The widest wave — the peak number of concurrently runnable steps.
    pub fn width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Direct DAG predecessors of `step` (deduplicated, ascending).
    pub fn preds_of(&self, step: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.to == step)
            .map(|e| e.from)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One-line human summary (`steps=5 edges=3 waves=3 width=2`).
    pub fn summary(&self) -> String {
        format!(
            "steps={} edges={} waves={} width={}",
            self.steps,
            self.edges.len(),
            self.waves.len(),
            self.width()
        )
    }
}

/// FNV-1a over the program text: clause signatures and redistribution
/// targets in step order. Two programs with equal signatures produce
/// the same dependence analysis for the same decomposition fingerprint.
pub fn program_signature(steps: &[ProgramStep]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for step in steps {
        match step {
            ProgramStep::Clause(c) => {
                eat(b"clause:");
                eat(&clause_signature(c).to_le_bytes());
            }
            ProgramStep::Redistribute { array, to } => {
                eat(b"redist:");
                eat(array.as_bytes());
                eat(format!("{to:?}").as_bytes());
            }
        }
    }
    h
}

/// An array-element footprint: the set of global indices a step reads
/// or writes in one array.
#[derive(Debug, Clone)]
enum Footprint {
    /// Exact arithmetic set (closed-form intersectable).
    Exact(Schedule),
    /// Exact enumerated set, sorted and deduplicated.
    Set(Vec<i64>),
    /// Conservative interval hull `[lo, hi]` — used when no exact form
    /// is affordable. May only add spurious dependences.
    Hull(i64, i64),
}

impl Footprint {
    fn is_empty(&self) -> bool {
        match self {
            Footprint::Exact(s) => s.is_empty(),
            Footprint::Set(v) => v.is_empty(),
            Footprint::Hull(lo, hi) => lo > hi,
        }
    }

    /// `[min, max]` of the footprint, `None` when empty.
    fn hull(&self) -> Option<(i64, i64)> {
        match self {
            Footprint::Exact(s) => sched_hull(s),
            Footprint::Set(v) => Some((*v.first()?, *v.last()?)),
            Footprint::Hull(lo, hi) => (lo <= hi).then_some((*lo, *hi)),
        }
    }
}

/// `[min, max]` of a schedule, `None` when empty.
fn sched_hull(s: &Schedule) -> Option<(i64, i64)> {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    s.for_each(|i| {
        lo = lo.min(i);
        hi = hi.max(i);
    });
    (lo <= hi).then_some((lo, hi))
}

/// Enumerate a schedule into a sorted set when it is small enough.
fn sched_set(s: &Schedule) -> Option<Vec<i64>> {
    if s.work_estimate() > ENUM_MAX as u64 {
        return None;
    }
    let mut v = Vec::new();
    s.for_each(|i| v.push(i));
    v.sort_unstable();
    v.dedup();
    Some(v)
}

/// Whether two sorted sets intersect (linear merge).
fn sets_intersect(a: &[i64], b: &[i64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Whether two footprints share at least one element. Conservative:
/// answers `true` whenever no exact decision is affordable.
fn footprints_intersect(a: &Footprint, b: &Footprint) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    // cheap hull rejection first: disjoint hulls never intersect
    match (a.hull(), b.hull()) {
        (Some((alo, ahi)), Some((blo, bhi))) => {
            if ahi < blo || bhi < alo {
                return false;
            }
        }
        _ => return false, // one side empty (already handled, defensive)
    }
    match (a, b) {
        (Footprint::Exact(x), Footprint::Exact(y)) => match setops::intersect(x, y) {
            Some(s) => !s.is_empty(),
            None => match (sched_set(x), sched_set(y)) {
                (Some(sx), Some(sy)) => sets_intersect(&sx, &sy),
                _ => true, // no affordable exact form: assume dependent
            },
        },
        (Footprint::Exact(x), Footprint::Set(t)) | (Footprint::Set(t), Footprint::Exact(x)) => {
            match sched_set(x) {
                Some(s) => sets_intersect(&s, t),
                None => true,
            }
        }
        (Footprint::Set(s), Footprint::Set(t)) => sets_intersect(s, t),
        // a hull overlap was already established above
        _ => true,
    }
}

/// The image of access function `f` over the iteration range
/// `[lo, hi]`, as a footprint. `Const` and `Affine` have exact strided
/// images; everything else is enumerated when affordable and otherwise
/// approximated by the array's extent hull.
fn image(f: &Fn1, lo: i64, hi: i64, extent: Option<(i64, i64)>) -> Footprint {
    if lo > hi {
        return Footprint::Exact(Schedule::Empty);
    }
    let count = hi - lo + 1;
    match f {
        Fn1::Const(c) => Footprint::Exact(Schedule::range(*c, *c)),
        Fn1::Affine { a, c } => {
            if *a == 0 {
                Footprint::Exact(Schedule::range(*c, *c))
            } else if *a == 1 {
                Footprint::Exact(Schedule::range(lo + c, hi + c))
            } else {
                // normalize to a positive step so the set algebra sees a
                // canonical lattice
                let (start, step) = if *a > 0 {
                    (a * lo + c, *a)
                } else {
                    (a * hi + c, -a)
                };
                Footprint::Exact(Schedule::Strided { start, step, count })
            }
        }
        _ if count <= ENUM_MAX => {
            let mut v: Vec<i64> = (lo..=hi).map(|i| f.eval(i)).collect();
            v.sort_unstable();
            v.dedup();
            Footprint::Set(v)
        }
        _ => match extent {
            Some((elo, ehi)) => Footprint::Hull(elo, ehi),
            None => Footprint::Hull(i64::MIN, i64::MAX),
        },
    }
}

/// Per-step read/write footprints in array-element space.
struct StepFoot {
    reads: Vec<(String, Footprint)>,
    writes: Vec<(String, Footprint)>,
}

fn step_footprints(step: &ProgramStep, decomps: &DecompMap) -> StepFoot {
    let extent_of = |name: &str| -> Option<(i64, i64)> {
        decomps.get(name).map(|d| {
            let b = d.extent();
            (b.lo().scalar(), b.hi().scalar())
        })
    };
    match step {
        ProgramStep::Clause(c) => {
            if c.iter.dims() != 1 {
                // n-D clauses are outside the 1-D footprint calculus:
                // conservatively alias the whole of every touched array
                let all = |name: &str| match extent_of(name) {
                    Some((lo, hi)) => Footprint::Hull(lo, hi),
                    None => Footprint::Hull(i64::MIN, i64::MAX),
                };
                return StepFoot {
                    reads: c
                        .read_refs()
                        .iter()
                        .map(|r| (r.array.clone(), all(&r.array)))
                        .collect(),
                    writes: vec![(c.lhs.array.clone(), all(&c.lhs.array))],
                };
            }
            let lo = c.iter.bounds.lo().scalar();
            let hi = c.iter.bounds.hi().scalar();
            // a non-1-D index map (no as_fn1 form) gets the extent hull
            let foot = |r: &vcal_core::ArrayRef| match r.map.as_fn1() {
                Some(f) => image(f, lo, hi, extent_of(&r.array)),
                None => match extent_of(&r.array) {
                    Some((elo, ehi)) => Footprint::Hull(elo, ehi),
                    None => Footprint::Hull(i64::MIN, i64::MAX),
                },
            };
            let reads = c
                .read_refs()
                .into_iter()
                .map(|r| (r.array.clone(), foot(r)))
                .collect();
            let writes = vec![(c.lhs.array.clone(), foot(&c.lhs))];
            StepFoot { reads, writes }
        }
        ProgramStep::Redistribute { array, to } => {
            // a layout change reads and rewrites every element: it
            // serializes against everything touching this array, and
            // dependence through the array flows transitively across it
            let b = to.extent();
            let fp = Footprint::Hull(b.lo().scalar(), b.hi().scalar());
            StepFoot {
                reads: vec![(array.clone(), fp.clone())],
                writes: vec![(array.clone(), fp)],
            }
        }
    }
}

/// Iterative Tarjan SCC over `n` nodes with adjacency `adj`.
/// Components are returned in topological order of the condensation
/// (sources first), each component's nodes ascending.
pub fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut st = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // explicit DFS frames: (node, next child ordinal)
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if st[root].visited {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                st[v].visited = true;
                st[v].index = next_index;
                st[v].lowlink = next_index;
                next_index += 1;
                st[v].on_stack = true;
                stack.push(v);
            }
            if let Some(&w) = adj[v].get(*child) {
                *child += 1;
                if !st[w].visited {
                    frames.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        st[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order
    comps.reverse();
    comps
}

/// Build the dependence DAG and wave schedule of `steps`.
///
/// Dependence between steps `i < j` exists when some shared array has a
/// non-empty intersection of `i`'s writes with `j`'s reads (RAW), `i`'s
/// reads with `j`'s writes (WAR), or both writes (WAW). Intersections
/// use the closed-form set algebra where available, bounded enumeration
/// next, and a conservative "dependent" verdict when neither is
/// affordable. Redistributions alias their array's full extent.
pub fn build_dag(steps: &[ProgramStep], decomps: &DecompMap) -> ProgramDag {
    let n = steps.len();
    let feet: Vec<StepFoot> = steps.iter().map(|s| step_footprints(s, decomps)).collect();
    let mut edges: Vec<DepEdge> = Vec::new();
    for j in 1..n {
        for i in 0..j {
            let mut kinds: Vec<(String, DepKind)> = Vec::new();
            for (wa, wf) in &feet[i].writes {
                for (ra, rf) in &feet[j].reads {
                    if wa == ra && footprints_intersect(wf, rf) {
                        kinds.push((wa.clone(), DepKind::Raw));
                    }
                }
                for (wa2, wf2) in &feet[j].writes {
                    if wa == wa2 && footprints_intersect(wf, wf2) {
                        kinds.push((wa.clone(), DepKind::Waw));
                    }
                }
            }
            for (ra, rf) in &feet[i].reads {
                for (wa, wf) in &feet[j].writes {
                    if ra == wa && footprints_intersect(rf, wf) {
                        kinds.push((ra.clone(), DepKind::War));
                    }
                }
            }
            kinds.sort_by(|a, b| (a.0.as_str(), a.1.name()).cmp(&(b.0.as_str(), b.1.name())));
            kinds.dedup();
            for (array, kind) in kinds {
                edges.push(DepEdge {
                    from: i,
                    to: j,
                    array,
                    kind,
                });
            }
        }
    }

    // adjacency (deduplicated pairs) for condensation + leveling
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        if !adj[e.from].contains(&e.to) {
            adj[e.from].push(e.to);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
    }
    let sccs = tarjan_sccs(n, &adj);

    // condensation levels: level(C) = 1 + max(level(pred components))
    let mut comp_of = vec![0usize; n];
    for (c, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v] = c;
        }
    }
    let mut level = vec![0usize; sccs.len()];
    // sccs are already topologically ordered, so one forward pass fixes
    // every level
    for (c, comp) in sccs.iter().enumerate() {
        for &v in comp {
            for &w in &adj[v] {
                let cw = comp_of[w];
                if cw != c {
                    level[cw] = level[cw].max(level[c] + 1);
                }
            }
        }
    }

    // waves: components grouped by level. Singleton components at one
    // level are mutually independent (an edge would force a level gap)
    // and merge into one concurrent wave; a multi-step component (a
    // cycle — impossible from program-order edges, but handled) is
    // serialized into consecutive single-step waves in program order.
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut waves: Vec<Vec<usize>> = Vec::new();
    for l in 0..=max_level {
        let mut merged: Vec<usize> = Vec::new();
        let mut serial: Vec<Vec<usize>> = Vec::new();
        for (c, comp) in sccs.iter().enumerate() {
            if level[c] != l {
                continue;
            }
            if comp.len() == 1 {
                merged.push(comp[0]);
            } else {
                serial.push(comp.clone());
            }
        }
        merged.sort_unstable();
        if !merged.is_empty() {
            waves.push(merged);
        }
        serial.sort_by_key(|comp| comp.first().copied().unwrap_or(0));
        for comp in serial {
            for v in comp {
                waves.push(vec![v]);
            }
        }
    }

    ProgramDag {
        steps: n,
        edges,
        sccs,
        waves,
        signature: program_signature(steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Expr, Guard, IndexSet, Ordering};

    fn clause(lhs: &str, f: Fn1, reads: &[(&str, Fn1)], lo: i64, hi: i64) -> ProgramStep {
        let mut rhs = Expr::Lit(0.0);
        for (a, g) in reads {
            rhs = Expr::add(rhs, Expr::Ref(ArrayRef::d1(*a, g.clone())));
        }
        ProgramStep::Clause(Clause {
            iter: IndexSet::range(lo, hi),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1(lhs, f),
            rhs,
        })
    }

    fn decomps(names: &[&str], n: i64) -> DecompMap {
        let mut dm = DecompMap::new();
        for name in names {
            dm.insert(
                (*name).to_string(),
                Decomp1::block(4, Bounds::range(0, n - 1)),
            );
        }
        dm
    }

    #[test]
    fn independent_clauses_share_a_wave() {
        let steps = vec![
            clause("A", Fn1::identity(), &[("B", Fn1::identity())], 0, 31),
            clause("C", Fn1::identity(), &[("D", Fn1::identity())], 0, 31),
        ];
        let dag = build_dag(&steps, &decomps(&["A", "B", "C", "D"], 32));
        assert!(dag.edges.is_empty());
        assert_eq!(dag.waves, vec![vec![0, 1]]);
        assert_eq!(dag.width(), 2);
    }

    #[test]
    fn raw_dependence_orders_waves() {
        let steps = vec![
            clause("A", Fn1::identity(), &[("B", Fn1::identity())], 0, 31),
            clause("C", Fn1::identity(), &[("A", Fn1::identity())], 0, 31),
        ];
        let dag = build_dag(&steps, &decomps(&["A", "B", "C"], 32));
        assert_eq!(dag.edges.len(), 1);
        assert_eq!(dag.edges[0].kind, DepKind::Raw);
        assert_eq!(dag.waves, vec![vec![0], vec![1]]);
        assert_eq!(dag.preds_of(1), vec![0]);
    }

    #[test]
    fn war_and_waw_detected() {
        let steps = vec![
            clause("A", Fn1::identity(), &[("B", Fn1::identity())], 0, 31),
            clause("B", Fn1::identity(), &[], 0, 31), // WAR vs step 0's read
            clause("A", Fn1::identity(), &[], 0, 31), // WAW vs step 0's write
        ];
        let dag = build_dag(&steps, &decomps(&["A", "B"], 32));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::War));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 2 && e.kind == DepKind::Waw));
    }

    #[test]
    fn disjoint_strided_footprints_are_independent() {
        // evens write vs odds write on the same array: no intersection
        let steps = vec![
            clause("A", Fn1::affine(2, 0), &[("B", Fn1::identity())], 0, 15),
            clause("A", Fn1::affine(2, 1), &[("B", Fn1::identity())], 0, 15),
        ];
        let dag = build_dag(&steps, &decomps(&["A", "B"], 32));
        assert!(dag.edges.is_empty(), "edges: {:?}", dag.edges);
        assert_eq!(dag.waves, vec![vec![0, 1]]);
    }

    #[test]
    fn redistribute_serializes_array_aliases_transitively() {
        let steps = vec![
            clause("A", Fn1::identity(), &[("B", Fn1::identity())], 0, 31),
            ProgramStep::Redistribute {
                array: "A".into(),
                to: Decomp1::scatter(4, Bounds::range(0, 31)),
            },
            clause("C", Fn1::identity(), &[("A", Fn1::identity())], 0, 31),
            // untouched by the redistribution: floats to wave 0
            clause("D", Fn1::identity(), &[("B", Fn1::identity())], 0, 31),
        ];
        let dag = build_dag(&steps, &decomps(&["A", "B", "C", "D"], 32));
        // 0 → 1 (A rewritten), 1 → 2 (A read after relayout); 2 never
        // depends on 0 directly by element algebra here, but the chain
        // through 1 orders them anyway
        assert!(dag.edges.iter().any(|e| e.from == 0 && e.to == 1));
        assert!(dag.edges.iter().any(|e| e.from == 1 && e.to == 2));
        assert_eq!(dag.waves[0], vec![0, 3]);
        assert_eq!(dag.waves[1], vec![1]);
        assert_eq!(dag.waves[2], vec![2]);
    }

    #[test]
    fn tarjan_condenses_synthetic_cycle() {
        // 0 → 1 → 2 → 0 (cycle), 2 → 3
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let comps = tarjan_sccs(4, &adj);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn tarjan_singletons_in_topological_order() {
        let adj = vec![vec![2], vec![2], vec![3], vec![]];
        let comps = tarjan_sccs(4, &adj);
        assert_eq!(comps.len(), 4);
        let pos = |v: usize| comps.iter().position(|c| c.contains(&v)).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn signature_stable_and_distinguishes_programs() {
        let a = vec![clause("A", Fn1::identity(), &[], 0, 7)];
        let b = vec![clause("B", Fn1::identity(), &[], 0, 7)];
        assert_eq!(program_signature(&a), program_signature(&a.clone()));
        assert_ne!(program_signature(&a), program_signature(&b));
    }

    #[test]
    fn guard_reads_create_dependences() {
        // step 1 guarded on A, which step 0 writes
        let mut g = clause("B", Fn1::identity(), &[("C", Fn1::identity())], 0, 31);
        if let ProgramStep::Clause(c) = &mut g {
            c.guard = Guard::Cmp {
                lhs: ArrayRef::d1("A", Fn1::identity()),
                op: vcal_core::CmpOp::Gt,
                rhs: 0.0,
            };
        }
        let steps = vec![clause("A", Fn1::identity(), &[], 0, 31), g];
        let dag = build_dag(&steps, &decomps(&["A", "B", "C"], 32));
        assert!(dag
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Raw));
    }
}
