//! Pseudo-code emission: renders the generated SPMD node programs in the
//! imperative style the paper uses for its templates (Sections 2.6, 2.9,
//! 2.10 and the loop skeletons of Section 4), with the chosen Table I
//! optimization noted per loop.

use crate::optimizer::Optimized;
use crate::program::SpmdPlan;
use crate::schedule::Schedule;
use vcal_core::map::display_fn1;

/// Render one schedule as a loop nest over variable `var`, with `body`
/// lines inside (pre-indented by the caller's `indent`).
pub fn emit_schedule(s: &Schedule, var: &str, body: &str, indent: usize) -> String {
    let pad = " ".repeat(indent);
    match s {
        Schedule::Empty => format!("{pad}(* no iterations on this node *)\n"),
        Schedule::Range { lo, hi } => {
            format!("{pad}for {var} := {lo} to {hi} do\n{body}{pad}od;\n")
        }
        Schedule::Strided { start, step, count } => format!(
            "{pad}for t := 0 to {} do\n{pad}  {var} := {start} + {step}*t;\n{body}{pad}od;\n",
            count - 1
        ),
        Schedule::RepeatedBlock {
            f,
            b,
            pmax,
            p,
            ext_lo,
            k_max,
            imin,
            imax,
        } => {
            let fi = display_fn1(f, var);
            format!(
                "{pad}(* repeated block: blocks p + k*pmax of size {b}, f({var}) = {fi} *)\n\
                 {pad}for k := 0 to {k_max} do\n\
                 {pad}  lo_v := {ext_lo} + {b}*({p} + k*{pmax});\n\
                 {pad}  jmin := max({imin}, ceil_finv(lo_v));\n\
                 {pad}  jmax := min({imax}, floor_finv(lo_v + {b} - 1));\n\
                 {pad}  for {var} := jmin to jmax do\n{body}{pad}  od;\n{pad}od;\n"
            )
        }
        Schedule::RepeatedScatter {
            f,
            b,
            pmax,
            p,
            ext_lo,
            k_max,
            ..
        } => {
            let fi = display_fn1(f, var);
            format!(
                "{pad}(* repeated scatter: probe f^-1 of each owned value, f({var}) = {fi} *)\n\
                 {pad}for t := {}*{p} to {}*{p} + {} do\n\
                 {pad}  for k := 0 to {k_max} do\n\
                 {pad}    v := {ext_lo} + t + {b}*k*{pmax};\n\
                 {pad}    if finv_integral(v, {var}) then\n{body}{pad}    fi;\n\
                 {pad}  od;\n{pad}od;\n",
                b,
                b,
                b - 1
            )
        }
        Schedule::Concat(parts) => {
            let mut out = format!("{pad}(* piecewise split: {} pieces *)\n", parts.len());
            for part in parts {
                out.push_str(&emit_schedule(part, var, body, indent));
            }
            out
        }
        Schedule::Guarded {
            imin,
            imax,
            proc_of_f,
            p,
        } => {
            let test = display_fn1(proc_of_f, var);
            format!(
                "{pad}for {var} := {imin} to {imax} do\n\
                 {pad}  if {test} = {p} then\n{body}{pad}  fi;\n{pad}od;\n"
            )
        }
    }
}

/// Render the shared-memory SPMD template of Section 2.9 for one node of
/// a plan.
pub fn emit_shared_node(plan: &SpmdPlan, p: i64) -> String {
    let node = &plan.nodes[p as usize];
    let mut out = String::new();
    out.push_str(&format!("p := my_node;  (* = {p} *)\n"));
    out.push_str(&format!("(* Modify_p via {} *)\n", node.modify.kind.name()));
    let f = display_fn1(&plan.f, "i");
    let body = format!("    {}[{}] := Expr(...);\n", plan.lhs_array, f);
    out.push_str(&emit_schedule(&node.modify.schedule, "i", &body, 0));
    out.push_str("barrier;\n");
    out
}

/// Render the distributed-memory SPMD template of Section 2.10 for one
/// node of a plan: sends from `Reside_p \ Modify_p`, receives into
/// `Modify_p \ Reside_p`, then local updates.
pub fn emit_distributed_node(plan: &SpmdPlan, p: i64) -> String {
    let node = &plan.nodes[p as usize];
    let f = display_fn1(&plan.f, "i");
    let mut out = String::new();
    out.push_str(&format!("p := my_node;  (* = {p} *)\n"));
    for rp in &node.resides {
        if rp.replicated {
            out.push_str(&format!("(* {} replicated: no sends *)\n", rp.array));
            continue;
        }
        let g = display_fn1(&rp.g, "i");
        out.push_str(&format!(
            "(* send phase over Reside_p of {} via {} *)\n",
            rp.array,
            rp.opt.kind.name()
        ));
        let body = format!(
            "    if procA({f}) \u{2260} p then\n      send(procA({f}), {}L[local({g})]);\n    fi;\n",
            rp.array
        );
        out.push_str(&emit_schedule(&rp.opt.schedule, "i", &body, 0));
    }
    out.push_str(&format!(
        "(* update phase over Modify_p via {} *)\n",
        node.modify.kind.name()
    ));
    let mut body = String::new();
    for rp in &node.resides {
        if rp.replicated {
            continue;
        }
        let g = display_fn1(&rp.g, "i");
        body.push_str(&format!(
            "    if procB({g}) \u{2260} p then tmp_{0} := receive(procB({g})); fi;\n",
            rp.array
        ));
    }
    body.push_str(&format!(
        "    {}L[local({f})] := Expr(...);\n",
        plan.lhs_array
    ));
    out.push_str(&emit_schedule(&node.modify.schedule, "i", &body, 0));
    out
}

/// Render the distributed template with **closed-form communication
/// loops** where the set algebra permits: instead of guarding every
/// Reside iteration with `procA(f(i)) ≠ p`, the send set
/// `Reside_p \ Modify_p` is computed symbolically (CRT lattice algebra,
/// [`crate::setops`]) and emitted as bare loops. Falls back to the
/// guarded form per read when the schedules are not arithmetic.
pub fn emit_distributed_node_closed(plan: &SpmdPlan, p: i64) -> String {
    let node = &plan.nodes[p as usize];
    let f = display_fn1(&plan.f, "i");
    let mut out = String::new();
    out.push_str(&format!("p := my_node;  (* = {p} *)\n"));
    for rp in &node.resides {
        if rp.replicated {
            continue;
        }
        let g = display_fn1(&rp.g, "i");
        match crate::setops::comm_sets(&node.modify.schedule, &rp.opt.schedule) {
            Some(cs) => {
                out.push_str(&format!(
                    "(* closed-form send set Reside_p \\ Modify_p of {} ({} iters) *)\n",
                    rp.array,
                    cs.send.count()
                ));
                let body = format!("    send(procA({f}), {}L[local({g})]);\n", rp.array);
                out.push_str(&emit_schedule(&cs.send, "i", &body, 0));
                out.push_str(&format!(
                    "(* closed-form receive set Modify_p \\ Reside_p of {} ({} iters) *)\n",
                    rp.array,
                    cs.receive.count()
                ));
                let body = format!("    tmp_{0} := receive(procB({g}));\n", rp.array);
                out.push_str(&emit_schedule(&cs.receive, "i", &body, 0));
            }
            None => {
                out.push_str(&format!(
                    "(* no closed form for {}: guarded send loop *)\n",
                    rp.array
                ));
                let body = format!(
                    "    if procA({f}) \u{2260} p then send(procA({f}), {}L[local({g})]); fi;\n",
                    rp.array
                );
                out.push_str(&emit_schedule(&rp.opt.schedule, "i", &body, 0));
            }
        }
    }
    out.push_str("(* update phase over Modify_p *)\n");
    let body = format!("    {}L[local({f})] := Expr(...);\n", plan.lhs_array);
    out.push_str(&emit_schedule(&node.modify.schedule, "i", &body, 0));
    out
}

/// Summarize the optimization decisions of a plan (one line per node).
pub fn plan_report(plan: &SpmdPlan) -> String {
    let mut out = format!(
        "SPMD plan: {} nodes, loop {}..={}, lhs {}[{}]\n",
        plan.pmax,
        plan.loop_bounds.0,
        plan.loop_bounds.1,
        plan.lhs_array,
        display_fn1(&plan.f, "i"),
    );
    for node in &plan.nodes {
        out.push_str(&format!(
            "  p{}: modify {:>6} iters via {} (work {})",
            node.p,
            node.modify.schedule.count(),
            node.modify.kind.name(),
            node.modify.schedule.work_estimate(),
        ));
        for rp in &node.resides {
            out.push_str(&format!(
                ", reside[{}] {} via {}",
                rp.array,
                rp.opt.schedule.count(),
                rp.opt.kind.name()
            ));
        }
        out.push('\n');
    }
    out
}

/// Helper for an [`Optimized`] in isolation.
pub fn emit_optimized(opt: &Optimized, var: &str, body: &str) -> String {
    format!(
        "(* {} *)\n{}",
        opt.kind.name(),
        emit_schedule(&opt.schedule, var, body, 0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::program::{DecompMap, SpmdPlan};
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    fn plan() -> (SpmdPlan, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(0, 63),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
        };
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, 63)));
        dm.insert("B".into(), Decomp1::block(4, Bounds::range(-1, 63)));
        // shift B's extent so B[i-1] stays in range for i=0
        let clause = Clause {
            iter: IndexSet::range(0, 63),
            ..clause
        };
        (SpmdPlan::build(&clause, &dm).unwrap(), dm)
    }

    #[test]
    fn emit_range_loop() {
        let s = Schedule::range(2, 9);
        let code = emit_schedule(&s, "i", "  work;\n", 0);
        assert!(code.contains("for i := 2 to 9 do"), "{code}");
    }

    #[test]
    fn emit_strided_loop_shows_gen_function() {
        let dec = Decomp1::scatter(4, Bounds::range(0, 99));
        let o = optimize(&Fn1::affine(3, 1), &dec, 0, 32, 2);
        let code = emit_optimized(&o, "i", "  work;\n");
        assert!(code.contains("theorem-3"), "{code}");
        assert!(code.contains("+ 4*t"), "{code}");
    }

    #[test]
    fn emit_guarded_shows_membership_test() {
        let dec = Decomp1::scatter(4, Bounds::range(0, 1000));
        let o = optimize(&Fn1::square(), &dec, 0, 30, 1);
        let code = emit_optimized(&o, "i", "  work;\n");
        assert!(code.contains("if"), "{code}");
        assert!(code.contains("= 1"), "{code}");
    }

    #[test]
    fn shared_template_mentions_barrier() {
        let (p, _) = plan();
        let code = emit_shared_node(&p, 0);
        assert!(code.contains("barrier;"), "{code}");
        assert!(code.contains("my_node"), "{code}");
    }

    #[test]
    fn distributed_template_has_send_and_receive() {
        let (p, _) = plan();
        let code = emit_distributed_node(&p, 1);
        assert!(code.contains("send("), "{code}");
        assert!(code.contains("receive("), "{code}");
    }

    #[test]
    fn closed_form_template_emits_unguarded_sends() {
        let (p, _) = plan();
        let code = emit_distributed_node_closed(&p, 1);
        assert!(code.contains("closed-form send set"), "{code}");
        assert!(code.contains("send("), "{code}");
        // the closed-form send loops carry no per-element ownership test
        let send_section = code.split("update phase").next().unwrap();
        assert!(!send_section.contains('\u{2260}'), "{code}");
    }

    #[test]
    fn report_lists_every_node() {
        let (p, _) = plan();
        let r = plan_report(&p);
        for n in 0..4 {
            assert!(r.contains(&format!("p{n}:")), "{r}");
        }
    }
}
