//! Compile-time communication schedules for the distributed machine.
//!
//! The Section 2.10 template makes processor `p` send, for every read
//! slot, the elements `{ i ∈ Reside_p | proc_A(f(i)) ≠ p }` — one tagged
//! message per element, with the destination computed by an ownership
//! test *at run time*. But the destination set is itself a V-cal set
//! expression: the elements `p` sends to `q` for slot `s` are exactly
//!
//! ```text
//! Send_{p→q}(s) = Reside_p(s) ∩ Modify_q
//! ```
//!
//! and both operands are schedules the optimizer already derived in
//! closed form (Theorems 1–3). This module intersects them per ordered
//! processor pair at *plan time* — using the lattice algebra of
//! [`crate::setops`] when both schedules are arithmetic, and falling
//! back to a single enumeration + run-coalescing pass otherwise — and
//! stores the result as strided runs ([`CommRun`]) on each node plan.
//!
//! Because the pair set is computed once and shared by sender and
//! receiver, both sides agree on the exact packing order of every run:
//! the executor can ship one vector message per run (`packets ≈ pairs`
//! instead of `packets = elements`) and the receiver can unpack by
//! `(source, run, offset)` with no per-element tag matching.

use crate::program::NodePlan;
use crate::schedule::Schedule;
use vcal_core::func::Fn1;
use vcal_decomp::Decomp1;

/// One coalesced run of loop indices `start + step·t, t ∈ [0, count)`,
/// all belonging to a single read slot. The values of a run travel in
/// one message, packed in run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRun {
    /// Index into the node's reside/read slot list.
    pub slot: usize,
    /// First loop index of the run.
    pub start: i64,
    /// Stride between consecutive indices (≥ 1).
    pub step: i64,
    /// Number of indices (≥ 1).
    pub count: i64,
}

impl CommRun {
    /// Visit the loop indices of the run in packing order.
    pub fn for_each(&self, mut visit: impl FnMut(i64)) {
        let mut i = self.start;
        for _ in 0..self.count {
            visit(i);
            i += self.step;
        }
    }

    /// Number of elements in the run.
    pub fn len(&self) -> u64 {
        self.count.max(0) as u64
    }

    /// Whether the run is degenerate.
    pub fn is_empty(&self) -> bool {
        self.count <= 0
    }
}

/// All runs exchanged with one peer, ordered by slot then derivation
/// order. `runs[k]` is the `k`-th packet on the wire for this pair —
/// the index `k` is the packet tag, shared by sender and receiver.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PairComm {
    /// The other processor.
    pub peer: i64,
    /// The runs, in wire order.
    pub runs: Vec<CommRun>,
}

impl PairComm {
    /// Total elements across all runs of the pair.
    pub fn elems(&self) -> u64 {
        self.runs.iter().map(CommRun::len).sum()
    }
}

/// The plan-time communication schedule of one processor: what it sends
/// to and expects from every peer, as coalesced runs.
#[derive(Debug, Clone, Default)]
pub struct NodeCommPlan {
    /// Outgoing runs, one entry per destination (ascending peer id,
    /// empty pairs omitted).
    pub sends: Vec<PairComm>,
    /// Incoming runs, one entry per source (ascending peer id, empty
    /// pairs omitted). `recvs[so].runs[k]` on the receiver is the same
    /// run as `sends[..].runs[k]` on source `so` — derived once, shared.
    pub recvs: Vec<PairComm>,
    /// Read slots whose pair sets came from closed-form intersection.
    pub closed_form_slots: u64,
    /// Read slots that needed the enumeration + coalescing fallback.
    pub enumerated_slots: u64,
}

impl NodeCommPlan {
    /// Total elements this node sends.
    pub fn send_elems(&self) -> u64 {
        self.sends.iter().map(PairComm::elems).sum()
    }

    /// Total elements this node expects to receive.
    pub fn recv_elems(&self) -> u64 {
        self.recvs.iter().map(PairComm::elems).sum()
    }

    /// Number of outgoing vector messages (one per run).
    pub fn send_packets(&self) -> u64 {
        self.sends.iter().map(|pc| pc.runs.len() as u64).sum()
    }

    /// Number of incoming vector messages.
    pub fn recv_packets(&self) -> u64 {
        self.recvs.iter().map(|pc| pc.runs.len() as u64).sum()
    }
}

/// Append `runs` to the pair entry for `peer`, creating it on first use.
fn push_runs(pairs: &mut Vec<PairComm>, peer: i64, runs: &[CommRun]) {
    match pairs.iter_mut().find(|pc| pc.peer == peer) {
        Some(pc) => pc.runs.extend_from_slice(runs),
        None => pairs.push(PairComm {
            peer,
            runs: runs.to_vec(),
        }),
    }
}

/// Flatten an arithmetic schedule into runs for `slot`. `false` when the
/// schedule has no run form (guarded / repeated shapes).
fn schedule_to_runs(s: &Schedule, slot: usize, out: &mut Vec<CommRun>) -> bool {
    match s {
        Schedule::Empty => true,
        Schedule::Range { lo, hi } => {
            if lo <= hi {
                out.push(CommRun {
                    slot,
                    start: *lo,
                    step: 1,
                    count: hi - lo + 1,
                });
            }
            true
        }
        Schedule::Strided { start, step, count } => {
            if *count > 0 {
                out.push(CommRun {
                    slot,
                    start: *start,
                    step: *step,
                    count: *count,
                });
            }
            true
        }
        Schedule::Concat(parts) => parts.iter().all(|p| schedule_to_runs(p, slot, out)),
        _ => false,
    }
}

/// Greedily coalesce a sorted, deduplicated index list into arithmetic
/// runs: maximal equal-stride progressions, singletons as step-1 runs.
fn coalesce(v: &[i64], slot: usize) -> Vec<CommRun> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < v.len() {
        if k + 1 == v.len() {
            out.push(CommRun {
                slot,
                start: v[k],
                step: 1,
                count: 1,
            });
            break;
        }
        let step = v[k + 1] - v[k];
        let mut j = k + 1;
        while j + 1 < v.len() && v[j + 1] - v[j] == step {
            j += 1;
        }
        out.push(CommRun {
            slot,
            start: v[k],
            step,
            count: (j - k + 1) as i64,
        });
        k = j + 1;
    }
    out
}

/// Derive `Reside_p(slot) ∩ Modify_q` for every destination `q ≠ p` in
/// closed form. `None` when any required intersection is not arithmetic.
fn closed_form_slot(
    nodes: &[NodePlan],
    p: usize,
    slot: usize,
    reside: &Schedule,
) -> Option<Vec<Vec<CommRun>>> {
    let mut per_q: Vec<Vec<CommRun>> = vec![Vec::new(); nodes.len()];
    for (q, dst) in nodes.iter().enumerate() {
        if q == p {
            continue;
        }
        let set = crate::setops::intersect(reside, &dst.modify.schedule)?;
        if !schedule_to_runs(&set, slot, &mut per_q[q]) {
            return None;
        }
    }
    Some(per_q)
}

/// Derive the same sets by one enumeration pass over the reside
/// schedule, bucketing each index by the owner of its write target.
fn enumerate_slot(
    reside: &Schedule,
    slot: usize,
    f: &Fn1,
    dec_lhs: &Decomp1,
    p: usize,
    pmax: usize,
) -> Vec<Vec<CommRun>> {
    let mut buckets: Vec<Vec<i64>> = vec![Vec::new(); pmax];
    reside.for_each(|i| {
        let q = dec_lhs.proc_of(f.eval(i));
        if q as usize != p {
            buckets[q as usize].push(i);
        }
    });
    buckets
        .into_iter()
        .map(|mut v| {
            v.sort_unstable();
            v.dedup();
            coalesce(&v, slot)
        })
        .collect()
}

/// Build the per-node communication plans for a whole SPMD program.
///
/// Each ordered pair set is derived exactly once and pushed to both the
/// sender's `sends` and the receiver's `recvs`, so the two sides hold
/// identical run lists in identical order — the invariant the vectorized
/// executor's `(source, run, offset)` addressing relies on.
pub fn plan_comm(nodes: &[NodePlan], f: &Fn1, dec_lhs: &Decomp1) -> Vec<NodeCommPlan> {
    let pmax = nodes.len();
    let mut plans: Vec<NodeCommPlan> = vec![NodeCommPlan::default(); pmax];
    for (p, node) in nodes.iter().enumerate() {
        for (slot, rp) in node.resides.iter().enumerate() {
            if rp.replicated {
                continue;
            }
            let reside = &rp.opt.schedule;
            let per_q = match closed_form_slot(nodes, p, slot, reside) {
                Some(per_q) => {
                    plans[p].closed_form_slots += 1;
                    per_q
                }
                None => {
                    plans[p].enumerated_slots += 1;
                    enumerate_slot(reside, slot, f, dec_lhs, p, pmax)
                }
            };
            for (q, runs) in per_q.iter().enumerate() {
                if q == p || runs.is_empty() {
                    continue;
                }
                push_runs(&mut plans[p].sends, q as i64, runs);
                push_runs(&mut plans[q].recvs, p as i64, runs);
            }
        }
    }
    for plan in &mut plans {
        plan.sends.sort_by_key(|pc| pc.peer);
        plan.recvs.sort_by_key(|pc| pc.peer);
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DecompMap, SpmdPlan};
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};

    fn copy_clause(imin: i64, imax: i64, f: Fn1, g: Fn1) -> Clause {
        Clause {
            iter: IndexSet::range(imin, imax),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::Ref(ArrayRef::d1("B", g)),
        }
    }

    fn decomps(a: Decomp1, b: Decomp1) -> DecompMap {
        let mut m = DecompMap::new();
        m.insert("A".into(), a);
        m.insert("B".into(), b);
        m
    }

    /// Expand every send run of `p` into `(peer, slot, i)` triples.
    fn expand_sends(plan: &NodeCommPlan) -> Vec<(i64, usize, i64)> {
        let mut out = Vec::new();
        for pc in &plan.sends {
            for run in &pc.runs {
                run.for_each(|i| out.push((pc.peer, run.slot, i)));
            }
        }
        out.sort_unstable();
        out
    }

    /// Brute-force reference: walk the reside schedules with an
    /// ownership test per element, exactly as the element-wise executor
    /// does.
    fn brute_sends(plan: &SpmdPlan, dec_lhs: &Decomp1, p: usize) -> Vec<(i64, usize, i64)> {
        let node = &plan.nodes[p];
        let mut out = Vec::new();
        for (slot, rp) in node.resides.iter().enumerate() {
            if rp.replicated {
                continue;
            }
            rp.opt.schedule.for_each(|i| {
                let q = dec_lhs.proc_of(plan.f.eval(i));
                if q as usize != p {
                    out.push((q, slot, i));
                }
            });
        }
        out.sort_unstable();
        out
    }

    fn check_plan(clause: &Clause, dm: &DecompMap, naive: bool) {
        let plan = if naive {
            SpmdPlan::build_naive(clause, dm).unwrap()
        } else {
            SpmdPlan::build(clause, dm).unwrap()
        };
        let dec_lhs = &dm["A"];
        for p in 0..plan.pmax as usize {
            let comm = &plan.nodes[p].comm;
            assert_eq!(
                expand_sends(comm),
                brute_sends(&plan, dec_lhs, p),
                "send sets p={p} naive={naive}"
            );
            // sender and receiver hold the same run lists
            for pc in &comm.sends {
                let dst = &plan.nodes[pc.peer as usize].comm;
                let back = dst
                    .recvs
                    .iter()
                    .find(|r| r.peer == p as i64)
                    .expect("receiver must expect this pair");
                assert_eq!(pc.runs, back.runs, "pair ({p} -> {}) runs", pc.peer);
            }
        }
        // global conservation: every element sent is expected somewhere
        let sent: u64 = plan.nodes.iter().map(|n| n.comm.send_elems()).sum();
        let recv: u64 = plan.nodes.iter().map(|n| n.comm.recv_elems()).sum();
        assert_eq!(sent, recv);
    }

    #[test]
    fn pair_sets_match_brute_force() {
        let n = 96i64;
        let e = Bounds::range(0, n - 1);
        let decs = [
            Decomp1::block(4, e),
            Decomp1::scatter(4, e),
            Decomp1::block_scatter(3, 4, e),
            Decomp1::replicated(4, e),
        ];
        let fns = [
            (Fn1::identity(), 0, n - 1),
            (Fn1::shift(5), 0, n - 6),
            (Fn1::affine(3, 1), 0, (n - 2) / 3),
            (Fn1::rotate(7, n), 0, n - 1),
        ];
        for da in &decs {
            if da.is_replicated() {
                continue; // writes need a real owner
            }
            for db in &decs {
                for (f, flo, fhi) in &fns {
                    for (g, glo, ghi) in &fns {
                        let (lo, hi) = ((*flo).max(*glo), (*fhi).min(*ghi));
                        if lo > hi {
                            continue;
                        }
                        let clause = copy_clause(lo, hi, f.clone(), g.clone());
                        let dm = decomps(da.clone(), db.clone());
                        check_plan(&clause, &dm, false);
                        check_plan(&clause, &dm, true);
                    }
                }
            }
        }
    }

    #[test]
    fn optimized_plans_use_closed_forms() {
        let n = 1024i64;
        let clause = copy_clause(0, n - 1, Fn1::identity(), Fn1::affine(3, 1));
        let dm = decomps(
            Decomp1::scatter(8, Bounds::range(0, n - 1)),
            Decomp1::scatter(8, Bounds::range(0, 3 * n)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        for node in &plan.nodes {
            assert_eq!(node.comm.enumerated_slots, 0, "p={}", node.p);
        }
        // scatter/scatter with an affine access coalesces each pair into
        // very few strided runs: far fewer packets than elements
        let elems: u64 = plan.nodes.iter().map(|n| n.comm.send_elems()).sum();
        let packets: u64 = plan.nodes.iter().map(|n| n.comm.send_packets()).sum();
        assert!(elems >= 10 * packets, "elems={elems} packets={packets}");
    }

    #[test]
    fn naive_plans_fall_back_to_enumeration() {
        let n = 64i64;
        let clause = copy_clause(0, n - 1, Fn1::identity(), Fn1::identity());
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
        );
        let plan = SpmdPlan::build_naive(&clause, &dm).unwrap();
        let enumerated: u64 = plan.nodes.iter().map(|n| n.comm.enumerated_slots).sum();
        assert!(enumerated > 0);
    }

    #[test]
    fn replicated_reads_have_no_runs() {
        let n = 32i64;
        let clause = copy_clause(0, n - 1, Fn1::identity(), Fn1::identity());
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::replicated(4, Bounds::range(0, n - 1)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        for node in &plan.nodes {
            assert!(node.comm.sends.is_empty());
            assert!(node.comm.recvs.is_empty());
        }
    }

    #[test]
    fn coalesce_handles_irregular_gaps() {
        let v = [0, 1, 2, 10, 14, 18, 40];
        let runs = coalesce(&v, 0);
        let mut expanded = Vec::new();
        for r in &runs {
            r.for_each(|i| expanded.push(i));
        }
        assert_eq!(expanded, v);
        assert!(runs.len() <= 3, "{runs:?}");
    }
}
