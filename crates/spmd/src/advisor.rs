//! Automatic decomposition selection.
//!
//! The paper automates code generation *given* a decomposition and lists
//! "run-time optimizations" as future work. The advisor closes the loop:
//! enumerate candidate layouts per array, plan every clause of the
//! program under each assignment, and rank assignments by a combined
//! cost — communication volume plus critical-path work (load imbalance).
//! It is exhaustive over a small candidate family, which is exactly what
//! the closed-form cost analysis makes affordable: no execution needed.

use crate::compiled::decomp_fingerprint;
use crate::program::{CommStats, DecompMap, SpmdPlan};
use std::collections::BTreeMap;
use vcal_core::{Bounds, Clause};
use vcal_decomp::Decomp1;

/// A scored decomposition assignment.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The assignment.
    pub decomps: DecompMap,
    /// FNV-1a fingerprint of the assignment (see
    /// [`crate::compiled::decomp_fingerprint`]) — the total-order
    /// tie-break when two assignments price identically, and the key
    /// the tuner's pricing cache uses.
    pub fingerprint: u64,
    /// Total elements communicated across all clauses.
    pub comm: u64,
    /// The largest per-processor work over all clauses (critical path).
    pub max_work: u64,
    /// Combined cost: `comm * comm_weight + max_work`.
    pub cost: f64,
}

/// Advisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorOptions {
    /// Relative cost of communicating one element vs one local iteration
    /// (the classic "communication is ~10-100x compute" knob).
    pub comm_weight: f64,
    /// Block sizes to consider for block-scatter candidates.
    pub bs_sizes: [i64; 2],
}

impl Default for AdvisorOptions {
    fn default() -> Self {
        AdvisorOptions {
            comm_weight: 16.0,
            bs_sizes: [4, 16],
        }
    }
}

/// The candidate layout family for one array: Block, Scatter, and
/// BlockScatter(b) for each configured block size that fits the extent.
/// Deterministic and shared by the advisor and the auto-tuner.
pub fn candidates_for(extent: Bounds, pmax: i64, opts: &AdvisorOptions) -> Vec<Decomp1> {
    let mut v = vec![Decomp1::block(pmax, extent), Decomp1::scatter(pmax, extent)];
    for b in opts.bs_sizes {
        if b >= 1 && b * pmax <= extent.count() as i64 * 2 {
            v.push(Decomp1::block_scatter(b, pmax, extent));
        }
    }
    v
}

/// Enumerate decomposition assignments for every array and rank them.
///
/// `extents` gives each array's index range; `pmax` the processor count.
/// Returns candidates sorted best-first. The search is exhaustive, so
/// the number of arrays should stay small (the cross product is
/// `|family|^arrays`; 4 arrays × 4 layouts = 256 plans).
pub fn advise(
    clauses: &[Clause],
    extents: &BTreeMap<String, Bounds>,
    pmax: i64,
    opts: AdvisorOptions,
) -> Result<Vec<Candidate>, String> {
    let names: Vec<&String> = extents.keys().collect();
    if names.is_empty() {
        return Err("no arrays to decompose".into());
    }
    if names.len() > 5 {
        return Err("advisor search space too large (> 5 arrays)".into());
    }
    let families: Vec<Vec<Decomp1>> = names
        .iter()
        .map(|n| candidates_for(extents[*n], pmax, &opts))
        .collect();

    let mut out = Vec::new();
    let mut pick = vec![0usize; names.len()];
    loop {
        // build this assignment
        let mut dm = DecompMap::new();
        for (k, name) in names.iter().enumerate() {
            dm.insert((*name).clone(), families[k][pick[k]].clone());
        }
        // score it over all clauses
        let mut comm = 0u64;
        let mut max_work = 0u64;
        let mut feasible = true;
        for clause in clauses {
            match SpmdPlan::build(clause, &dm) {
                Ok(plan) => {
                    let stats = CommStats::of_plan(&plan, &dm);
                    comm += stats.sends;
                    max_work += plan
                        .nodes
                        .iter()
                        .map(|n| n.modify.schedule.work_estimate())
                        .max()
                        .unwrap_or(0);
                }
                Err(_) => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            let cost = comm as f64 * opts.comm_weight + max_work as f64;
            let fingerprint = decomp_fingerprint(&dm, names.iter().map(|n| n.as_str()));
            out.push(Candidate {
                decomps: dm,
                fingerprint,
                comm,
                max_work,
                cost,
            });
        }
        // advance the odometer
        let mut k = 0;
        loop {
            if k == names.len() {
                // total order: cost first, decomposition fingerprint as
                // the tie-break — so equal-cost assignments always rank
                // in the same byte-stable order across runs
                out.sort_by(|a, b| {
                    a.cost
                        .total_cmp(&b.cost)
                        .then(a.fingerprint.cmp(&b.fingerprint))
                });
                return Ok(out);
            }
            pick[k] += 1;
            if pick[k] < families[k].len() {
                break;
            }
            pick[k] = 0;
            k += 1;
        }
    }
}

/// One-line description of an assignment.
pub fn describe(c: &Candidate) -> String {
    let parts: Vec<String> = c
        .decomps
        .iter()
        .map(|(n, d)| format!("{n}: {}", d.dist().name()))
        .collect();
    format!(
        "{} — comm {} elems, critical work {}, cost {:.0}",
        parts.join(", "),
        c.comm,
        c.max_work,
        c.cost
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Distribution;

    fn stencil(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
        }
    }

    #[test]
    fn advisor_picks_block_for_stencils() {
        let n = 256;
        let mut extents = BTreeMap::new();
        extents.insert("U".to_string(), Bounds::range(0, n - 1));
        extents.insert("V".to_string(), Bounds::range(0, n - 1));
        let ranked = advise(&[stencil(n)], &extents, 8, AdvisorOptions::default()).unwrap();
        assert!(!ranked.is_empty());
        let best = &ranked[0];
        assert!(
            matches!(best.decomps["U"].dist(), Distribution::Block { .. }),
            "{}",
            describe(best)
        );
        assert!(
            matches!(best.decomps["V"].dist(), Distribution::Block { .. }),
            "{}",
            describe(best)
        );
        // and scatter/scatter must rank strictly worse
        let scatter_cost = ranked
            .iter()
            .find(|c| {
                c.decomps["U"].dist() == Distribution::Scatter
                    && c.decomps["V"].dist() == Distribution::Scatter
            })
            .unwrap()
            .cost;
        assert!(best.cost < scatter_cost);
    }

    #[test]
    fn advisor_aligns_with_a_fixed_consumer() {
        // two clauses: stencil on U/V, then V feeds W elementwise.
        // All-block should win overall.
        let n = 128;
        let consume = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("W", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        };
        let mut extents = BTreeMap::new();
        for a in ["U", "V", "W"] {
            extents.insert(a.to_string(), Bounds::range(0, n - 1));
        }
        let ranked = advise(
            &[stencil(n), consume],
            &extents,
            4,
            AdvisorOptions::default(),
        )
        .unwrap();
        let best = &ranked[0];
        // V and W must agree (zero comm for the consume clause)
        assert_eq!(
            best.decomps["V"].dist(),
            best.decomps["W"].dist(),
            "{}",
            describe(best)
        );
        assert_eq!(best.comm, 2 * 3); // stencil boundary traffic only
    }

    #[test]
    fn candidate_ranking_is_sorted() {
        let n = 64;
        let mut extents = BTreeMap::new();
        extents.insert("U".to_string(), Bounds::range(0, n - 1));
        extents.insert("V".to_string(), Bounds::range(0, n - 1));
        let ranked = advise(&[stencil(n)], &extents, 4, AdvisorOptions::default()).unwrap();
        for pair in ranked.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
        }
        // 4 candidates per array (block, scatter, bs4, bs16), 2 arrays
        assert_eq!(ranked.len(), 16);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(advise(&[], &BTreeMap::new(), 4, AdvisorOptions::default()).is_err());
    }

    #[test]
    fn ranking_is_deterministic_and_totally_ordered() {
        // a clause with no reads: every assignment of the read-free
        // array family costs the same work and zero comm, so the whole
        // ranking is one big cost tie — the fingerprint tie-break must
        // impose a single byte-stable order
        let n = 64;
        let constant = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Lit(1.0),
        };
        let mut extents = BTreeMap::new();
        extents.insert("A".to_string(), Bounds::range(0, n - 1));
        extents.insert("B".to_string(), Bounds::range(0, n - 1));
        let a = advise(
            std::slice::from_ref(&constant),
            &extents,
            4,
            AdvisorOptions::default(),
        )
        .unwrap();
        let b = advise(&[constant], &extents, 4, AdvisorOptions::default()).unwrap();
        let render = |v: &[Candidate]| -> Vec<String> { v.iter().map(describe).collect() };
        assert_eq!(render(&a), render(&b), "two runs must rank identically");
        for pair in a.windows(2) {
            assert!(
                (pair[0].cost, pair[0].fingerprint) < (pair[1].cost, pair[1].fingerprint),
                "strict total order violated: {} !< {}",
                describe(&pair[0]),
                describe(&pair[1])
            );
        }
    }
}
