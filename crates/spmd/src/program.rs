//! SPMD node plans: the per-processor product of the paper's Section 2.6
//! derivation, ready for execution by `vcal-machine`.
//!
//! For a 1-D clause `∆(i ∈ (imin:imax)) ◊ [f(i)]A := Expr([g(i)]B, ...)`
//! and a decomposition assignment for every array, an [`SpmdPlan`] holds,
//! for each processor `p`:
//!
//! * the **Modify** schedule — the owner-computes iteration set
//!   `{ i | proc_A(f(i)) = p }`, optimized per Table I;
//! * one **Reside** schedule per read reference — `{ i | proc_B(g(i)) = p }`,
//!   from which the distributed-memory template derives its send set
//!   (`Reside_p \ Modify_p`) with an O(1) ownership test per element
//!   instead of a set-difference enumeration.

use crate::comm::NodeCommPlan;
use crate::optimizer::{optimize, Optimized};
use std::collections::BTreeMap;
use vcal_core::func::Fn1;
use vcal_core::{Clause, Ordering};
use vcal_decomp::Decomp1;

/// Decomposition assignment: array name → its decomposition.
pub type DecompMap = BTreeMap<String, Decomp1>;

/// One read access of the clause, with its per-processor Reside schedule.
#[derive(Debug, Clone)]
pub struct ResidePlan {
    /// The read array.
    pub array: String,
    /// Its access function `g`.
    pub g: Fn1,
    /// `{ i | proc_B(g(i)) = p }`, optimized.
    pub opt: Optimized,
    /// Whether the array is replicated (reads never communicate).
    pub replicated: bool,
}

/// The per-processor slice of an SPMD program.
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Processor id.
    pub p: i64,
    /// Owner-computes iteration schedule for the written array.
    pub modify: Optimized,
    /// Reside schedules, one per distinct read reference.
    pub resides: Vec<ResidePlan>,
    /// Plan-time communication schedule: per-peer send/receive runs
    /// derived from `Reside_p ∩ Modify_q` (see [`crate::comm`]).
    pub comm: NodeCommPlan,
}

/// A complete SPMD plan for a 1-D clause.
#[derive(Debug, Clone)]
pub struct SpmdPlan {
    /// Number of processors.
    pub pmax: i64,
    /// Loop bounds `(imin, imax)`.
    pub loop_bounds: (i64, i64),
    /// The written array's name.
    pub lhs_array: String,
    /// The written array's access function `f`.
    pub f: Fn1,
    /// The clause ordering (`//` plans execute in parallel; `•` plans are
    /// only valid on a single processor or with DOACROSS-style sync, which
    /// the machines reject).
    pub ordering: Ordering,
    /// Per-processor plans, indexed by `p`.
    pub nodes: Vec<NodePlan>,
}

/// Errors from plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The clause iterates a multi-dimensional index set.
    NotOneDimensional,
    /// An array in the clause has no decomposition assigned.
    MissingDecomposition(String),
    /// Arrays are decomposed over different processor counts.
    ProcessorCountMismatch,
    /// The iteration set carries a non-trivial compile-time predicate
    /// (not supported by the closed-form schedules).
    PredicatedIteration,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NotOneDimensional => {
                write!(f, "SPMD plans require a 1-D iteration space")
            }
            PlanError::MissingDecomposition(a) => {
                write!(f, "array `{a}` has no decomposition assigned")
            }
            PlanError::ProcessorCountMismatch => {
                write!(f, "all decompositions must use the same processor count")
            }
            PlanError::PredicatedIteration => {
                write!(
                    f,
                    "iteration sets with compile-time predicates are not supported"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl SpmdPlan {
    /// Derive the SPMD plan of `clause` under `decomps` — the executable
    /// form of the paper's Eq. (3).
    pub fn build(clause: &Clause, decomps: &DecompMap) -> Result<SpmdPlan, PlanError> {
        Self::build_impl(clause, decomps, false)
    }

    /// Like [`SpmdPlan::build`] but with every schedule left in naive
    /// guarded form — the baseline whose run-time membership tests the
    /// paper's optimizations eliminate.
    pub fn build_naive(clause: &Clause, decomps: &DecompMap) -> Result<SpmdPlan, PlanError> {
        Self::build_impl(clause, decomps, true)
    }

    fn build_impl(
        clause: &Clause,
        decomps: &DecompMap,
        naive: bool,
    ) -> Result<SpmdPlan, PlanError> {
        if clause.iter.dims() != 1 {
            return Err(PlanError::NotOneDimensional);
        }
        if !clause.iter.pred.is_true() {
            return Err(PlanError::PredicatedIteration);
        }
        let imin = clause.iter.bounds.lo()[0];
        let imax = clause.iter.bounds.hi()[0];

        let f = clause
            .lhs
            .map
            .as_fn1()
            .cloned()
            .ok_or(PlanError::NotOneDimensional)?;
        let dec_lhs = decomps
            .get(&clause.lhs.array)
            .ok_or_else(|| PlanError::MissingDecomposition(clause.lhs.array.clone()))?;
        let pmax = dec_lhs.pmax();

        // gather the distinct read accesses (array, g)
        let mut reads: Vec<(String, Fn1)> = Vec::new();
        for r in clause.read_refs() {
            let g = r
                .map
                .as_fn1()
                .cloned()
                .ok_or(PlanError::NotOneDimensional)?;
            if !reads.iter().any(|(a, h)| *a == r.array && *h == g) {
                reads.push((r.array.clone(), g));
            }
        }
        for (a, _) in &reads {
            let d = decomps
                .get(a)
                .ok_or_else(|| PlanError::MissingDecomposition(a.clone()))?;
            if d.pmax() != pmax {
                return Err(PlanError::ProcessorCountMismatch);
            }
        }

        let pick = |g: &Fn1, d: &Decomp1, p: i64| {
            if naive {
                Optimized {
                    schedule: crate::optimizer::naive_schedule(g, d, imin, imax, p),
                    kind: crate::optimizer::OptKind::Naive,
                }
            } else {
                optimize(g, d, imin, imax, p)
            }
        };
        let mut nodes = (0..pmax)
            .map(|p| {
                let modify = pick(&f, dec_lhs, p);
                let resides = reads
                    .iter()
                    .map(|(a, g)| {
                        let d = &decomps[a];
                        let opt = if d.is_replicated() {
                            // every index resides here; communication never
                            // needed for this read
                            Optimized {
                                schedule: crate::schedule::Schedule::range(imin, imax),
                                kind: crate::optimizer::OptKind::ReplicatedOwner,
                            }
                        } else {
                            pick(g, d, p)
                        };
                        ResidePlan {
                            array: a.clone(),
                            g: g.clone(),
                            opt,
                            replicated: d.is_replicated(),
                        }
                    })
                    .collect();
                NodePlan {
                    p,
                    modify,
                    resides,
                    comm: NodeCommPlan::default(),
                }
            })
            .collect::<Vec<_>>();

        let comms = crate::comm::plan_comm(&nodes, &f, dec_lhs);
        for (node, comm) in nodes.iter_mut().zip(comms) {
            node.comm = comm;
        }

        Ok(SpmdPlan {
            pmax,
            loop_bounds: (imin, imax),
            lhs_array: clause.lhs.array.clone(),
            f,
            ordering: clause.ordering,
            nodes,
        })
    }

    /// Sum of the per-processor loop-overhead work (Section 3's complexity
    /// measure): tests + visits across all processors.
    pub fn total_work(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.modify.schedule.work_estimate())
            .sum()
    }
}

/// Communication statistics for a clause under given decompositions,
/// computed per the Section 2.10 classification (pure analysis — no
/// machine required).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Elements sent between distinct processors.
    pub sends: u64,
    /// Elements consumed from remote memories (equals `sends`).
    pub receives: u64,
    /// Purely local updates.
    pub local_updates: u64,
}

impl CommStats {
    /// Analyze a plan: for every read of every modify-iteration, classify
    /// local vs remote.
    pub fn of_plan(plan: &SpmdPlan, decomps: &DecompMap) -> CommStats {
        let mut stats = CommStats::default();
        for node in &plan.nodes {
            let mut remote_reads_here = 0u64;
            let mut all_local = 0u64;
            node.modify.schedule.for_each(|i| {
                let mut any_remote = false;
                for rp in &node.resides {
                    if rp.replicated {
                        continue;
                    }
                    let d = &decomps[&rp.array];
                    if d.proc_of(rp.g.eval(i)) != node.p {
                        remote_reads_here += 1;
                        any_remote = true;
                    }
                }
                if !any_remote {
                    all_local += 1;
                }
            });
            stats.sends += remote_reads_here;
            stats.receives += remote_reads_here;
            stats.local_updates += all_local;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::{ArrayRef, Bounds, Expr, Guard, IndexSet};

    fn copy_clause(n: i64, f: Fn1, g: Fn1) -> Clause {
        Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", f),
            rhs: Expr::Ref(ArrayRef::d1("B", g)),
        }
    }

    fn decomps(a: Decomp1, b: Decomp1) -> DecompMap {
        let mut m = DecompMap::new();
        m.insert("A".into(), a);
        m.insert("B".into(), b);
        m
    }

    #[test]
    fn plan_partitions_iterations() {
        let n = 64;
        let clause = copy_clause(n, Fn1::identity(), Fn1::identity());
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let mut seen = vec![0u32; n as usize];
        for node in &plan.nodes {
            node.modify.schedule.for_each(|i| seen[i as usize] += 1);
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn comm_stats_block_vs_block_is_zero() {
        let n = 64;
        let clause = copy_clause(n, Fn1::identity(), Fn1::identity());
        let a = Decomp1::block(4, Bounds::range(0, n - 1));
        let dm = decomps(a.clone(), a);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let stats = CommStats::of_plan(&plan, &dm);
        assert_eq!(stats.sends, 0);
        assert_eq!(stats.local_updates, 64);
    }

    #[test]
    fn comm_stats_block_vs_scatter_communicates() {
        let n = 64;
        let clause = copy_clause(n, Fn1::identity(), Fn1::identity());
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::scatter(4, Bounds::range(0, n - 1)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let stats = CommStats::of_plan(&plan, &dm);
        // block p owns i in [16p, 16p+15]; scatter owner is i mod 4 == p.
        // locals: i with i div 16 == i mod 4 -> 16 of 64
        assert_eq!(stats.local_updates, 16);
        assert_eq!(stats.sends, 48);
        assert_eq!(stats.receives, stats.sends);
    }

    #[test]
    fn stencil_on_block_communicates_only_boundaries() {
        // A[i] := B[i-1], both block: one boundary element per processor pair
        let clause = Clause {
            iter: IndexSet::range(1, 63),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(-1))),
        };
        let a = Decomp1::block(4, Bounds::range(0, 63));
        let dm = decomps(a.clone(), a);
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let stats = CommStats::of_plan(&plan, &dm);
        assert_eq!(stats.sends, 3); // p1,p2,p3 each need one halo element
        assert_eq!(stats.local_updates, 60);
    }

    #[test]
    fn replicated_reads_never_communicate() {
        let n = 32;
        let clause = copy_clause(n, Fn1::identity(), Fn1::identity());
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, n - 1)),
            Decomp1::replicated(4, Bounds::range(0, n - 1)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let stats = CommStats::of_plan(&plan, &dm);
        assert_eq!(stats.sends, 0);
        assert_eq!(stats.local_updates, 32);
    }

    #[test]
    fn guard_reads_are_tracked() {
        // clause with a guard on C adds C to reside plans
        let clause = Clause {
            iter: IndexSet::range(0, 15),
            ordering: Ordering::Par,
            guard: Guard::Cmp {
                lhs: ArrayRef::d1("C", Fn1::identity()),
                op: vcal_core::CmpOp::Gt,
                rhs: 0.0,
            },
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let mut dm = decomps(
            Decomp1::block(4, Bounds::range(0, 15)),
            Decomp1::block(4, Bounds::range(0, 15)),
        );
        dm.insert("C".into(), Decomp1::scatter(4, Bounds::range(0, 15)));
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        assert_eq!(plan.nodes[0].resides.len(), 2); // B and C
    }

    #[test]
    fn errors() {
        let clause = copy_clause(8, Fn1::identity(), Fn1::identity());
        let dm = DecompMap::new();
        assert_eq!(
            SpmdPlan::build(&clause, &dm).unwrap_err(),
            PlanError::MissingDecomposition("A".into())
        );
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, 7)),
            Decomp1::block(2, Bounds::range(0, 7)),
        );
        assert_eq!(
            SpmdPlan::build(&clause, &dm).unwrap_err(),
            PlanError::ProcessorCountMismatch
        );
    }

    #[test]
    fn dedup_identical_reads() {
        // B[i] appearing twice in the expression produces one reside plan
        let clause = Clause {
            iter: IndexSet::range(0, 15),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
                Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
            ),
        };
        let dm = decomps(
            Decomp1::block(4, Bounds::range(0, 15)),
            Decomp1::block(4, Bounds::range(0, 15)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        assert_eq!(plan.nodes[0].resides.len(), 1);
    }
}
