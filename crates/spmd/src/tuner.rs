//! Decomposition auto-tuner: the candidate-space half.
//!
//! The advisor ([`crate::advisor`]) ranks decomposition assignments by
//! a *static* heuristic (communication volume × a fixed weight plus
//! critical-path work). The tuner closes the loop the paper's §4 cost
//! model opens: it enumerates the same bounded candidate family —
//! Block / Scatter / BlockScatter(b) per array — but carries the full
//! per-clause [`SpmdPlan`]s forward so an *execution-calibrated* cost
//! model (fit from measured trace timings, see
//! `vcal-machine::perfmodel::CalibratedModel`) can price every
//! candidate from its plans alone, without executing any of them.
//!
//! This module is machine-independent: it owns the candidate space and
//! its deterministic total order (heuristic cost, then decomposition
//! fingerprint — so rankings are byte-stable across runs); pricing and
//! the amortized-redistribution decision live in `vcal-machine`
//! (`DistSession::run_program_tuned`), which depends on this crate.

use crate::advisor::{candidates_for, AdvisorOptions};
use crate::compiled::{clause_arrays, decomp_fingerprint};
use crate::program::{CommStats, DecompMap, SpmdPlan};
use std::collections::BTreeMap;
use vcal_core::{Bounds, Clause};

/// Tuner enumeration options.
#[derive(Debug, Clone, Copy)]
pub struct TuneSpaceOptions {
    /// Maximum number of candidates surviving enumeration (the
    /// `--tune-budget`). The incumbent assignment is priced regardless,
    /// so the tuner can always compare "switch" against "stay".
    pub budget: usize,
    /// The advisor knobs reused for the per-array layout family and the
    /// heuristic pre-ranking.
    pub advisor: AdvisorOptions,
}

impl Default for TuneSpaceOptions {
    fn default() -> Self {
        TuneSpaceOptions {
            budget: 16,
            advisor: AdvisorOptions::default(),
        }
    }
}

/// One enumerated decomposition assignment, with every clause's plan
/// built under it — ready for calibrated pricing.
#[derive(Debug, Clone)]
pub struct TuneCandidate {
    /// The assignment (covers exactly the arrays the program touches).
    pub decomps: DecompMap,
    /// FNV-1a fingerprint of the assignment over the touched arrays —
    /// the deterministic tie-break and the pricing-cache key component.
    pub fingerprint: u64,
    /// One plan per program clause, in program order.
    pub plans: Vec<SpmdPlan>,
    /// The advisor's static heuristic cost (pre-ranking only; the
    /// calibrated model re-prices every surviving candidate).
    pub heuristic_cost: f64,
}

/// The enumerated, deterministically ordered candidate space.
#[derive(Debug, Clone)]
pub struct TuneSpace {
    /// Candidates, best-heuristic-first, truncated to the budget.
    pub candidates: Vec<TuneCandidate>,
    /// Assignments enumerated before the budget cut (feasible ones).
    pub enumerated: usize,
}

/// Enumerate the candidate space for a clause program.
///
/// `extents` maps each *tunable* array (every array the program
/// touches) to its index range; `pmax` is the processor count. The
/// cross product of the per-array families is enumerated exhaustively
/// (bounded to ≤ 5 arrays, like the advisor), each feasible assignment
/// gets a plan per clause plus the advisor heuristic, and the result is
/// ordered by `(heuristic_cost, fingerprint)` — a strict total order,
/// byte-stable across runs — then truncated to `opts.budget`.
pub fn enumerate_candidates(
    clauses: &[Clause],
    extents: &BTreeMap<String, Bounds>,
    pmax: i64,
    opts: &TuneSpaceOptions,
) -> Result<TuneSpace, String> {
    if clauses.is_empty() {
        return Err("no clauses to tune".into());
    }
    let names: Vec<&String> = extents.keys().collect();
    if names.is_empty() {
        return Err("no arrays to decompose".into());
    }
    if names.len() > 5 {
        return Err("tuner search space too large (> 5 arrays)".into());
    }
    if opts.budget == 0 {
        return Err("tune budget must be at least 1".into());
    }
    let families: Vec<Vec<_>> = names
        .iter()
        .map(|n| candidates_for(extents[*n], pmax, &opts.advisor))
        .collect();

    let mut out: Vec<TuneCandidate> = Vec::new();
    let mut enumerated = 0usize;
    let mut pick = vec![0usize; names.len()];
    'odometer: loop {
        let mut dm = DecompMap::new();
        for (k, name) in names.iter().enumerate() {
            dm.insert((*name).clone(), families[k][pick[k]].clone());
        }
        if let Some(c) = candidate_for_assignment(clauses, dm, opts) {
            enumerated += 1;
            out.push(c);
        }
        let mut k = 0;
        loop {
            if k == names.len() {
                break 'odometer;
            }
            pick[k] += 1;
            if pick[k] < families[k].len() {
                break;
            }
            pick[k] = 0;
            k += 1;
        }
    }
    out.sort_by(|a, b| {
        a.heuristic_cost
            .total_cmp(&b.heuristic_cost)
            .then(a.fingerprint.cmp(&b.fingerprint))
    });
    out.truncate(opts.budget);
    Ok(TuneSpace {
        candidates: out,
        enumerated,
    })
}

/// Build the [`TuneCandidate`] for one specific assignment, or `None`
/// if any clause has no plan under it. Public so the pricing layer can
/// force-include the incumbent assignment even when the budget cut or
/// an out-of-family layout (e.g. replicated) would exclude it.
pub fn candidate_for_assignment(
    clauses: &[Clause],
    dm: DecompMap,
    opts: &TuneSpaceOptions,
) -> Option<TuneCandidate> {
    let mut plans = Vec::with_capacity(clauses.len());
    let mut comm = 0u64;
    let mut max_work = 0u64;
    for clause in clauses {
        let plan = SpmdPlan::build(clause, &dm).ok()?;
        let stats = CommStats::of_plan(&plan, &dm);
        comm += stats.sends;
        max_work += plan
            .nodes
            .iter()
            .map(|n| n.modify.schedule.work_estimate())
            .max()
            .unwrap_or(0);
        plans.push(plan);
    }
    let heuristic_cost = comm as f64 * opts.advisor.comm_weight + max_work as f64;
    let fingerprint = decomp_fingerprint(&dm, dm.keys().map(String::as_str));
    Some(TuneCandidate {
        decomps: dm,
        fingerprint,
        plans,
        heuristic_cost,
    })
}

/// The arrays a clause program touches, sorted and deduplicated — the
/// tunable set whose extents [`enumerate_candidates`] needs.
pub fn program_arrays(clauses: &[Clause]) -> Vec<String> {
    let mut names: Vec<String> = clauses.iter().flat_map(clause_arrays).collect();
    names.sort();
    names.dedup();
    names
}

/// One-line description of an assignment: per-array layout names in
/// array order. Byte-stable for a given assignment.
pub fn describe_assignment(dm: &DecompMap) -> String {
    let parts: Vec<String> = dm
        .iter()
        .map(|(n, d)| format!("{n}: {}", d.dist().name()))
        .collect();
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::{Decomp1, Distribution};

    fn stencil(n: i64) -> Clause {
        Clause {
            iter: IndexSet::range(1, n - 2),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("V", Fn1::identity()),
            rhs: Expr::add(
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(-1))),
                Expr::Ref(ArrayRef::d1("U", Fn1::shift(1))),
            ),
        }
    }

    fn extents(n: i64, arrays: &[&str]) -> BTreeMap<String, Bounds> {
        arrays
            .iter()
            .map(|a| (a.to_string(), Bounds::range(0, n - 1)))
            .collect()
    }

    #[test]
    fn enumeration_is_deterministic_and_budgeted() {
        let clauses = [stencil(256)];
        let ex = extents(256, &["U", "V"]);
        let opts = TuneSpaceOptions::default();
        let a = enumerate_candidates(&clauses, &ex, 4, &opts).unwrap();
        let b = enumerate_candidates(&clauses, &ex, 4, &opts).unwrap();
        assert_eq!(a.enumerated, 16); // 4 layouts per array, 2 arrays
        assert_eq!(a.candidates.len(), 16);
        let fps =
            |s: &TuneSpace| -> Vec<u64> { s.candidates.iter().map(|c| c.fingerprint).collect() };
        assert_eq!(fps(&a), fps(&b));
        // the budget truncates the *tail* of the ranking
        let tight = enumerate_candidates(
            &clauses,
            &ex,
            4,
            &TuneSpaceOptions {
                budget: 3,
                ..TuneSpaceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(tight.candidates.len(), 3);
        assert_eq!(tight.enumerated, 16);
        assert_eq!(fps(&tight), fps(&a)[..3].to_vec());
    }

    #[test]
    fn stencil_space_ranks_block_first() {
        let clauses = [stencil(256)];
        let ex = extents(256, &["U", "V"]);
        let space = enumerate_candidates(&clauses, &ex, 8, &TuneSpaceOptions::default()).unwrap();
        let best = &space.candidates[0];
        assert!(matches!(
            best.decomps["U"].dist(),
            Distribution::Block { .. }
        ));
        assert!(matches!(
            best.decomps["V"].dist(),
            Distribution::Block { .. }
        ));
        assert_eq!(best.plans.len(), 1);
    }

    #[test]
    fn incumbent_force_include_handles_out_of_family_layouts() {
        let clauses = [stencil(64)];
        let mut dm = DecompMap::new();
        dm.insert("U".into(), Decomp1::replicated(4, Bounds::range(0, 63)));
        dm.insert("V".into(), Decomp1::block(4, Bounds::range(0, 63)));
        let c = candidate_for_assignment(&clauses, dm, &TuneSpaceOptions::default()).unwrap();
        assert_eq!(c.plans.len(), 1);
    }

    #[test]
    fn program_arrays_sorted_dedup() {
        let n = 32;
        let copy = Clause {
            iter: IndexSet::range(0, n - 1),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("U", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("V", Fn1::identity())),
        };
        assert_eq!(program_arrays(&[stencil(n), copy]), vec!["U", "V"]);
    }

    #[test]
    fn bad_inputs_rejected() {
        let ex = extents(64, &["U", "V"]);
        assert!(enumerate_candidates(&[], &ex, 4, &TuneSpaceOptions::default()).is_err());
        assert!(enumerate_candidates(
            &[stencil(64)],
            &BTreeMap::new(),
            4,
            &TuneSpaceOptions::default()
        )
        .is_err());
        assert!(enumerate_candidates(
            &[stencil(64)],
            &ex,
            4,
            &TuneSpaceOptions {
                budget: 0,
                ..TuneSpaceOptions::default()
            }
        )
        .is_err());
        let six = extents(64, &["A", "B", "C", "D", "E", "F"]);
        assert!(
            enumerate_candidates(&[stencil(64)], &six, 4, &TuneSpaceOptions::default())
                .unwrap_err()
                .contains("too large")
        );
    }
}
