//! Compiled compute kernels — the clause's element expression lowered
//! once, at plan time, into a flat postfix program.
//!
//! The paper's cost model charges the update phase *per element*; any
//! per-element constant therefore multiplies straight into the total.
//! Walking the [`Expr`] tree per element pays a recursion frame and a
//! `Box` pointer chase per operator plus a `BTreeMap` array lookup per
//! reference. [`CompiledKernel::compile`] removes all of it:
//!
//! * array references are resolved to dense *slot* numbers (positions
//!   in the plan's deduplicated read list — identical on every node,
//!   because the read list is built once from the clause before the
//!   per-processor split);
//! * the tree is flattened into postfix [`KernelOp`] bytecode evaluated
//!   by a single loop over a pre-sized value stack — no recursion, no
//!   pointer chasing;
//! * the dominant shapes are recognized into a [`FusedShape`] so the
//!   machines can run a specialized loop that skips even the bytecode
//!   dispatch: pure copy (which degrades to `copy_from_slice` on
//!   unit-stride runs), `a·X[g(i)] + b`, and 2/3-point stencil sums
//!   with an optional scale and offset.
//!
//! Bit-exactness contract: [`CompiledKernel::eval`] performs *exactly*
//! the operation sequence of [`vcal_core::Env::eval_expr`] — same
//! [`BinOp::apply`] calls in the same association order — so compiled
//! results are bit-identical to the interpreted reference. The fused
//! shapes only ever commute operands of a single `+` or `*` (IEEE-754
//! commutative for finite values and literals), never re-associate.

use vcal_core::{ArrayRef, BinOp, Expr};

/// One postfix instruction of a compiled kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelOp {
    /// Push the gathered value of read slot `n`.
    Slot(u16),
    /// Push a literal.
    Lit(f64),
    /// Push loop coordinate `idx[dim]` as a value.
    LoopVar(u8),
    /// Negate the top of stack.
    Neg,
    /// Pop two values, apply the operator (left operand popped second).
    Bin(BinOp),
}

/// A recognized fast-path shape of the right-hand side. All evaluation
/// orders mirror the source expression exactly (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedShape {
    /// `X[g(i)]` — pure copy of one slot.
    Copy {
        /// The copied read slot.
        slot: usize,
    },
    /// `(a · X[g(i)]) + b` with the multiply and/or add skipped when the
    /// source expression has no such factor (skipping matters: `x + 0.0`
    /// is not the identity for `-0.0`).
    Axpy {
        /// Optional scale factor `a`.
        a: Option<f64>,
        /// The read slot.
        slot: usize,
        /// Optional additive offset `b`.
        b: Option<f64>,
    },
    /// `scale · (X ± Y [± Z]) + offset` — a 2- or 3-point stencil sum
    /// with optional scale and offset, the Jacobi/heat-equation shape.
    Stencil {
        /// The summed read slots, in source order (2 or 3).
        slots: Vec<usize>,
        /// For 3-point sums: `true` for `(x+y)+z`, `false` for `x+(y+z)`.
        left_assoc: bool,
        /// Optional scale factor.
        scale: Option<f64>,
        /// Optional additive offset.
        offset: Option<f64>,
    },
    /// No fast path — evaluate the bytecode.
    Generic,
}

/// A clause expression compiled to postfix bytecode plus its recognized
/// fused shape. One kernel serves every node of a plan: slot numbering
/// comes from the clause's read list, which is node-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    ops: Vec<KernelOp>,
    max_stack: usize,
    /// The recognized fast-path shape (or [`FusedShape::Generic`]).
    pub fused: FusedShape,
    /// Number of read slots the kernel consumes.
    pub n_slots: usize,
}

impl CompiledKernel {
    /// Compile `rhs` against a slot resolver (array reference → read
    /// slot). Returns `None` when a reference fails to resolve — the
    /// caller falls back to the tree interpreter.
    pub fn compile<F>(rhs: &Expr, n_slots: usize, resolve: F) -> Option<CompiledKernel>
    where
        F: Fn(&ArrayRef) -> Option<usize>,
    {
        let mut ops = Vec::new();
        let max_stack = lower(rhs, &resolve, &mut ops)?;
        let fused = classify(rhs, &resolve);
        Some(CompiledKernel {
            ops,
            max_stack,
            fused,
            n_slots,
        })
    }

    /// The postfix program.
    pub fn ops(&self) -> &[KernelOp] {
        &self.ops
    }

    /// Capacity the evaluation stack needs (pre-size once, reuse).
    pub fn stack_capacity(&self) -> usize {
        self.max_stack
    }

    /// Evaluate the bytecode for loop index `idx` over the gathered
    /// slot values `vals`. Non-recursive: one loop over the ops with an
    /// explicit value stack (cleared, capacity retained across calls).
    #[inline]
    pub fn eval(&self, idx: &[i64], vals: &[f64], stack: &mut Vec<f64>) -> f64 {
        stack.clear();
        stack.reserve(self.max_stack);
        for op in &self.ops {
            match *op {
                KernelOp::Slot(s) => stack.push(vals.get(s as usize).copied().unwrap_or(0.0)),
                KernelOp::Lit(v) => stack.push(v),
                KernelOp::LoopVar(d) => {
                    stack.push(idx.get(d as usize).copied().unwrap_or(0) as f64)
                }
                KernelOp::Neg => {
                    if let Some(top) = stack.last_mut() {
                        *top = -*top;
                    }
                }
                KernelOp::Bin(op) => {
                    let b = stack.pop().unwrap_or(0.0);
                    let a = stack.pop().unwrap_or(0.0);
                    stack.push(op.apply(a, b));
                }
            }
        }
        stack.pop().unwrap_or(0.0)
    }
}

/// Emit postfix ops for `e`; returns the maximum stack depth reached.
fn lower<F>(e: &Expr, resolve: &F, out: &mut Vec<KernelOp>) -> Option<usize>
where
    F: Fn(&ArrayRef) -> Option<usize>,
{
    match e {
        Expr::Ref(r) => {
            let slot = resolve(r)?;
            out.push(KernelOp::Slot(u16::try_from(slot).ok()?));
            Some(1)
        }
        Expr::Lit(v) => {
            out.push(KernelOp::Lit(*v));
            Some(1)
        }
        Expr::LoopVar { dim } => {
            out.push(KernelOp::LoopVar(u8::try_from(*dim).ok()?));
            Some(1)
        }
        Expr::Neg(inner) => {
            let d = lower(inner, resolve, out)?;
            out.push(KernelOp::Neg);
            Some(d)
        }
        Expr::Bin(op, a, b) => {
            let da = lower(a, resolve, out)?;
            let db = lower(b, resolve, out)?;
            out.push(KernelOp::Bin(*op));
            // left value sits on the stack while the right subtree runs
            Some(da.max(db + 1))
        }
    }
}

/// Recognize the fused fast-path shape of `rhs`, if any.
fn classify<F>(rhs: &Expr, resolve: &F) -> FusedShape
where
    F: Fn(&ArrayRef) -> Option<usize>,
{
    // peel one additive literal offset: `core + b` / `b + core`
    let (core, offset) = match rhs {
        Expr::Bin(BinOp::Add, x, y) => match (x.as_ref(), y.as_ref()) {
            (c, Expr::Lit(b)) => (c, Some(*b)),
            (Expr::Lit(b), c) => (c, Some(*b)),
            _ => (rhs, None),
        },
        _ => (rhs, None),
    };
    // peel one multiplicative literal scale: `core * a` / `a * core`
    let (core, scale) = match core {
        Expr::Bin(BinOp::Mul, x, y) => match (x.as_ref(), y.as_ref()) {
            (c, Expr::Lit(a)) => (c, Some(*a)),
            (Expr::Lit(a), c) => (c, Some(*a)),
            _ => (core, None),
        },
        _ => (core, None),
    };
    let slot_of = |e: &Expr| match e {
        Expr::Ref(r) => resolve(r),
        _ => None,
    };
    if let Some(slot) = slot_of(core) {
        return match (scale, offset) {
            (None, None) => FusedShape::Copy { slot },
            (a, b) => FusedShape::Axpy { a, slot, b },
        };
    }
    if let Expr::Bin(BinOp::Add, x, y) = core {
        // 2-point: X + Y
        if let (Some(s0), Some(s1)) = (slot_of(x), slot_of(y)) {
            return FusedShape::Stencil {
                slots: vec![s0, s1],
                left_assoc: true,
                scale,
                offset,
            };
        }
        // 3-point: (X + Y) + Z
        if let (Expr::Bin(BinOp::Add, xa, xb), Some(s2)) = (x.as_ref(), slot_of(y)) {
            if let (Some(s0), Some(s1)) = (slot_of(xa), slot_of(xb)) {
                return FusedShape::Stencil {
                    slots: vec![s0, s1, s2],
                    left_assoc: true,
                    scale,
                    offset,
                };
            }
        }
        // 3-point: X + (Y + Z)
        if let (Some(s0), Expr::Bin(BinOp::Add, ya, yb)) = (slot_of(x), y.as_ref()) {
            if let (Some(s1), Some(s2)) = (slot_of(ya), slot_of(yb)) {
                return FusedShape::Stencil {
                    slots: vec![s0, s1, s2],
                    left_assoc: false,
                    scale,
                    offset,
                };
            }
        }
    }
    FusedShape::Generic
}

/// Operand-arity mismatch between a [`FusedShape`] and the slot values
/// handed to [`FusedShape::apply`]. Shapes are derived from the clause
/// at plan time, so a short operand slice is always a planner bug — it
/// is reported as a typed error instead of silently defaulting to 0.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// Operands the shape requires.
    pub expected: usize,
    /// Operands the caller supplied.
    pub got: usize,
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fused shape expects {} operand value(s), got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeMismatch {}

impl FusedShape {
    /// Apply the fused arithmetic to already-gathered slot values `xs`
    /// (in [`FusedShape`] slot order). Mirrors the source expression's
    /// operation order exactly. Fails with [`ShapeMismatch`] when the
    /// operand slice is shorter than the shape's arity (a planner bug).
    #[inline]
    pub fn apply(&self, xs: &[f64]) -> Result<f64, ShapeMismatch> {
        let need = self.read_slots().len();
        if xs.len() < need {
            return Err(ShapeMismatch {
                expected: need,
                got: xs.len(),
            });
        }
        Ok(match self {
            FusedShape::Copy { .. } => xs[0],
            FusedShape::Axpy { a, b, .. } => {
                let mut v = xs[0];
                if let Some(a) = a {
                    v *= a;
                }
                if let Some(b) = b {
                    v += b;
                }
                v
            }
            FusedShape::Stencil {
                slots,
                left_assoc,
                scale,
                offset,
            } => {
                let x0 = xs[0];
                let x1 = xs[1];
                let mut v = if slots.len() == 3 {
                    let x2 = xs[2];
                    if *left_assoc {
                        (x0 + x1) + x2
                    } else {
                        x0 + (x1 + x2)
                    }
                } else {
                    x0 + x1
                };
                if let Some(s) = scale {
                    v *= s;
                }
                if let Some(b) = offset {
                    v += b;
                }
                v
            }
            FusedShape::Generic => 0.0,
        })
    }

    /// The read slots this shape consumes, in evaluation order.
    ///
    /// Borrows from the shape (no per-call allocation — this sits on
    /// per-element hot paths).
    pub fn read_slots(&self) -> &[usize] {
        match self {
            FusedShape::Copy { slot } | FusedShape::Axpy { slot, .. } => std::slice::from_ref(slot),
            FusedShape::Stencil { slots, .. } => slots,
            FusedShape::Generic => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{Array, Bounds, Env, Ix};

    fn refs(names: &[(&str, Fn1)]) -> Vec<(String, Fn1)> {
        names
            .iter()
            .map(|(a, g)| (a.to_string(), g.clone()))
            .collect()
    }

    fn resolver(reads: &[(String, Fn1)]) -> impl Fn(&ArrayRef) -> Option<usize> + '_ {
        move |r: &ArrayRef| {
            let g = r.map.as_fn1()?;
            reads.iter().position(|(a, h)| *a == r.array && h == g)
        }
    }

    fn b(g: Fn1) -> Expr {
        Expr::Ref(ArrayRef::d1("B", g))
    }

    #[test]
    fn bytecode_matches_tree_interpreter_bitwise() {
        // kernel over two reads, evaluated against an Env the reference
        // interpreter also sees
        let reads = refs(&[("B", Fn1::shift(-1)), ("B", Fn1::shift(1))]);
        let exprs = vec![
            Expr::mul(
                Expr::Lit(0.5),
                Expr::add(b(Fn1::shift(-1)), b(Fn1::shift(1))),
            ),
            Expr::add(
                Expr::Neg(Box::new(b(Fn1::shift(-1)))),
                Expr::mul(b(Fn1::shift(1)), Expr::Lit(3.25)),
            ),
            Expr::Bin(
                BinOp::Div,
                Box::new(b(Fn1::shift(1))),
                Box::new(Expr::add(b(Fn1::shift(-1)), Expr::Lit(1.5e6))),
            ),
            Expr::add(Expr::LoopVar { dim: 0 }, b(Fn1::shift(1))),
        ];
        let mut env = Env::new();
        env.insert(
            "B",
            Array::from_fn(Bounds::range(-2, 66), |i| (i.scalar() as f64) * 0.37 - 3.0),
        );
        let mut stack = Vec::new();
        for e in &exprs {
            let k = CompiledKernel::compile(e, reads.len(), resolver(&reads)).expect("compiles");
            for i in 0..64i64 {
                let vals: Vec<f64> = reads
                    .iter()
                    .map(|(a, g)| env.get(a).unwrap().get(&Ix::d1(g.eval(i))))
                    .collect();
                let want = env.eval_expr(e, &Ix::d1(i));
                let got = k.eval(&[i], &vals, &mut stack);
                assert_eq!(got.to_bits(), want.to_bits(), "expr={e:?} i={i}");
            }
        }
    }

    #[test]
    fn fused_shapes_recognized_and_bit_exact() {
        let reads = refs(&[
            ("B", Fn1::shift(-1)),
            ("B", Fn1::shift(1)),
            ("B", Fn1::identity()),
        ]);
        let cases: Vec<(Expr, FusedShape)> = vec![
            (b(Fn1::shift(-1)), FusedShape::Copy { slot: 0 }),
            (
                Expr::mul(Expr::Lit(2.0), b(Fn1::identity())),
                FusedShape::Axpy {
                    a: Some(2.0),
                    slot: 2,
                    b: None,
                },
            ),
            (
                Expr::add(
                    Expr::mul(b(Fn1::identity()), Expr::Lit(2.0)),
                    Expr::Lit(7.0),
                ),
                FusedShape::Axpy {
                    a: Some(2.0),
                    slot: 2,
                    b: Some(7.0),
                },
            ),
            (
                Expr::mul(
                    Expr::Lit(0.5),
                    Expr::add(b(Fn1::shift(-1)), b(Fn1::shift(1))),
                ),
                FusedShape::Stencil {
                    slots: vec![0, 1],
                    left_assoc: true,
                    scale: Some(0.5),
                    offset: None,
                },
            ),
            (
                Expr::add(
                    Expr::mul(
                        Expr::add(
                            Expr::add(b(Fn1::shift(-1)), b(Fn1::identity())),
                            b(Fn1::shift(1)),
                        ),
                        Expr::Lit(0.25),
                    ),
                    Expr::Lit(-1.0),
                ),
                FusedShape::Stencil {
                    slots: vec![0, 2, 1],
                    left_assoc: true,
                    scale: Some(0.25),
                    offset: Some(-1.0),
                },
            ),
        ];
        let mut env = Env::new();
        env.insert(
            "B",
            Array::from_fn(Bounds::range(-2, 34), |i| (i.scalar() as f64) * -1.7 + 0.3),
        );
        for (e, want_shape) in &cases {
            let k = CompiledKernel::compile(e, reads.len(), resolver(&reads)).expect("compiles");
            assert_eq!(&k.fused, want_shape, "expr={e:?}");
            for i in 0..32i64 {
                let vals: Vec<f64> = reads
                    .iter()
                    .map(|(a, g)| env.get(a).unwrap().get(&Ix::d1(g.eval(i))))
                    .collect();
                let shape_vals: Vec<f64> = k.fused.read_slots().iter().map(|s| vals[*s]).collect();
                let want = env.eval_expr(e, &Ix::d1(i));
                assert_eq!(
                    k.fused.apply(&shape_vals).unwrap().to_bits(),
                    want.to_bits(),
                    "expr={e:?} i={i}"
                );
            }
        }
    }

    #[test]
    fn odd_shapes_fall_back_to_generic() {
        let reads = refs(&[("B", Fn1::identity()), ("C", Fn1::identity())]);
        let odd = vec![
            // subtraction core is not a stencil sum
            Expr::Bin(
                BinOp::Sub,
                Box::new(b(Fn1::identity())),
                Box::new(Expr::Ref(ArrayRef::d1("C", Fn1::identity()))),
            ),
            // scale by a non-literal
            Expr::mul(
                b(Fn1::identity()),
                Expr::Ref(ArrayRef::d1("C", Fn1::identity())),
            ),
            Expr::Lit(4.0),
        ];
        for e in &odd {
            let k = CompiledKernel::compile(e, reads.len(), resolver(&reads)).expect("compiles");
            assert_eq!(k.fused, FusedShape::Generic, "expr={e:?}");
        }
    }

    #[test]
    fn unresolvable_reference_declines() {
        let reads = refs(&[("B", Fn1::identity())]);
        let e = b(Fn1::shift(4));
        assert!(CompiledKernel::compile(&e, reads.len(), resolver(&reads)).is_none());
    }
}
