//! Programmatic derivation reports: the paper's Section 2.6 rewrite
//! chain (Eq. (1) → Eq. (2) → Eq. (3)) instantiated with a real clause
//! and real decompositions, ending in the optimized per-processor
//! schedules. This is the human-readable audit trail of what the
//! compiler did — every step is produced by the term rewrite rules of
//! `vcal-core::term`, not by string templates.

use crate::program::{DecompMap, SpmdPlan};
use vcal_core::map::display_fn1;
use vcal_core::term::{Ordering as TOrd, Term};
use vcal_core::{Clause, Expr};

/// Produce the full derivation text for a 1-D clause under `decomps`.
pub fn derive(clause: &Clause, decomps: &DecompMap) -> Result<String, String> {
    let plan = SpmdPlan::build(clause, decomps).map_err(|e| e.to_string())?;
    let f_txt = display_fn1(&plan.f, "i");
    let lhs = &plan.lhs_array;
    let (imin, imax) = plan.loop_bounds;
    let range = format!("{imin}:{imax}");

    let mut out = String::new();
    out.push_str("derivation (Section 2.6 of the paper):\n\n");

    // Eq.(1): the clause itself as a term
    let rhs_terms: Vec<Term> = read_terms(&clause.rhs);
    let eq1 = Term::param(
        "i",
        &range,
        TOrd::Par,
        Term::assign(
            Term::select(&[&f_txt.to_string()], Term::Array(lhs.clone())),
            Term::Call {
                name: "Expr".into(),
                args: rhs_terms,
            },
        ),
    );
    out.push_str(&format!("Eq.(1)  {eq1}\n\n"));

    // substitution of each array's decomposition view
    let mut t = eq1;
    for (name, dec) in decomps {
        let n = dec.extent().count();
        t = t.substitute_decomposition(name, &format!("0:{}", n as i64 - 1));
    }
    out.push_str(&format!(
        "substituting decomposition views:\n        {t}\n\n"
    ));

    // Eq.(2): contraction
    let eq2 = t.contract();
    out.push_str(&format!("Eq.(2)  {eq2}  (contraction, Def. 5)\n\n"));

    // renaming + interchange
    let Term::Param {
        var,
        range: r,
        cond,
        ord,
        body,
    } = &eq2
    else {
        return Err("Eq.(2) should be a parameter expression".into());
    };
    let proc_expr = format!("proc{lhs}({f_txt})");
    let renamed = body.rename(&proc_expr, "p", "0:pmax-1");
    let with_i = Term::Param {
        var: var.clone(),
        range: r.clone(),
        cond: cond.clone(),
        ord: *ord,
        body: Box::new(renamed),
    };
    let eq3 = with_i
        .interchange()
        .ok_or_else(|| "interchange failed".to_string())?;
    out.push_str(&format!("Eq.(3)  {eq3}  (renaming + interchange)\n\n"));

    // instantiation: the optimized schedules per processor
    out.push_str("instantiating Eq.(3) per processor (Section 3 optimizations):\n");
    for node in &plan.nodes {
        out.push_str(&format!(
            "  p = {}: {} iterations via {}\n",
            node.p,
            node.modify.schedule.count(),
            node.modify.kind.name()
        ));
    }
    Ok(out)
}

fn read_terms(e: &Expr) -> Vec<Term> {
    let mut out = Vec::new();
    for r in e.refs() {
        if let Some(g) = r.map.as_fn1() {
            out.push(Term::select(
                &[&display_fn1(g, "i")],
                Term::Array(r.array.clone()),
            ));
        }
    }
    if out.is_empty() {
        out.push(Term::Array("\u{2205}".into()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    #[test]
    fn derivation_contains_all_steps() {
        let clause = Clause {
            iter: IndexSet::range(0, 62),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        };
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, 63)));
        dm.insert("B".into(), Decomp1::scatter(4, Bounds::range(0, 63)));
        let text = derive(&clause, &dm).unwrap();
        assert!(text.contains("Eq.(1)"), "{text}");
        assert!(text.contains("Eq.(2)"), "{text}");
        assert!(text.contains("Eq.(3)"), "{text}");
        // decomposition views appear contracted
        assert!(text.contains("[procA(i), localA(i)](A')"), "{text}");
        assert!(text.contains("[procB(i+1), localB(i+1)](B')"), "{text}");
        // SPMD form: processor outermost with ownership condition
        assert!(text.contains("\u{2206}(p \u{2208} (0:pmax-1))"), "{text}");
        assert!(text.contains("| procA(i) = p"), "{text}");
        // per-processor instantiation
        assert!(text.contains("p = 3:"), "{text}");
        assert!(text.contains("block-affine-range"), "{text}");
    }

    #[test]
    fn derivation_errors_on_bad_plan() {
        let clause = Clause {
            iter: IndexSet::range(0, 9),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Lit(0.0),
        };
        let dm = DecompMap::new();
        assert!(derive(&clause, &dm).is_err());
    }
}
