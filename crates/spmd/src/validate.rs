//! Brute-force oracles for schedules and plans.
//!
//! Every closed-form schedule must enumerate *exactly*
//! `{ i ∈ [imin, imax] | proc(f(i)) = p }`; these checkers are used by the
//! unit tests, the property tests, and (cheaply, on small sizes) by the
//! benches before timing anything.

use crate::optimizer::Optimized;
use crate::program::SpmdPlan;
use crate::schedule::Schedule;
use vcal_core::func::Fn1;
use vcal_decomp::Decomp1;

/// The brute-force membership set `{ i | proc(f(i)) = p }`.
pub fn brute_modify(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64, p: i64) -> Vec<i64> {
    (imin..=imax)
        .filter(|&i| dec.proc_of(f.eval(i)) == p)
        .collect()
}

/// Check that a schedule enumerates the brute-force set exactly (as a
/// set — `RepeatedScatter` emits in `t`-major order).
pub fn check_schedule(
    schedule: &Schedule,
    f: &Fn1,
    dec: &Decomp1,
    imin: i64,
    imax: i64,
    p: i64,
) -> Result<(), String> {
    let got = schedule.to_sorted_vec();
    let want = brute_modify(f, dec, imin, imax, p);
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "schedule {} for p={p} f={f:?} dec={dec}: got {} elements, want {}\n  got[..10]:  {:?}\n  want[..10]: {:?}",
            schedule.kind_name(),
            got.len(),
            want.len(),
            &got[..got.len().min(10)],
            &want[..want.len().min(10)],
        ))
    }
}

/// Check an [`Optimized`] schedule.
pub fn check_optimized(
    opt: &Optimized,
    f: &Fn1,
    dec: &Decomp1,
    imin: i64,
    imax: i64,
    p: i64,
) -> Result<(), String> {
    check_schedule(&opt.schedule, f, dec, imin, imax, p)
        .map_err(|e| format!("[{}] {e}", opt.kind.name()))
}

/// Check that the Modify schedules of a plan form an exact partition of
/// the loop range.
pub fn check_plan_partition(plan: &SpmdPlan) -> Result<(), String> {
    let (imin, imax) = plan.loop_bounds;
    let n = (imax - imin + 1).max(0) as usize;
    let mut seen = vec![0u32; n];
    for node in &plan.nodes {
        node.modify.schedule.for_each(|i| {
            if i < imin || i > imax {
                panic!("schedule of p={} emitted out-of-range index {i}", node.p);
            }
            seen[(i - imin) as usize] += 1;
        });
    }
    for (off, &c) in seen.iter().enumerate() {
        if c != 1 {
            return Err(format!(
                "iteration {} owned by {c} processors (expected exactly 1)",
                imin + off as i64
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use vcal_core::Bounds;

    #[test]
    fn check_schedule_accepts_correct() {
        let dec = Decomp1::scatter(4, Bounds::range(0, 99));
        let f = Fn1::affine(3, 1);
        for p in 0..4 {
            let opt = optimize(&f, &dec, 0, 32, p);
            check_optimized(&opt, &f, &dec, 0, 32, p).unwrap();
        }
    }

    #[test]
    fn check_schedule_rejects_wrong() {
        let dec = Decomp1::scatter(4, Bounds::range(0, 99));
        let f = Fn1::identity();
        // deliberately wrong schedule
        let s = Schedule::range(0, 3);
        let err = check_schedule(&s, &f, &dec, 0, 99, 0).unwrap_err();
        assert!(err.contains("range"), "{err}");
    }

    #[test]
    fn partition_check() {
        use crate::program::{DecompMap, SpmdPlan};
        use vcal_core::{ArrayRef, Clause, Expr, Guard, IndexSet, Ordering};
        let clause = Clause {
            iter: IndexSet::range(0, 63),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Lit(1.0),
        };
        let mut dm = DecompMap::new();
        dm.insert(
            "A".into(),
            Decomp1::block_scatter(3, 4, Bounds::range(0, 63)),
        );
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        check_plan_partition(&plan).unwrap();
    }
}
