//! Bounded LRU caches for plans, DAGs, and candidate prices.
//!
//! Every reuse tier the sessions and the serve loop maintain — prepared
//! plans, program dependence DAGs, tuner candidate prices — shares one
//! storage discipline: a small associative cache bounded by **both** an
//! entry budget and a byte budget, evicting least-recently-used entries
//! when either is exceeded. Capacity is deliberately modest (planning
//! is expensive but plans are few), so lookup is a linear scan over a
//! `Vec` — no hashing, no allocation on the hot path, deterministic
//! iteration order.
//!
//! The cache also keeps the counters the reports expose: hits, misses,
//! and evictions. Replacements requested by the caller (e.g. the
//! one-slot-per-clause retirement the session performs when a clause's
//! decomposition fingerprint changes) are *not* counted as evictions —
//! only budget pressure is.

/// Entry/byte budget of one [`BoundedLru`] tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum live entries; inserting beyond this evicts the LRU entry.
    /// `0` disables caching entirely (every lookup misses).
    pub max_entries: usize,
    /// Maximum total of the caller-estimated byte sizes; exceeded
    /// budgets evict LRU entries until the new entry fits. An entry
    /// larger than the whole budget is still admitted alone — refusing
    /// it would defeat the cache for exactly the plans worth caching.
    pub max_bytes: usize,
}

impl Default for CacheBudget {
    fn default() -> Self {
        CacheBudget {
            max_entries: 64,
            max_bytes: 64 << 20,
        }
    }
}

impl CacheBudget {
    /// A budget that admits nothing — the "cold" configuration the
    /// serve benchmarks use to model per-request sessions.
    pub fn none() -> CacheBudget {
        CacheBudget {
            max_entries: 0,
            max_bytes: 0,
        }
    }
}

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    bytes: usize,
    /// Monotonic recency stamp: larger = more recently used.
    tick: u64,
}

/// A bounded least-recently-used cache with hit/miss/eviction counters.
///
/// Keys are compared with `PartialEq` over a linear scan; the expected
/// population is tens of entries (one per distinct clause × layout), so
/// scanning beats hashing and keeps recency updates trivial.
#[derive(Debug)]
pub struct BoundedLru<K, V> {
    slots: Vec<Slot<K, V>>,
    budget: CacheBudget,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: PartialEq, V> BoundedLru<K, V> {
    /// An empty cache with the given budget.
    pub fn new(budget: CacheBudget) -> BoundedLru<K, V> {
        BoundedLru {
            slots: Vec::new(),
            budget,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, bumping its recency and the hit/miss counters.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.slots.iter_mut().find(|s| &s.key == key) {
            Some(s) => {
                s.tick = tick;
                self.hits += 1;
                Some(&s.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key → value`, charging `bytes` against the byte budget
    /// and evicting LRU entries until both budgets hold. An existing
    /// entry under the same key is replaced in place (not an eviction).
    pub fn insert(&mut self, key: K, value: V, bytes: usize) {
        if self.budget.max_entries == 0 {
            return;
        }
        self.tick += 1;
        if let Some(pos) = self.slots.iter().position(|s| s.key == key) {
            let old = self.slots.remove(pos);
            self.bytes -= old.bytes;
        }
        while self.slots.len() + 1 > self.budget.max_entries
            || (!self.slots.is_empty() && self.bytes + bytes > self.budget.max_bytes)
        {
            let lru = match self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.tick)
                .map(|(k, _)| k)
            {
                Some(k) => k,
                None => break,
            };
            let gone = self.slots.remove(lru);
            self.bytes -= gone.bytes;
            self.evictions += 1;
        }
        self.bytes += bytes;
        self.slots.push(Slot {
            key,
            value,
            bytes,
            tick: self.tick,
        });
    }

    /// Retire every entry failing `keep` — caller-driven replacement
    /// (stale fingerprints), not budget pressure, so the eviction
    /// counter is untouched.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let mut freed = 0usize;
        self.slots.retain(|s| {
            let k = keep(&s.key);
            if !k {
                freed += s.bytes;
            }
            k
        });
        self.bytes -= freed;
    }

    /// Drop every entry (layout change invalidation). Counters survive —
    /// they describe the cache's whole life, not its current contents.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Estimated bytes of the live entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime budget-pressure evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(CacheBudget {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        c.insert(1, 10, 8);
        c.insert(2, 20, 8);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now the MRU
        c.insert(3, 30, 8); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn byte_budget_evicts_until_fit() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(CacheBudget {
            max_entries: 16,
            max_bytes: 100,
        });
        c.insert(1, 1, 40);
        c.insert(2, 2, 40);
        c.insert(3, 3, 40); // 120 > 100: evicts key 1
        assert_eq!(c.len(), 2);
        assert_eq!(c.bytes(), 80);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.evictions(), 1);
        // an oversized entry is admitted alone
        c.insert(4, 4, 500);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&4), Some(&4));
    }

    #[test]
    fn replace_and_retain_are_not_evictions() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(CacheBudget::default());
        c.insert(1, 10, 8);
        c.insert(1, 11, 8); // replacement
        c.insert(2, 20, 8);
        c.retain(|k| *k != 2); // caller retirement
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 8);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(CacheBudget::none());
        c.insert(1, 10, 8);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }
}
