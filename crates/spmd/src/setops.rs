//! Closed-form set algebra on schedules.
//!
//! The distributed-memory template (Section 2.10) iterates the sets
//! `Reside_p \ Modify_p` (send) and `Modify_p \ Reside_p` (receive).
//! The baseline implementation tests `proc(f(i)) = p` per element while
//! iterating the Reside/Modify schedules. When both schedules are
//! *arithmetic* (ranges and strided lattices from Theorems 1/3), the
//! difference itself has closed form: lattice intersection is the
//! Chinese Remainder Theorem, and a set difference against a sub-lattice
//! is a bounded union of residue classes. This module implements that
//! algebra with a brute-force-checked fallback of `None` where no closed
//! form exists (repeated blocks, guards, piecewise splits).

use crate::schedule::Schedule;
use vcal_numth::{mod_floor, ResidueClass};

/// Maximum number of residue classes a difference may expand into before
/// we give up on the closed form (each class costs a loop in the
/// generated program).
const MAX_CLASSES: i64 = 64;

/// A normalized arithmetic schedule: the lattice `r (mod m)` clipped to
/// `[lo, hi]`. `Range` is the `m = 1` case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arith {
    class: ResidueClass,
    lo: i64,
    hi: i64,
}

impl Arith {
    fn of(s: &Schedule) -> Option<Arith> {
        match s {
            Schedule::Range { lo, hi } => Some(Arith {
                class: ResidueClass::new(0, 1),
                lo: *lo,
                hi: *hi,
            }),
            Schedule::Strided { start, step, count } => {
                if *count <= 0 {
                    return None;
                }
                Some(Arith {
                    class: ResidueClass::new(*start, *step),
                    lo: *start,
                    hi: start + step * (count - 1),
                })
            }
            _ => None,
        }
    }

    fn is_empty(&self) -> bool {
        self.first().is_none()
    }

    fn first(&self) -> Option<i64> {
        let m = self.class.m;
        let first = self.lo + mod_floor(self.class.r - self.lo, m);
        (first <= self.hi).then_some(first)
    }

    fn to_schedule(self) -> Schedule {
        match self.first() {
            None => Schedule::Empty,
            Some(first) => {
                let m = self.class.m;
                let last = self.hi - mod_floor(self.hi - self.class.r, m);
                let count = (last - first) / m + 1;
                if m == 1 {
                    Schedule::range(first, last)
                } else if count == 1 {
                    Schedule::range(first, first)
                } else {
                    Schedule::Strided {
                        start: first,
                        step: m,
                        count,
                    }
                }
            }
        }
    }

    fn intersect(&self, other: &Arith) -> Option<Arith> {
        let class = self.class.intersect(&other.class)?;
        Some(Arith {
            class,
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }
}

/// Intersect two schedules in closed form, or `None` when either is not
/// arithmetic.
pub fn intersect(a: &Schedule, b: &Schedule) -> Option<Schedule> {
    match (a, b) {
        (Schedule::Empty, _) | (_, Schedule::Empty) => Some(Schedule::Empty),
        (Schedule::Concat(parts), other) => {
            let pieces: Option<Vec<Schedule>> = parts.iter().map(|p| intersect(p, other)).collect();
            Some(Schedule::concat(pieces?))
        }
        (other, Schedule::Concat(parts)) => {
            let pieces: Option<Vec<Schedule>> = parts.iter().map(|p| intersect(other, p)).collect();
            Some(Schedule::concat(pieces?))
        }
        _ => {
            let (aa, bb) = (Arith::of(a)?, Arith::of(b)?);
            Some(match aa.intersect(&bb) {
                Some(c) => c.to_schedule(),
                None => Schedule::Empty,
            })
        }
    }
}

/// Subtract `b` from `a` in closed form (`a \ b`), or `None` when no
/// bounded closed form exists.
pub fn subtract(a: &Schedule, b: &Schedule) -> Option<Schedule> {
    match (a, b) {
        (Schedule::Empty, _) => Some(Schedule::Empty),
        (_, Schedule::Empty) => Some(a.clone()),
        (Schedule::Concat(parts), other) => {
            let pieces: Option<Vec<Schedule>> = parts.iter().map(|p| subtract(p, other)).collect();
            Some(Schedule::concat(pieces?))
        }
        (other, Schedule::Concat(parts)) => {
            // a \ (b1 ∪ b2 ∪ ...) = ((a \ b1) \ b2) \ ...
            let mut acc = other.clone();
            for p in parts {
                acc = subtract(&acc, p)?;
            }
            Some(acc)
        }
        _ => {
            let aa = Arith::of(a)?;
            let bb = Arith::of(b)?;
            if aa.is_empty() {
                return Some(Schedule::Empty);
            }
            subtract_arith(&aa, &bb)
        }
    }
}

fn subtract_arith(a: &Arith, b: &Arith) -> Option<Schedule> {
    // portion of a outside b's [lo, hi] window survives unconditionally
    let mut out: Vec<Schedule> = Vec::new();
    if b.lo > a.lo {
        out.push(
            Arith {
                class: a.class,
                lo: a.lo,
                hi: a.hi.min(b.lo - 1),
            }
            .to_schedule(),
        );
    }
    if b.hi < a.hi {
        out.push(
            Arith {
                class: a.class,
                lo: a.lo.max(b.hi + 1),
                hi: a.hi,
            }
            .to_schedule(),
        );
    }
    // inside the overlap window, remove b's lattice from a's
    let w_lo = a.lo.max(b.lo);
    let w_hi = a.hi.min(b.hi);
    if w_lo <= w_hi {
        match a.class.intersect(&b.class) {
            None => {
                // disjoint lattices: everything of a in the window stays
                out.push(
                    Arith {
                        class: a.class,
                        lo: w_lo,
                        hi: w_hi,
                    }
                    .to_schedule(),
                );
            }
            Some(meet) => {
                // a's lattice mod M = lcm splits into M / m_a classes;
                // exactly one of them (meet) is removed.
                let m = meet.m;
                let classes = m / a.class.m;
                if classes > MAX_CLASSES {
                    return None;
                }
                for k in 0..classes {
                    let r = mod_floor(a.class.r + k * a.class.m, m);
                    if r == meet.r {
                        continue;
                    }
                    out.push(
                        Arith {
                            class: ResidueClass::new(r, m),
                            lo: w_lo,
                            hi: w_hi,
                        }
                        .to_schedule(),
                    );
                }
            }
        }
    }
    // keep the output ordered by first element for readability
    let mut parts: Vec<Schedule> = out
        .into_iter()
        .filter(|s| !matches!(s, Schedule::Empty))
        .collect();
    parts.sort_by_key(|s| s.to_sorted_vec().first().copied().unwrap_or(i64::MAX));
    Some(Schedule::concat(parts))
}

/// The closed-form communication sets of the Section 2.10 template for
/// one processor and one read access, when both schedules are
/// arithmetic: `send = reside \ modify`, `receive = modify \ reside`,
/// `local = modify ∩ reside`.
#[derive(Debug, Clone)]
pub struct CommSets {
    /// Iterations whose operand `p` owns but does not compute.
    pub send: Schedule,
    /// Iterations `p` computes with a remote operand.
    pub receive: Schedule,
    /// Iterations `p` computes entirely locally.
    pub local: Schedule,
}

/// Derive closed-form communication sets, or `None` when the schedules
/// are not arithmetic (callers fall back to per-element ownership tests,
/// which is what the executor does anyway).
pub fn comm_sets(modify: &Schedule, reside: &Schedule) -> Option<CommSets> {
    Some(CommSets {
        send: subtract(reside, modify)?,
        receive: subtract(modify, reside)?,
        local: intersect(modify, reside)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::func::Fn1;
    use vcal_core::Bounds;
    use vcal_decomp::Decomp1;

    fn brute(s: &Schedule) -> Vec<i64> {
        s.to_sorted_vec()
    }

    fn check_ops(a: &Schedule, b: &Schedule) {
        let (va, vb) = (brute(a), brute(b));
        if let Some(i) = intersect(a, b) {
            let want: Vec<i64> = va.iter().copied().filter(|x| vb.contains(x)).collect();
            assert_eq!(brute(&i), want, "intersect {a:?} {b:?}");
        }
        if let Some(d) = subtract(a, b) {
            let want: Vec<i64> = va.iter().copied().filter(|x| !vb.contains(x)).collect();
            assert_eq!(brute(&d), want, "subtract {a:?} {b:?}");
        }
    }

    #[test]
    fn range_range_ops() {
        let cases = [
            (Schedule::range(0, 10), Schedule::range(5, 15)),
            (Schedule::range(0, 10), Schedule::range(3, 6)),
            (Schedule::range(0, 10), Schedule::range(20, 30)),
            (Schedule::range(5, 5), Schedule::range(0, 10)),
        ];
        for (a, b) in cases {
            check_ops(&a, &b);
            check_ops(&b, &a);
        }
    }

    #[test]
    fn strided_strided_ops_exhaustive_small() {
        for m1 in 1..=6i64 {
            for r1 in 0..m1 {
                for m2 in 1..=6i64 {
                    for r2 in 0..m2 {
                        let a = Schedule::Strided {
                            start: r1,
                            step: m1,
                            count: 40 / m1,
                        };
                        let b = Schedule::Strided {
                            start: r2,
                            step: m2,
                            count: 40 / m2,
                        };
                        check_ops(&a, &b);
                    }
                }
            }
        }
    }

    #[test]
    fn range_strided_mixed() {
        let r = Schedule::range(3, 57);
        let s = Schedule::Strided {
            start: 1,
            step: 4,
            count: 20,
        };
        check_ops(&r, &s);
        check_ops(&s, &r);
    }

    #[test]
    fn concat_distribution() {
        let a = Schedule::concat(vec![Schedule::range(0, 9), Schedule::range(20, 29)]);
        let b = Schedule::Strided {
            start: 0,
            step: 3,
            count: 20,
        };
        check_ops(&a, &b);
        check_ops(&b, &a);
    }

    #[test]
    fn non_arithmetic_gives_none() {
        let g = Schedule::Guarded {
            imin: 0,
            imax: 9,
            proc_of_f: Fn1::identity(),
            p: 0,
        };
        assert!(intersect(&g, &Schedule::range(0, 5)).is_none());
        assert!(subtract(&Schedule::range(0, 5), &g).is_none());
        // empty short-circuits still work
        assert!(matches!(
            intersect(&g, &Schedule::Empty).unwrap(),
            Schedule::Empty
        ));
    }

    #[test]
    fn comm_sets_match_template_classification() {
        // A block-owned write with a scatter-resident read: the real
        // Modify/Reside schedules from the optimizer.
        let n = 64i64;
        let dec_a = Decomp1::block(4, Bounds::range(0, n - 1));
        let dec_b = Decomp1::scatter(4, Bounds::range(0, n - 1));
        for p in 0..4 {
            let modify = crate::optimizer::optimize(&Fn1::identity(), &dec_a, 0, n - 1, p);
            let reside = crate::optimizer::optimize(&Fn1::identity(), &dec_b, 0, n - 1, p);
            let cs =
                comm_sets(&modify.schedule, &reside.schedule).expect("both schedules arithmetic");
            for i in 0..n {
                let modifies = dec_a.proc_of(i) == p;
                let resides = dec_b.proc_of(i) == p;
                let in_send = cs.send.to_sorted_vec().contains(&i);
                let in_recv = cs.receive.to_sorted_vec().contains(&i);
                let in_local = cs.local.to_sorted_vec().contains(&i);
                assert_eq!(in_send, resides && !modifies, "send p={p} i={i}");
                assert_eq!(in_recv, modifies && !resides, "recv p={p} i={i}");
                assert_eq!(in_local, modifies && resides, "local p={p} i={i}");
            }
        }
    }

    #[test]
    fn class_explosion_is_bounded() {
        // subtracting a lattice with a huge lcm expansion must bail out
        let a = Schedule::Strided {
            start: 0,
            step: 1,
            count: 10_000,
        };
        let b = Schedule::Strided {
            start: 0,
            step: 101,
            count: 99,
        };
        assert!(
            subtract(&a, &b).is_none(),
            "101 classes should exceed the cap"
        );
        // but a small expansion succeeds
        let b2 = Schedule::Strided {
            start: 0,
            step: 7,
            count: 1000,
        };
        assert!(subtract(&a, &b2).is_some());
    }
}
