//! Plan-level observability hooks: which Table I enumeration row fired
//! for every Modify/Reside set, how much traffic the communication
//! schedule commits to, and a tiny timing helper for the planning
//! phases themselves.
//!
//! This is the compile-time half of the observability layer; the
//! run-time half (per-node phase timings, transport events, the JSONL
//! event log and its replay checker) lives in `vcal-machine::obs`,
//! which consumes [`crate::SpmdPlan`] directly. `vcal-spmd` deliberately
//! knows nothing about machines, so everything here is derived from the
//! plan alone and is fully deterministic.

use crate::optimizer::OptKind;
use crate::program::SpmdPlan;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How one Reside set of one node was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDispatch {
    /// Read-slot ordinal (position in `NodePlan::resides`).
    pub slot: usize,
    /// The array this slot reads.
    pub array: String,
    /// The Table I row that produced the schedule.
    pub kind: OptKind,
    /// `true` unless the optimizer fell back to the naive guarded loop.
    pub closed_form: bool,
    /// Replicated operands never communicate; their dispatch is listed
    /// but carries no traffic.
    pub replicated: bool,
}

/// How one node's iteration sets were scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDispatch {
    /// Processor id.
    pub p: i64,
    /// Table I row for the Modify (write-ownership) set.
    pub modify_kind: OptKind,
    /// `true` unless the Modify schedule is a naive guarded loop.
    pub modify_closed_form: bool,
    /// Per-read-slot dispatch records.
    pub slots: Vec<SlotDispatch>,
}

/// A deterministic digest of a whole [`SpmdPlan`]: enumeration dispatch
/// per node/slot plus the planned communication volume. This is what
/// the dispatch-exactness tests assert on ("no silent fallback to
/// membership testing") and what the CLI prints under `--trace`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSummary {
    /// One record per node, in processor order.
    pub nodes: Vec<NodeDispatch>,
    /// Total elements the plan commits to sending (= receiving).
    pub send_elems: u64,
    /// Total elements the plan commits to receiving.
    pub recv_elems: u64,
    /// Coalesced packets a vectorized execution would put on the wire.
    pub send_packets: u64,
}

impl PlanSummary {
    /// Digest `plan`.
    pub fn of(plan: &SpmdPlan) -> PlanSummary {
        let mut send_elems = 0;
        let mut recv_elems = 0;
        let mut send_packets = 0;
        let nodes = plan
            .nodes
            .iter()
            .map(|n| {
                send_elems += n.comm.send_elems();
                recv_elems += n.comm.recv_elems();
                send_packets += n.comm.send_packets();
                NodeDispatch {
                    p: n.p,
                    modify_kind: n.modify.kind,
                    modify_closed_form: n.modify.kind.is_closed_form(),
                    slots: n
                        .resides
                        .iter()
                        .enumerate()
                        .map(|(slot, rp)| SlotDispatch {
                            slot,
                            array: rp.array.clone(),
                            kind: rp.opt.kind,
                            closed_form: rp.opt.kind.is_closed_form(),
                            replicated: rp.replicated,
                        })
                        .collect(),
                }
            })
            .collect();
        PlanSummary {
            nodes,
            send_elems,
            recv_elems,
            send_packets,
        }
    }

    /// Count how often each Table I row fired, keyed by
    /// [`OptKind::name`] — Modify and Reside dispatches combined.
    pub fn dispatch_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.modify_kind.name()).or_insert(0) += 1;
            for s in &n.slots {
                *out.entry(s.kind.name()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Number of dispatches that fell back to the naive guarded loop
    /// (run-time membership testing) — the thing Table I exists to
    /// avoid. Exactness tests assert this is zero for covered rows.
    pub fn fallback_count(&self) -> u64 {
        let mut n = 0;
        for nd in &self.nodes {
            if !nd.modify_closed_form {
                n += 1;
            }
            n += nd.slots.iter().filter(|s| !s.closed_form).count() as u64;
        }
        n
    }

    /// `true` when every Modify and Reside schedule is closed-form.
    pub fn is_fully_closed_form(&self) -> bool {
        self.fallback_count() == 0
    }
}

/// Run `f`, returning its result together with the elapsed wall-clock —
/// the planning-phase counterpart to the machines' per-phase timings
/// (wrap `SpmdPlan::build`, [`crate::derive`], or [`crate::plan_comm`]
/// call sites with it).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::DecompMap;
    use vcal_core::func::Fn1;
    use vcal_core::{ArrayRef, Bounds, Clause, Expr, Guard, IndexSet, Ordering};
    use vcal_decomp::Decomp1;

    fn fixture() -> (Clause, DecompMap) {
        let clause = Clause {
            iter: IndexSet::range(0, 62),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::shift(1))),
        };
        let mut dm = DecompMap::new();
        dm.insert("A".into(), Decomp1::block(4, Bounds::range(0, 63)));
        dm.insert("B".into(), Decomp1::scatter(4, Bounds::range(0, 63)));
        (clause, dm)
    }

    #[test]
    fn summary_counts_dispatches_and_traffic() {
        let (clause, dm) = fixture();
        let plan = SpmdPlan::build(&clause, &dm).unwrap();
        let summary = PlanSummary::of(&plan);
        assert_eq!(summary.nodes.len(), 4);
        assert!(summary.is_fully_closed_form(), "{summary:?}");
        assert_eq!(summary.send_elems, summary.recv_elems);
        assert!(summary.send_packets <= summary.send_elems);
        let counts = summary.dispatch_counts();
        assert_eq!(counts.values().sum::<u64>(), 8); // 4 modify + 4 reside
        assert!(!counts.contains_key("naive-guard"), "{counts:?}");
    }

    #[test]
    fn timed_reports_elapsed() {
        let (v, dt) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(dt.as_nanos() > 0 || dt.is_zero()); // monotone, no panic
    }
}
