//! The Table I classification engine: given an access function `f`, a
//! decomposition of the accessed array, and the loop range, produce the
//! best closed-form [`Schedule`] the paper derives — or the naive guarded
//! loop when no optimization applies.
//!
//! | `f(i)`                  | Block          | Scatter                    | Block/Scatter |
//! |-------------------------|----------------|----------------------------|---------------|
//! | `c`                     | Theorem 1      | Theorem 1                  | Theorem 1     |
//! | `i+c`, `a*i+c`          | exact range    | Theorem 3 (+Corollaries)   | RB / RS       |
//! | monotone incr/decr      | exact range    | limited opt. if `df/di < pmax` | RB (Thm 2) |
//! | `g(i) mod z + d`        | breakpoint split, then the row of `g` per piece (Section 3.3) |

use crate::schedule::{repeated_block_kmax, Schedule};
use vcal_core::func::Fn1;
use vcal_decomp::{Decomp1, Distribution};
use vcal_numth::{div_floor, solve_congruence};

/// Which optimization produced a schedule (for reports, emitted code
/// comments, and the Table I benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptKind {
    /// The loop range itself is empty.
    EmptyLoop,
    /// Theorem 1: `f` constant — one processor runs the whole range.
    ConstantFn,
    /// Replicated target: canonical owner executes everything.
    ReplicatedOwner,
    /// Block decomposition, affine `f`: one exact contiguous range.
    BlockAffine,
    /// Block decomposition, monotone non-affine `f`: exact range via
    /// `f^{-1}` (Table I last row, Block column).
    BlockMonotonic,
    /// Theorem 3: scatter with linear `f` — strided lattice. The field
    /// records which simplification applied: 1 ⇒ Corollary 1
    /// (`pmax mod a = 0`), 2 ⇒ Corollary 2 (`a mod pmax = 0`), 0 ⇒ the
    /// general extended-Euclid solution.
    ScatterLinear {
        /// 0 = general, 1 = Corollary 1, 2 = Corollary 2.
        corollary: u8,
    },
    /// Scatter with monotone non-linear `f` and `df/di < pmax`: the
    /// paper's "limited optimization as repeated block decomposition",
    /// enumerating on `k` instead of `i`.
    ScatterMonotonicViaK,
    /// Theorem 2: block-scatter, repeated-block formulation.
    RepeatedBlock,
    /// Section 3.2.i: block-scatter, repeated-scatter formulation.
    RepeatedScatter,
    /// Section 3.3: piecewise-monotonic `f` split at breakpoints (each
    /// piece optimized by its own row).
    PiecewiseSplit,
    /// No optimization found: run-time membership tests.
    Naive,
}

impl OptKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OptKind::EmptyLoop => "empty-loop",
            OptKind::ConstantFn => "theorem-1-constant",
            OptKind::ReplicatedOwner => "replicated-owner",
            OptKind::BlockAffine => "block-affine-range",
            OptKind::BlockMonotonic => "block-monotonic-range",
            OptKind::ScatterLinear { corollary: 1 } => "theorem-3-corollary-1",
            OptKind::ScatterLinear { corollary: 2 } => "theorem-3-corollary-2",
            OptKind::ScatterLinear { .. } => "theorem-3-diophantine",
            OptKind::ScatterMonotonicViaK => "scatter-enumerate-on-k",
            OptKind::RepeatedBlock => "theorem-2-repeated-block",
            OptKind::RepeatedScatter => "repeated-scatter",
            OptKind::PiecewiseSplit => "piecewise-split",
            OptKind::Naive => "naive-guard",
        }
    }

    /// Whether this kind avoids testing every loop index.
    pub fn is_closed_form(self) -> bool {
        !matches!(self, OptKind::Naive)
    }
}

/// An optimized per-processor schedule with its provenance.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The iteration schedule for processor `p`.
    pub schedule: Schedule,
    /// Which Table I cell produced it.
    pub kind: OptKind,
}

/// Options controlling optimizer choices that the paper leaves to the
/// implementation.
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Use the repeated-scatter formulation for block-scatter when the
    /// paper's condition `b <= f(imax) / (2*pmax)` holds (Section 3.2.i).
    pub prefer_repeated_scatter: bool,
    /// Permit the `df/di < pmax` enumerate-on-k optimization for scatter
    /// with monotone non-linear `f`.
    pub scatter_enum_k: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            prefer_repeated_scatter: true,
            scatter_enum_k: true,
        }
    }
}

/// Produce the best schedule for
/// `{ i ∈ [imin, imax] | proc(f(i)) = p }` under `dec`.
///
/// Precondition (the paper's implicit one): every access `f(i)` for `i`
/// in the loop range falls inside the decomposed extent. Violations are
/// caught by `debug_assert` for monotone `f`.
pub fn optimize(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64, p: i64) -> Optimized {
    optimize_with(f, dec, imin, imax, p, OptOptions::default())
}

/// [`optimize`] with explicit [`OptOptions`].
pub fn optimize_with(
    f: &Fn1,
    dec: &Decomp1,
    imin: i64,
    imax: i64,
    p: i64,
    opts: OptOptions,
) -> Optimized {
    if imin > imax {
        return Optimized {
            schedule: Schedule::Empty,
            kind: OptKind::EmptyLoop,
        };
    }
    let f = f.simplify();
    debug_assert_bounds(&f, dec, imin, imax);

    // Theorem 1: constant access function.
    if let Fn1::Const(c) = f {
        let owner = dec.proc_of(c);
        let schedule = if owner == p {
            Schedule::range(imin, imax)
        } else {
            Schedule::Empty
        };
        return Optimized {
            schedule,
            kind: OptKind::ConstantFn,
        };
    }

    if dec.is_replicated() {
        let schedule = if p == 0 {
            Schedule::range(imin, imax)
        } else {
            Schedule::Empty
        };
        return Optimized {
            schedule,
            kind: OptKind::ReplicatedOwner,
        };
    }

    let ext_lo = dec.extent().lo()[0];
    let pmax = dec.pmax();
    let mono = f.monotonicity(imin, imax);

    match dec.dist() {
        Distribution::Block { b } => {
            if mono.is_monotone() {
                let y_lo = ext_lo + b * p;
                let y_hi = y_lo + b - 1;
                let schedule = match f.preimage_range(y_lo, y_hi, imin, imax) {
                    Some((lo, hi)) => Schedule::range(lo, hi),
                    None => Schedule::Empty,
                };
                let kind = if matches!(f, Fn1::Affine { .. }) {
                    OptKind::BlockAffine
                } else {
                    OptKind::BlockMonotonic
                };
                Optimized { schedule, kind }
            } else {
                split_or_naive(&f, dec, imin, imax, p, opts)
            }
        }
        Distribution::Scatter => {
            if let Fn1::Affine { a, c } = f {
                // Theorem 3: a*i + c - ext_lo ≡ p (mod pmax)
                let schedule = match solve_congruence(a, p - c + ext_lo, pmax) {
                    Some(cg) => {
                        let start = cg.first_at_or_above(imin);
                        let count = cg.count_in(imin, imax);
                        if count == 0 {
                            Schedule::Empty
                        } else {
                            Schedule::Strided {
                                start,
                                step: cg.period,
                                count,
                            }
                        }
                    }
                    // no solution to the Diophantine equation: this
                    // processor executes no code (Theorem 3).
                    None => Schedule::Empty,
                };
                let corollary = if a != 0 && a.abs() % pmax == 0 {
                    2
                } else if a != 0 && pmax % a.abs() == 0 {
                    1
                } else {
                    0
                };
                Optimized {
                    schedule,
                    kind: OptKind::ScatterLinear { corollary },
                }
            } else if mono.is_monotone() {
                // "limited optimization (as repeated block decomposition)
                // if df/di < pmax": probe k instead of testing every i.
                let slope = f.slope_bound(imin, imax);
                if opts.scatter_enum_k && slope.is_some_and(|s| s < pmax) {
                    let k_max = repeated_block_kmax(&f, imin, imax, 1, pmax, p, ext_lo);
                    let schedule = if k_max < 0 {
                        Schedule::Empty
                    } else {
                        Schedule::RepeatedScatter {
                            f: f.clone(),
                            imin,
                            imax,
                            b: 1,
                            pmax,
                            p,
                            ext_lo,
                            k_max,
                        }
                    };
                    Optimized {
                        schedule,
                        kind: OptKind::ScatterMonotonicViaK,
                    }
                } else {
                    naive(&f, dec, imin, imax, p)
                }
            } else {
                split_or_naive(&f, dec, imin, imax, p, opts)
            }
        }
        Distribution::BlockScatter { b } => {
            if mono.is_monotone() {
                let k_max = repeated_block_kmax(&f, imin, imax, b, pmax, p, ext_lo);
                if k_max < 0 {
                    return Optimized {
                        schedule: Schedule::Empty,
                        kind: OptKind::RepeatedBlock,
                    };
                }
                // Section 3.2.i: repeated scatter is preferable when
                // b <= f(imax) / (2 * pmax).
                let y_max = f.eval(imin).max(f.eval(imax)) - ext_lo;
                let use_rs = opts.prefer_repeated_scatter && b <= div_floor(y_max, 2 * pmax);
                if use_rs {
                    Optimized {
                        schedule: Schedule::RepeatedScatter {
                            f: f.clone(),
                            imin,
                            imax,
                            b,
                            pmax,
                            p,
                            ext_lo,
                            k_max,
                        },
                        kind: OptKind::RepeatedScatter,
                    }
                } else {
                    Optimized {
                        schedule: Schedule::RepeatedBlock {
                            f: f.clone(),
                            imin,
                            imax,
                            b,
                            pmax,
                            p,
                            ext_lo,
                            k_max,
                        },
                        kind: OptKind::RepeatedBlock,
                    }
                }
            } else {
                split_or_naive(&f, dec, imin, imax, p, opts)
            }
        }
        Distribution::Replicated => unreachable!("handled above"),
    }
}

/// Piecewise-monotonic handling (Section 3.3): split at breakpoints and
/// optimize each de-modded piece with its own Table I row.
fn split_or_naive(
    f: &Fn1,
    dec: &Decomp1,
    imin: i64,
    imax: i64,
    p: i64,
    opts: OptOptions,
) -> Optimized {
    if let Some(pieces) = f.monotone_pieces(imin, imax) {
        if pieces.len() > 1 || matches!(f, Fn1::Mod { .. }) {
            let parts: Vec<Schedule> = pieces
                .iter()
                .map(|piece| optimize_with(&piece.f, dec, piece.lo, piece.hi, p, opts).schedule)
                .collect();
            return Optimized {
                schedule: Schedule::concat(parts),
                kind: OptKind::PiecewiseSplit,
            };
        }
    }
    naive(f, dec, imin, imax, p)
}

fn naive(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64, p: i64) -> Optimized {
    Optimized {
        schedule: Schedule::Guarded {
            imin,
            imax,
            proc_of_f: dec.proc_fn().compose(f).simplify(),
            p,
        },
        kind: OptKind::Naive,
    }
}

/// Build the naive guarded schedule regardless of what `f` allows — the
/// baseline every Table I bench compares against.
pub fn naive_schedule(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64, p: i64) -> Schedule {
    naive(f, dec, imin, imax, p).schedule
}

fn debug_assert_bounds(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64) {
    if cfg!(debug_assertions) && imin <= imax {
        let m = f.monotonicity(imin, imax);
        if m.is_monotone() {
            let (a, b) = (f.eval(imin), f.eval(imax));
            let ext = dec.extent();
            for v in [a, b] {
                debug_assert!(
                    ext.contains(&vcal_core::Ix::d1(v)),
                    "access f(i)={v} outside decomposed extent {ext}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_core::Bounds;

    /// Brute-force oracle: `{ i | proc(f(i)) = p }`.
    fn brute(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64, p: i64) -> Vec<i64> {
        (imin..=imax)
            .filter(|&i| dec.proc_of(f.eval(i)) == p)
            .collect()
    }

    fn check_exact(f: &Fn1, dec: &Decomp1, imin: i64, imax: i64) -> Vec<OptKind> {
        let mut kinds = Vec::new();
        let mut total = 0u64;
        for p in 0..dec.pmax() {
            let opt = optimize(f, dec, imin, imax, p);
            let got = opt.schedule.to_sorted_vec();
            let want = brute(f, dec, imin, imax, p);
            assert_eq!(got, want, "f={f:?} dec={dec} p={p} kind={:?}", opt.kind);
            total += got.len() as u64;
            kinds.push(opt.kind);
        }
        assert_eq!(
            total,
            (imax - imin + 1).max(0) as u64,
            "not a partition: f={f:?} {dec}"
        );
        kinds
    }

    #[test]
    fn theorem1_constant() {
        let dec = Decomp1::block(4, Bounds::range(0, 15));
        let kinds = check_exact(&Fn1::Const(9), &dec, 0, 99);
        assert!(kinds.iter().all(|k| *k == OptKind::ConstantFn));
        // owner of 9 under block(4) is p=2
        let opt = optimize(&Fn1::Const(9), &dec, 0, 99, 2);
        assert_eq!(opt.schedule.count(), 100);
        assert!(optimize(&Fn1::Const(9), &dec, 0, 99, 0).schedule.is_empty());
    }

    #[test]
    fn block_affine_rows() {
        let dec = Decomp1::block(4, Bounds::range(0, 63));
        for (a, c) in [(1i64, 0i64), (1, 5), (2, 1), (3, -2), (-1, 60), (-2, 62)] {
            // choose a loop range keeping accesses in 0..=63
            let (imin, imax) = match a {
                1 => (0, 58 - c.max(0)),
                2 => (1, 31),
                3 => (1, 21),
                -1 => (0, 55),
                -2 => (0, 31),
                _ => unreachable!(),
            };
            let kinds = check_exact(&Fn1::affine(a, c), &dec, imin, imax);
            assert!(
                kinds.iter().all(|k| *k == OptKind::BlockAffine),
                "a={a} c={c}: {kinds:?}"
            );
        }
    }

    #[test]
    fn block_monotonic_nonlinear() {
        let dec = Decomp1::block(4, Bounds::range(0, 100));
        let kinds = check_exact(&Fn1::square(), &dec, 0, 10);
        assert!(kinds.iter().all(|k| *k == OptKind::BlockMonotonic));
        let kinds = check_exact(&Fn1::i_plus_i_div(4), &dec, 0, 80);
        assert!(kinds.iter().all(|k| *k == OptKind::BlockMonotonic));
    }

    #[test]
    fn theorem3_scatter_linear_all_gcd_classes() {
        for pmax in [3i64, 4, 6, 8] {
            let dec = Decomp1::scatter(pmax, Bounds::range(0, 499));
            for a in [1i64, 2, 3, 4, 5, 6, 7, -1, -3] {
                for c in [0i64, 1, 5] {
                    let (imin, imax) = if a > 0 {
                        (0, (499 - c) / a)
                    } else {
                        ((-c) / a, (499 - c) / a).min(((499 - c) / a, (-c) / a))
                    };
                    let (imin, imax) = (imin.min(imax), imin.max(imax));
                    let kinds = check_exact(&Fn1::affine(a, c), &dec, imin.max(0), imax);
                    assert!(
                        kinds
                            .iter()
                            .all(|k| matches!(k, OptKind::ScatterLinear { .. })),
                        "a={a} c={c} pmax={pmax}: {kinds:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn corollary_detection() {
        // pmax=6, a=3: pmax mod a == 0 -> Corollary 1
        let dec = Decomp1::scatter(6, Bounds::range(0, 299));
        let o = optimize(&Fn1::affine(3, 1), &dec, 0, 99, 1);
        assert_eq!(o.kind, OptKind::ScatterLinear { corollary: 1 });
        // pmax=3, a=6: a mod pmax == 0 -> Corollary 2
        let dec = Decomp1::scatter(3, Bounds::range(0, 599));
        let o = optimize(&Fn1::affine(6, 1), &dec, 0, 99, 1);
        assert_eq!(o.kind, OptKind::ScatterLinear { corollary: 2 });
        // only p = c mod pmax active for Corollary 2
        for p in 0..3 {
            let o = optimize(&Fn1::affine(6, 1), &dec, 0, 99, p);
            assert_eq!(o.schedule.is_empty(), p != 1, "p={p}");
        }
    }

    #[test]
    fn scatter_monotonic_via_k() {
        // f(i) = i + (i div 4): slope <= 2 < pmax = 16
        let dec = Decomp1::scatter(16, Bounds::range(0, 200));
        let kinds = check_exact(&Fn1::i_plus_i_div(4), &dec, 0, 160);
        assert!(
            kinds.iter().all(|k| *k == OptKind::ScatterMonotonicViaK),
            "{kinds:?}"
        );
    }

    #[test]
    fn scatter_steep_monotonic_falls_back() {
        // f(i) = i^2 on 0..=30: slope up to 61 >= pmax=4 -> naive
        let dec = Decomp1::scatter(4, Bounds::range(0, 900));
        let o = optimize(&Fn1::square(), &dec, 0, 30, 1);
        assert_eq!(o.kind, OptKind::Naive);
        check_exact(&Fn1::square(), &dec, 0, 30);
    }

    #[test]
    fn block_scatter_repeated_block() {
        let dec = Decomp1::block_scatter(48, 4, Bounds::range(0, 299));
        // b = 48 > 299/(2*4) = 37: repeated block chosen
        let kinds = check_exact(&Fn1::identity(), &dec, 0, 299);
        assert!(
            kinds.iter().all(|k| *k == OptKind::RepeatedBlock),
            "{kinds:?}"
        );
    }

    #[test]
    fn block_scatter_repeated_scatter() {
        let dec = Decomp1::block_scatter(2, 4, Bounds::range(0, 299));
        // b=2 <= 299/(2*4)=37: RS chosen
        let kinds = check_exact(&Fn1::identity(), &dec, 0, 299);
        assert!(
            kinds.iter().all(|k| *k == OptKind::RepeatedScatter),
            "{kinds:?}"
        );
        // and with the option off, RB
        let o = optimize_with(
            &Fn1::identity(),
            &dec,
            0,
            299,
            0,
            OptOptions {
                prefer_repeated_scatter: false,
                scatter_enum_k: true,
            },
        );
        assert_eq!(o.kind, OptKind::RepeatedBlock);
    }

    #[test]
    fn block_scatter_affine_strides() {
        for b in [2i64, 3, 5] {
            let dec = Decomp1::block_scatter(b, 4, Bounds::range(0, 499));
            for (a, c) in [(1i64, 0i64), (2, 3), (5, 1), (-1, 400)] {
                let (lo, hi) = if a > 0 { (0, (499 - c) / a) } else { (0, 399) };
                check_exact(&Fn1::affine(a, c), &dec, lo, hi);
            }
        }
    }

    #[test]
    fn piecewise_rotate_under_all_decomps() {
        // paper's rotate example f(i) = (i+6) mod 20 on 0..=19
        let f = Fn1::rotate(6, 20);
        for dec in [
            Decomp1::block(4, Bounds::range(0, 19)),
            Decomp1::scatter(4, Bounds::range(0, 19)),
            Decomp1::block_scatter(2, 4, Bounds::range(0, 19)),
        ] {
            let kinds = check_exact(&f, &dec, 0, 19);
            assert!(
                kinds.iter().all(|k| *k == OptKind::PiecewiseSplit),
                "{dec}: {kinds:?}"
            );
        }
    }

    #[test]
    fn empty_loop() {
        let dec = Decomp1::block(4, Bounds::range(0, 15));
        let o = optimize(&Fn1::identity(), &dec, 5, 4, 0);
        assert_eq!(o.kind, OptKind::EmptyLoop);
        assert!(o.schedule.is_empty());
    }

    #[test]
    fn replicated_owner() {
        let dec = Decomp1::replicated(4, Bounds::range(0, 15));
        let o0 = optimize(&Fn1::identity(), &dec, 0, 15, 0);
        assert_eq!(o0.kind, OptKind::ReplicatedOwner);
        assert_eq!(o0.schedule.count(), 16);
        assert!(optimize(&Fn1::identity(), &dec, 0, 15, 3)
            .schedule
            .is_empty());
    }

    #[test]
    fn nonzero_based_extent_all_paths() {
        let ext = Bounds::range(100, 163);
        for dec in [
            Decomp1::block(4, ext),
            Decomp1::scatter(4, ext),
            Decomp1::block_scatter(3, 4, ext),
        ] {
            check_exact(&Fn1::shift(100), &dec, 0, 63);
            check_exact(&Fn1::affine(2, 100), &dec, 0, 31);
        }
    }

    #[test]
    fn naive_schedule_is_always_available() {
        let dec = Decomp1::scatter(4, Bounds::range(0, 99));
        let s = naive_schedule(&Fn1::affine(3, 0), &dec, 0, 33, 2);
        let want = brute(&Fn1::affine(3, 0), &dec, 0, 33, 2);
        assert_eq!(s.to_sorted_vec(), want);
        assert_eq!(s.work_estimate(), 34);
    }
}
