//! # SIMD execution tier for fused kernel shapes (DESIGN.md §14)
//!
//! The fused shapes of [`crate::kernel::FusedShape`] collapse a whole
//! Table I clause body into one of three recognized per-element forms
//! (copy, `a*x + b`, small stencil).  This module supplies the *lane*
//! versions of those forms: fixed-width chunk loops over unit-stride
//! `f64` slices, written so stable rustc reliably autovectorizes them,
//! plus an optional hand-written AVX2 path behind runtime feature
//! detection.
//!
//! ## Bit-exactness contract
//!
//! Lane parallelism never re-associates any per-element computation:
//! every output element is produced by exactly the operation sequence
//! the scalar interpreter would perform (`load; [*a]; [+b]; store` for
//! Axpy, `(x0+x1)+x2` or `x0+(x1+x2)` for stencils depending on the
//! source tree, then `[*scale]; [+offset]`).  The AVX2 path uses only
//! `loadu`/`mul`/`add`/`storeu` — **never** fused multiply-add, which
//! would change results in the last bit.  Consequently SIMD output is
//! bitwise identical to the scalar fused path, which is itself checked
//! bitwise against `eval_expr` (see `tests/kernel_equivalence.rs`).
//!
//! ## Policy semantics
//!
//! * [`SimdMode::Off`] — machines take the scalar per-element path
//!   unchanged (the PR 5 baseline).
//! * [`SimdMode::On`] — portable chunk loops at the configured lane
//!   width; no `std::arch` is used even when available.
//! * [`SimdMode::Auto`] — like `On`, but the AVX2 intrinsic path is
//!   selected when the CPU reports the feature at run time.

/// How the machines should use the SIMD tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Use lane kernels; pick AVX2 intrinsics when the CPU supports them.
    #[default]
    Auto,
    /// Use the portable chunk-loop lane kernels only (no `std::arch`).
    On,
    /// Scalar per-element execution only (the pre-SIMD baseline).
    Off,
}

/// SIMD policy threaded through `DistOptions`, both distributed
/// machines, doacross, and the steady-state executor.
///
/// `lanes` is a *request*; [`SimdPolicy::effective_lanes`] clamps it to
/// a supported chunk width (4, 8 or 16 `f64` lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdPolicy {
    /// Auto / On / Off.
    pub mode: SimdMode,
    /// Requested lane width in `f64` elements (default 8).
    pub lanes: usize,
}

impl Default for SimdPolicy {
    fn default() -> Self {
        SimdPolicy {
            mode: SimdMode::Auto,
            lanes: 8,
        }
    }
}

impl SimdPolicy {
    /// Auto mode at the default lane width.
    pub fn auto() -> Self {
        SimdPolicy::default()
    }

    /// Forced-on portable lanes at the default width.
    pub fn on() -> Self {
        SimdPolicy {
            mode: SimdMode::On,
            lanes: 8,
        }
    }

    /// SIMD tier disabled: scalar per-element execution.
    pub fn off() -> Self {
        SimdPolicy {
            mode: SimdMode::Off,
            lanes: 8,
        }
    }

    /// Whether the machines should attempt the lane path at all.
    pub fn enabled(&self) -> bool {
        !matches!(self.mode, SimdMode::Off)
    }

    /// The chunk width actually used: the requested width clamped to a
    /// supported power of two (4, 8, or 16).
    pub fn effective_lanes(&self) -> usize {
        match self.lanes {
            0..=4 => 4,
            5..=8 => 8,
            _ => 16,
        }
    }

    /// The lane width census accounting uses on *this* machine: the
    /// AVX2 register width (4 × f64) when Auto resolves to the intrinsic
    /// path, else [`SimdPolicy::effective_lanes`]. Plan-time and runtime
    /// censuses both use this, so they agree exactly.
    pub fn census_lanes(&self) -> usize {
        if avx2_selected(*self) {
            4
        } else {
            self.effective_lanes()
        }
    }

    /// Parse a `--simd auto|on|off` style flag value.
    pub fn parse(s: &str) -> Option<SimdPolicy> {
        match s {
            "auto" => Some(SimdPolicy::auto()),
            "on" => Some(SimdPolicy::on()),
            "off" => Some(SimdPolicy::off()),
            _ => None,
        }
    }
}

/// Plan-time SIMD census, the `overlap_census()` analogue for the lane
/// tier: how many interior runs the policy will vectorize, how many
/// fall back to the scalar path, and how the vectorized elements split
/// into full lanes vs remainder tails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimdCensus {
    /// Effective lane width the policy resolves to.
    pub lanes: u64,
    /// Interior unit-stride runs the lane tier will take.
    pub vector_runs: u64,
    /// Runs executed element-at-a-time (boundary, strided, guarded,
    /// generic shape, or policy off).
    pub fallback_runs: u64,
    /// Elements processed in full lane chunks.
    pub lane_elems: u64,
    /// Remainder elements handled by the scalar tail loop.
    pub tail_elems: u64,
}

impl SimdCensus {
    /// Fold one vectorized run of `n` elements into the census.
    pub fn add_vector_run(&mut self, n: u64) {
        let lanes = self.lanes.max(1);
        self.vector_runs += 1;
        self.lane_elems += n / lanes * lanes;
        self.tail_elems += n % lanes;
    }
}

/// True when the Auto policy resolves to the AVX2 intrinsic path on
/// this machine (always false off x86_64 or under `On`/`Off`).
pub fn avx2_selected(policy: SimdPolicy) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        matches!(policy.mode, SimdMode::Auto) && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = policy;
        false
    }
}

// ---------------------------------------------------------------------------
// Portable chunk loops.
//
// `chunks_exact` hands LLVM constant-length slices, which is the idiom
// stable rustc reliably turns into packed vector code at opt-level 3.
// The per-element closure is monomorphized per (shape, literal-presence)
// combination by the dispatchers below, so the Option checks never
// appear inside a hot loop.
// ---------------------------------------------------------------------------

#[inline(always)]
fn map1<const L: usize>(src: &[f64], out: &mut [f64], f: impl Fn(f64) -> f64) {
    debug_assert_eq!(src.len(), out.len());
    let n = out.len();
    let main = n - n % L;
    for (o, x) in out[..main]
        .chunks_exact_mut(L)
        .zip(src[..main].chunks_exact(L))
    {
        for (ov, xv) in o.iter_mut().zip(x.iter()) {
            *ov = f(*xv);
        }
    }
    for (ov, xv) in out[main..].iter_mut().zip(src[main..].iter()) {
        *ov = f(*xv);
    }
}

#[inline(always)]
fn map2<const L: usize>(s0: &[f64], s1: &[f64], out: &mut [f64], f: impl Fn(f64, f64) -> f64) {
    debug_assert_eq!(s0.len(), out.len());
    debug_assert_eq!(s1.len(), out.len());
    let n = out.len();
    let main = n - n % L;
    for ((o, x0), x1) in out[..main]
        .chunks_exact_mut(L)
        .zip(s0[..main].chunks_exact(L))
        .zip(s1[..main].chunks_exact(L))
    {
        for ((ov, a), b) in o.iter_mut().zip(x0.iter()).zip(x1.iter()) {
            *ov = f(*a, *b);
        }
    }
    for ((ov, a), b) in out[main..]
        .iter_mut()
        .zip(s0[main..].iter())
        .zip(s1[main..].iter())
    {
        *ov = f(*a, *b);
    }
}

#[inline(always)]
fn map3<const L: usize>(
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    out: &mut [f64],
    f: impl Fn(f64, f64, f64) -> f64,
) {
    debug_assert_eq!(s0.len(), out.len());
    debug_assert_eq!(s1.len(), out.len());
    debug_assert_eq!(s2.len(), out.len());
    let n = out.len();
    let main = n - n % L;
    for (((o, x0), x1), x2) in out[..main]
        .chunks_exact_mut(L)
        .zip(s0[..main].chunks_exact(L))
        .zip(s1[..main].chunks_exact(L))
        .zip(s2[..main].chunks_exact(L))
    {
        for (((ov, a), b), c) in o.iter_mut().zip(x0.iter()).zip(x1.iter()).zip(x2.iter()) {
            *ov = f(*a, *b, *c);
        }
    }
    for (((ov, a), b), c) in out[main..]
        .iter_mut()
        .zip(s0[main..].iter())
        .zip(s1[main..].iter())
        .zip(s2[main..].iter())
    {
        *ov = f(*a, *b, *c);
    }
}

/// Apply the post-stencil literal chain: `[*scale]; [+offset]`, in that
/// order, exactly as the scalar fused path does.
#[inline(always)]
fn finish(v: f64, scale: Option<f64>, offset: Option<f64>) -> f64 {
    let v = match scale {
        Some(s) => v * s,
        None => v,
    };
    match offset {
        Some(o) => v + o,
        None => v,
    }
}

// ---------------------------------------------------------------------------
// Public lane kernels.  Each dispatches on (policy, literal presence)
// once, outside the loop.
// ---------------------------------------------------------------------------

/// Lane Copy: `out[j] = src[j]` (a straight memcpy; listed for
/// completeness and used by the n-d tiler).
pub fn copy(_policy: SimdPolicy, src: &[f64], out: &mut [f64]) {
    out.copy_from_slice(src);
}

/// Lane Axpy: `out[j] = src[j] [* a] [+ b]`, each literal applied only
/// when present in the source tree (the `x + 0.0` vs `-0.0` hazard).
pub fn axpy(policy: SimdPolicy, a: Option<f64>, b: Option<f64>, src: &[f64], out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_selected(policy) {
        // SAFETY: AVX2 presence was just verified at run time.
        unsafe { avx2::axpy(a, b, src, out) };
        return;
    }
    match policy.effective_lanes() {
        4 => axpy_lanes::<4>(a, b, src, out),
        16 => axpy_lanes::<16>(a, b, src, out),
        _ => axpy_lanes::<8>(a, b, src, out),
    }
}

#[inline(always)]
fn axpy_lanes<const L: usize>(a: Option<f64>, b: Option<f64>, src: &[f64], out: &mut [f64]) {
    match (a, b) {
        (Some(a), Some(b)) => map1::<L>(src, out, |x| x * a + b),
        (Some(a), None) => map1::<L>(src, out, |x| x * a),
        (None, Some(b)) => map1::<L>(src, out, |x| x + b),
        (None, None) => out.copy_from_slice(src),
    }
}

/// Lane two-point stencil: `out[j] = (s0[j] + s1[j]) [* scale] [+ offset]`.
pub fn stencil2(
    policy: SimdPolicy,
    scale: Option<f64>,
    offset: Option<f64>,
    s0: &[f64],
    s1: &[f64],
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_selected(policy) {
        // SAFETY: AVX2 presence was just verified at run time.
        unsafe { avx2::stencil2(scale, offset, s0, s1, out) };
        return;
    }
    match policy.effective_lanes() {
        4 => map2::<4>(s0, s1, out, |a, b| finish(a + b, scale, offset)),
        16 => map2::<16>(s0, s1, out, |a, b| finish(a + b, scale, offset)),
        _ => map2::<8>(s0, s1, out, |a, b| finish(a + b, scale, offset)),
    }
}

/// Lane three-point stencil: the sum associates exactly as the source
/// tree did — `(s0+s1)+s2` when `left_assoc`, else `s0+(s1+s2)` — then
/// `[* scale] [+ offset]`.
#[allow(clippy::too_many_arguments)]
pub fn stencil3(
    policy: SimdPolicy,
    left_assoc: bool,
    scale: Option<f64>,
    offset: Option<f64>,
    s0: &[f64],
    s1: &[f64],
    s2: &[f64],
    out: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_selected(policy) {
        // SAFETY: AVX2 presence was just verified at run time.
        unsafe { avx2::stencil3(left_assoc, scale, offset, s0, s1, s2, out) };
        return;
    }
    let f = |a: f64, b: f64, c: f64| {
        let sum = if left_assoc { (a + b) + c } else { a + (b + c) };
        finish(sum, scale, offset)
    };
    match policy.effective_lanes() {
        4 => map3::<4>(s0, s1, s2, out, f),
        16 => map3::<16>(s0, s1, s2, out, f),
        _ => map3::<8>(s0, s1, s2, out, f),
    }
}

// ---------------------------------------------------------------------------
// AVX2 intrinsic path (x86_64 only, runtime-detected).
//
// Only loadu / mul / add / storeu: no FMA (would contract mul+add and
// change the low bits), no horizontal ops, no re-association.  Scalar
// tails replicate the exact per-element sequence.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };

    const W: usize = 4;

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    /// `src.len() == out.len()` is debug-asserted.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(a: Option<f64>, b: Option<f64>, src: &[f64], out: &mut [f64]) {
        debug_assert_eq!(src.len(), out.len());
        let n = out.len();
        let main = n - n % W;
        let va = _mm256_set1_pd(a.unwrap_or(0.0));
        let vb = _mm256_set1_pd(b.unwrap_or(0.0));
        let sp = src.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i < main {
            let mut v: __m256d = _mm256_loadu_pd(sp.add(i));
            if a.is_some() {
                v = _mm256_mul_pd(v, va);
            }
            if b.is_some() {
                v = _mm256_add_pd(v, vb);
            }
            _mm256_storeu_pd(op.add(i), v);
            i += W;
        }
        for j in main..n {
            let mut v = src[j];
            if let Some(a) = a {
                v *= a;
            }
            if let Some(b) = b {
                v += b;
            }
            out[j] = v;
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn stencil2(
        scale: Option<f64>,
        offset: Option<f64>,
        s0: &[f64],
        s1: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(s0.len(), out.len());
        debug_assert_eq!(s1.len(), out.len());
        let n = out.len();
        let main = n - n % W;
        let vs = _mm256_set1_pd(scale.unwrap_or(0.0));
        let vo = _mm256_set1_pd(offset.unwrap_or(0.0));
        let p0 = s0.as_ptr();
        let p1 = s1.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i < main {
            let mut v = _mm256_add_pd(_mm256_loadu_pd(p0.add(i)), _mm256_loadu_pd(p1.add(i)));
            if scale.is_some() {
                v = _mm256_mul_pd(v, vs);
            }
            if offset.is_some() {
                v = _mm256_add_pd(v, vo);
            }
            _mm256_storeu_pd(op.add(i), v);
            i += W;
        }
        for j in main..n {
            out[j] = super::finish(s0[j] + s1[j], scale, offset);
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 via `is_x86_feature_detected!`.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn stencil3(
        left_assoc: bool,
        scale: Option<f64>,
        offset: Option<f64>,
        s0: &[f64],
        s1: &[f64],
        s2: &[f64],
        out: &mut [f64],
    ) {
        debug_assert_eq!(s0.len(), out.len());
        debug_assert_eq!(s1.len(), out.len());
        debug_assert_eq!(s2.len(), out.len());
        let n = out.len();
        let main = n - n % W;
        let vs = _mm256_set1_pd(scale.unwrap_or(0.0));
        let vo = _mm256_set1_pd(offset.unwrap_or(0.0));
        let p0 = s0.as_ptr();
        let p1 = s1.as_ptr();
        let p2 = s2.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i < main {
            let x0 = _mm256_loadu_pd(p0.add(i));
            let x1 = _mm256_loadu_pd(p1.add(i));
            let x2 = _mm256_loadu_pd(p2.add(i));
            let mut v = if left_assoc {
                _mm256_add_pd(_mm256_add_pd(x0, x1), x2)
            } else {
                _mm256_add_pd(x0, _mm256_add_pd(x1, x2))
            };
            if scale.is_some() {
                v = _mm256_mul_pd(v, vs);
            }
            if offset.is_some() {
                v = _mm256_add_pd(v, vo);
            }
            _mm256_storeu_pd(op.add(i), v);
            i += W;
        }
        for j in main..n {
            let sum = if left_assoc {
                (s0[j] + s1[j]) + s2[j]
            } else {
                s0[j] + (s1[j] + s2[j])
            };
            out[j] = super::finish(sum, scale, offset);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    /// Scalar oracle replicating the fused interpreter's exact op order.
    fn scalar_axpy(a: Option<f64>, b: Option<f64>, src: &[f64]) -> Vec<f64> {
        src.iter()
            .map(|&x| {
                let mut v = x;
                if let Some(a) = a {
                    v *= a;
                }
                if let Some(b) = b {
                    v += b;
                }
                v
            })
            .collect()
    }

    fn awkward_values(n: usize) -> Vec<f64> {
        // Values chosen to expose rounding/associativity differences:
        // wide magnitude spread, negatives, signed zero, subnormals.
        (0..n)
            .map(|i| match i % 7 {
                0 => -0.0,
                1 => 1.0 / 3.0 * (i as f64),
                2 => 1e16 + i as f64,
                3 => -1e-300 * (i as f64 + 1.0),
                4 => (i as f64).sin(),
                5 => f64::MIN_POSITIVE * (i as f64 + 1.0),
                _ => -7.25 * i as f64,
            })
            .collect()
    }

    #[test]
    fn axpy_matches_scalar_bitwise_all_policies_and_tails() {
        // Cover remainder tails: n spans below/at/above every lane width.
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
            let src = awkward_values(n);
            for a in [None, Some(0.5), Some(-3.0), Some(1.0 / 3.0)] {
                for b in [None, Some(0.0), Some(-0.0), Some(2.5)] {
                    let want = scalar_axpy(a, b, &src);
                    for pol in [
                        SimdPolicy::auto(),
                        SimdPolicy::on(),
                        SimdPolicy {
                            mode: SimdMode::On,
                            lanes: 4,
                        },
                        SimdPolicy {
                            mode: SimdMode::On,
                            lanes: 16,
                        },
                    ] {
                        let mut out = vec![f64::NAN; n];
                        axpy(pol, a, b, &src, &mut out);
                        assert_eq!(bits(&want), bits(&out), "n={n} a={a:?} b={b:?} {pol:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn stencil2_matches_scalar_bitwise() {
        for n in [0, 1, 3, 4, 5, 8, 13, 16, 21, 64, 100] {
            let s0 = awkward_values(n);
            let s1: Vec<f64> = awkward_values(n).iter().map(|v| v * 1.75 - 0.5).collect();
            for scale in [None, Some(0.5), Some(-2.0)] {
                for offset in [None, Some(-0.0), Some(3.25)] {
                    let want: Vec<f64> = s0
                        .iter()
                        .zip(&s1)
                        .map(|(&a, &b)| finish(a + b, scale, offset))
                        .collect();
                    for pol in [SimdPolicy::auto(), SimdPolicy::on()] {
                        let mut out = vec![f64::NAN; n];
                        stencil2(pol, scale, offset, &s0, &s1, &mut out);
                        assert_eq!(
                            bits(&want),
                            bits(&out),
                            "n={n} {scale:?} {offset:?} {pol:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stencil3_matches_scalar_bitwise_both_associativities() {
        for n in [1, 4, 7, 8, 9, 32, 65] {
            let s0 = awkward_values(n);
            let s1: Vec<f64> = s0.iter().map(|v| v + 1e-9).collect();
            let s2: Vec<f64> = s0.iter().map(|v| v * -3.0).collect();
            for left in [true, false] {
                let want: Vec<f64> = (0..n)
                    .map(|j| {
                        let sum = if left {
                            (s0[j] + s1[j]) + s2[j]
                        } else {
                            s0[j] + (s1[j] + s2[j])
                        };
                        finish(sum, Some(0.5), None)
                    })
                    .collect();
                for pol in [SimdPolicy::auto(), SimdPolicy::on()] {
                    let mut out = vec![f64::NAN; n];
                    stencil3(pol, left, Some(0.5), None, &s0, &s1, &s2, &mut out);
                    assert_eq!(bits(&want), bits(&out), "n={n} left={left} {pol:?}");
                }
            }
        }
    }

    #[test]
    fn policy_parse_and_lanes() {
        assert_eq!(SimdPolicy::parse("auto"), Some(SimdPolicy::auto()));
        assert_eq!(SimdPolicy::parse("on"), Some(SimdPolicy::on()));
        assert_eq!(SimdPolicy::parse("off"), Some(SimdPolicy::off()));
        assert_eq!(SimdPolicy::parse("fast"), None);
        assert!(!SimdPolicy::off().enabled());
        assert_eq!(
            SimdPolicy {
                mode: SimdMode::On,
                lanes: 3
            }
            .effective_lanes(),
            4
        );
        assert_eq!(SimdPolicy::auto().effective_lanes(), 8);
        assert_eq!(
            SimdPolicy {
                mode: SimdMode::On,
                lanes: 64
            }
            .effective_lanes(),
            16
        );
    }

    #[test]
    fn census_accounting_splits_lanes_and_tails() {
        let mut c = SimdCensus {
            lanes: 8,
            ..Default::default()
        };
        c.add_vector_run(20);
        c.add_vector_run(3);
        c.add_vector_run(8);
        assert_eq!(c.vector_runs, 3);
        assert_eq!(c.lane_elems, 16 + 8);
        assert_eq!(c.tail_elems, 4 + 3);
    }
}
