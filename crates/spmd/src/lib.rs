//! # vcal-spmd — SPMD program generation and Table I optimization
//!
//! The compile-time half of the paper: given a clause and a decomposition
//! for every array, derive per-processor node programs whose iteration
//! sets are *closed-form* wherever Section 3's theorems apply:
//!
//! * [`schedule`] — run-time iteration schedules (`gen_p(t)` made
//!   executable): ranges, strides, repeated block, repeated scatter,
//!   piecewise concatenations, and the naive guarded loop they replace;
//! * [`optimizer`] — the Table I classification engine (Theorems 1–3,
//!   Corollaries 1–2, the `df/di < pmax` rule, breakpoint splitting);
//! * [`program`] — whole-clause SPMD plans: Modify/Reside schedules per
//!   processor plus communication statistics;
//! * [`comm`] — plan-time communication schedules: per-ordered-pair
//!   send/receive sets (`Reside_p ∩ Modify_q`) coalesced into strided
//!   runs, enabling vectorized message aggregation in the machines;
//! * [`emit`] — pseudo-code rendering of the Section 2.9 / 2.10 templates
//!   and the Section 4 loop skeletons;
//! * [`validate`] — brute-force oracles the tests and benches check
//!   every schedule against.
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod advisor;
pub mod cache;
pub mod comm;
pub mod compiled;
pub mod dag;
pub mod derivation;
pub mod emit;
pub mod kernel;
pub mod nd;
pub mod obs;
pub mod optimizer;
pub mod program;
pub mod schedule;
pub mod setops;
pub mod simd;
pub mod tuner;
pub mod validate;

pub use advisor::{advise, candidates_for, AdvisorOptions, Candidate};
pub use cache::{BoundedLru, CacheBudget};
pub use comm::{plan_comm, CommRun, NodeCommPlan, PairComm};
pub use compiled::{
    clause_arrays, clause_signature, decomp_fingerprint, flatten_schedule, for_each_run,
    AccessPattern, CompiledNode, CompiledSchedule, ExecRun, IterRun, OverlapCensus, SlotAccess,
    SlotRef,
};
pub use dag::{build_dag, program_signature, DepEdge, DepKind, ProgramDag, ProgramStep};
pub use derivation::derive;
pub use kernel::{CompiledKernel, FusedShape, KernelOp, ShapeMismatch};
pub use nd::{optimize_nd, ScheduleNd};
pub use obs::{NodeDispatch, PlanSummary, SlotDispatch};
pub use optimizer::{naive_schedule, optimize, optimize_with, OptKind, OptOptions, Optimized};
pub use program::{CommStats, DecompMap, NodePlan, PlanError, ResidePlan, SpmdPlan};
pub use schedule::{repeated_block_kmax, Schedule};
pub use setops::{comm_sets, intersect, subtract, CommSets};
pub use simd::{SimdCensus, SimdMode, SimdPolicy};
pub use tuner::{
    candidate_for_assignment, describe_assignment, enumerate_candidates, program_arrays,
    TuneCandidate, TuneSpace, TuneSpaceOptions,
};
