//! Per-processor iteration schedules — the run-time counterpart of the
//! paper's closed-form generation functions `gen_p(t)` (Section 3.1).
//!
//! A [`Schedule`] describes exactly the set
//! `{ i ∈ (imin:imax) | proc(f(i)) = p }` for one processor. The naive
//! form ([`Schedule::Guarded`]) iterates the whole loop range and tests
//! the ownership predicate on every index — `imax - imin + 1` tests, the
//! cost the paper sets out to eliminate. The optimized forms iterate the
//! members *only*:
//!
//! * [`Schedule::Range`] — Theorem 1 (constant `f`) and block
//!   decompositions with monotone `f`;
//! * [`Schedule::Strided`] — Theorem 3 (scatter with linear `f`):
//!   `gen_p(t) = x_p + (pmax / gcd(a, pmax)) * t`;
//! * [`Schedule::RepeatedBlock`] — Theorem 2 (block-scatter with monotone
//!   `f`): an outer `k` loop over block cycles, inner contiguous `j` range
//!   obtained through `f^{-1}`;
//! * [`Schedule::RepeatedScatter`] — the Section 3.2.i alternative: outer
//!   loop over the `b` in-block offsets, inner `k` loop probing
//!   `f^{-1}(t + b*k*pmax)` for integrality (also the "limited
//!   optimization" for scatter with monotone non-linear `f`, `b = 1`);
//! * [`Schedule::Concat`] — piecewise-monotonic splits (Section 3.3).

use vcal_core::func::Fn1;
use vcal_numth::div_floor;

/// A per-processor iteration schedule over a 1-D loop range.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// No iterations (the paper's `t_min = 0, t_max = -1` convention).
    Empty,
    /// The contiguous range `lo..=hi`.
    Range {
        /// First iteration.
        lo: i64,
        /// Last iteration.
        hi: i64,
    },
    /// `gen(t) = start + step * t` for `t in 0..count` (Theorem 3).
    Strided {
        /// `gen(0)`.
        start: i64,
        /// Lattice period `pmax / gcd(a, pmax)`.
        step: i64,
        /// Number of iterations.
        count: i64,
    },
    /// Theorem 2: for `k in 0..=k_max`, the contiguous `j` range whose
    /// image under `f` falls in block `p + k*pmax` of size `b`.
    RepeatedBlock {
        /// Access function (monotone on `[imin, imax]`).
        f: Fn1,
        /// Loop lower bound.
        imin: i64,
        /// Loop upper bound.
        imax: i64,
        /// Block size `b`.
        b: i64,
        /// Number of processors.
        pmax: i64,
        /// This processor.
        p: i64,
        /// Offset of the decomposed extent (its `lo`); the owned value
        /// intervals are `ext_lo + b*(p + k*pmax) .. + b - 1`.
        ext_lo: i64,
        /// Last cycle index.
        k_max: i64,
    },
    /// Section 3.2.i: for each in-block offset `t in b*p .. b*p + b - 1`
    /// and cycle `k in 0..=k_max`, the (possibly empty) preimage of the
    /// single value `ext_lo + t + b*k*pmax`.
    RepeatedScatter {
        /// Access function (monotone on `[imin, imax]`).
        f: Fn1,
        /// Loop lower bound.
        imin: i64,
        /// Loop upper bound.
        imax: i64,
        /// Block size `b`.
        b: i64,
        /// Number of processors.
        pmax: i64,
        /// This processor.
        p: i64,
        /// Offset of the decomposed extent.
        ext_lo: i64,
        /// Last cycle index.
        k_max: i64,
    },
    /// Concatenation of disjoint sub-schedules (piecewise splits). The
    /// sub-schedules cover disjoint index ranges in increasing order.
    Concat(Vec<Schedule>),
    /// The naive fallback: test `proc(f(i)) = p` for every `i`.
    Guarded {
        /// Loop lower bound.
        imin: i64,
        /// Loop upper bound.
        imax: i64,
        /// The ownership function `proc ∘ f`.
        proc_of_f: Fn1,
        /// This processor.
        p: i64,
    },
}

impl Schedule {
    /// Visit every scheduled iteration. Iterations of `Range`, `Strided`,
    /// `RepeatedBlock`, `Guarded` and `Concat` are produced in increasing
    /// order; `RepeatedScatter` follows the paper's `t`-major loop order.
    pub fn for_each(&self, mut visit: impl FnMut(i64)) {
        self.for_each_inner(&mut visit);
    }

    fn for_each_inner(&self, visit: &mut impl FnMut(i64)) {
        match self {
            Schedule::Empty => {}
            Schedule::Range { lo, hi } => {
                for i in *lo..=*hi {
                    visit(i);
                }
            }
            Schedule::Strided { start, step, count } => {
                let mut i = *start;
                for _ in 0..*count {
                    visit(i);
                    i += step;
                }
            }
            Schedule::RepeatedBlock {
                f,
                imin,
                imax,
                b,
                pmax,
                p,
                ext_lo,
                k_max,
            } => {
                for k in 0..=*k_max {
                    let y_lo = ext_lo + b * (p + k * pmax);
                    let y_hi = y_lo + b - 1;
                    if let Some((jlo, jhi)) = f.preimage_range(y_lo, y_hi, *imin, *imax) {
                        for j in jlo..=jhi {
                            visit(j);
                        }
                    }
                }
            }
            Schedule::RepeatedScatter {
                f,
                imin,
                imax,
                b,
                pmax,
                p,
                ext_lo,
                k_max,
            } => {
                for t in (b * p)..(b * p + b) {
                    for k in 0..=*k_max {
                        let v = ext_lo + t + b * k * pmax;
                        // all i with f(i) == v (a plateau for weakly
                        // monotone f, one point or nothing otherwise)
                        if let Some((jlo, jhi)) = f.preimage_range(v, v, *imin, *imax) {
                            for j in jlo..=jhi {
                                visit(j);
                            }
                        }
                    }
                }
            }
            Schedule::Concat(parts) => {
                for s in parts {
                    s.for_each_inner(visit);
                }
            }
            Schedule::Guarded {
                imin,
                imax,
                proc_of_f,
                p,
            } => {
                for i in *imin..=*imax {
                    if proc_of_f.eval(i) == *p {
                        visit(i);
                    }
                }
            }
        }
    }

    /// Collect all iterations, sorted ascending (schedule order may differ
    /// for `RepeatedScatter`).
    pub fn to_sorted_vec(&self) -> Vec<i64> {
        let mut v = Vec::new();
        self.for_each(|i| v.push(i));
        v.sort_unstable();
        v
    }

    /// Number of iterations the schedule produces.
    pub fn count(&self) -> u64 {
        match self {
            Schedule::Empty => 0,
            Schedule::Range { lo, hi } => (hi - lo + 1).max(0) as u64,
            Schedule::Strided { count, .. } => (*count).max(0) as u64,
            Schedule::Concat(parts) => parts.iter().map(Schedule::count).sum(),
            _ => {
                let mut n = 0;
                self.for_each(|_| n += 1);
                n
            }
        }
    }

    /// Whether the schedule produces no iterations.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Number of *loop-overhead* steps: iterations visited **plus** guard
    /// tests / probe misses. For `Guarded` this is the full loop extent;
    /// for the closed forms it is the visited count plus empty-probe
    /// overhead — the quantity the paper's complexity argument compares.
    pub fn work_estimate(&self) -> u64 {
        match self {
            Schedule::Empty => 0,
            Schedule::Range { lo, hi } => (hi - lo + 1).max(0) as u64,
            Schedule::Strided { count, .. } => (*count).max(0) as u64,
            Schedule::RepeatedBlock { k_max, .. } => {
                // one preimage computation per cycle plus the visits
                (*k_max + 1).max(0) as u64 + self.count()
            }
            Schedule::RepeatedScatter { b, k_max, .. } => {
                // one probe per (t, k) pair
                ((*k_max + 1).max(0) * b).max(0) as u64
            }
            Schedule::Concat(parts) => parts.iter().map(Schedule::work_estimate).sum(),
            Schedule::Guarded { imin, imax, .. } => (imax - imin + 1).max(0) as u64,
        }
    }

    /// Short name of the schedule shape (for reports and emitted code).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Schedule::Empty => "empty",
            Schedule::Range { .. } => "range",
            Schedule::Strided { .. } => "strided",
            Schedule::RepeatedBlock { .. } => "repeated-block",
            Schedule::RepeatedScatter { .. } => "repeated-scatter",
            Schedule::Concat(_) => "concat",
            Schedule::Guarded { .. } => "guarded",
        }
    }

    /// Clip a contiguous-range schedule helper: build `Range` normalizing
    /// emptiness.
    pub fn range(lo: i64, hi: i64) -> Schedule {
        if lo > hi {
            Schedule::Empty
        } else {
            Schedule::Range { lo, hi }
        }
    }

    /// Build a `Concat`, flattening empties.
    pub fn concat(parts: Vec<Schedule>) -> Schedule {
        let mut kept: Vec<Schedule> = parts
            .into_iter()
            .filter(|s| !matches!(s, Schedule::Empty))
            .collect();
        match (kept.len(), kept.pop()) {
            (1, Some(only)) => only,
            (0, _) | (_, None) => Schedule::Empty,
            (_, Some(last)) => {
                kept.push(last);
                Schedule::Concat(kept)
            }
        }
    }
}

/// Compute the Theorem 2 cycle bound
/// `k_max = (max_offset div b - p) div pmax`, where `max_offset` is the
/// largest zero-based owned value offset reachable by `f` on the domain.
pub fn repeated_block_kmax(
    f: &Fn1,
    imin: i64,
    imax: i64,
    b: i64,
    pmax: i64,
    p: i64,
    ext_lo: i64,
) -> i64 {
    if imin > imax {
        return -1;
    }
    let y_max = f.eval(imin).max(f.eval(imax)) - ext_lo;
    div_floor(div_floor(y_max, b) - p, pmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_empty() {
        assert_eq!(Schedule::range(3, 5).to_sorted_vec(), vec![3, 4, 5]);
        assert!(Schedule::range(5, 3).is_empty());
        assert_eq!(Schedule::Empty.count(), 0);
        assert_eq!(Schedule::range(0, 9).work_estimate(), 10);
    }

    #[test]
    fn strided_enumeration() {
        let s = Schedule::Strided {
            start: 2,
            step: 3,
            count: 4,
        };
        assert_eq!(s.to_sorted_vec(), vec![2, 5, 8, 11]);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn guarded_matches_brute() {
        // scatter on 4 procs, f = i: proc(f(i)) = i mod 4
        let pf = Fn1::Mod {
            inner: Box::new(Fn1::identity()),
            z: 4,
            d: 0,
        };
        let s = Schedule::Guarded {
            imin: 0,
            imax: 14,
            proc_of_f: pf,
            p: 2,
        };
        assert_eq!(s.to_sorted_vec(), vec![2, 6, 10, 14]);
        assert_eq!(s.work_estimate(), 15); // the whole loop is tested
    }

    #[test]
    fn repeated_block_bs2() {
        // BS(2) on pmax=4 over extent 0..; f = identity, loop 0..=14.
        // p=0 owns globals {0,1,8,9} (Fig 2a).
        let f = Fn1::identity();
        let k_max = repeated_block_kmax(&f, 0, 14, 2, 4, 0, 0);
        let s = Schedule::RepeatedBlock {
            f,
            imin: 0,
            imax: 14,
            b: 2,
            pmax: 4,
            p: 0,
            ext_lo: 0,
            k_max,
        };
        assert_eq!(s.to_sorted_vec(), vec![0, 1, 8, 9]);
    }

    #[test]
    fn repeated_scatter_equals_repeated_block() {
        // Same set via the Section 3.2.i formulation.
        let f = Fn1::affine(3, 1);
        let (imin, imax, b, pmax, ext_lo) = (0, 40, 2, 4, 0);
        for p in 0..4 {
            let k_max = repeated_block_kmax(&f, imin, imax, b, pmax, p, ext_lo);
            let rb = Schedule::RepeatedBlock {
                f: f.clone(),
                imin,
                imax,
                b,
                pmax,
                p,
                ext_lo,
                k_max,
            };
            let rs = Schedule::RepeatedScatter {
                f: f.clone(),
                imin,
                imax,
                b,
                pmax,
                p,
                ext_lo,
                k_max,
            };
            assert_eq!(rb.to_sorted_vec(), rs.to_sorted_vec(), "p={p}");
        }
    }

    #[test]
    fn concat_flattens() {
        let c = Schedule::concat(vec![
            Schedule::Empty,
            Schedule::range(0, 1),
            Schedule::Empty,
            Schedule::range(5, 6),
        ]);
        assert_eq!(c.to_sorted_vec(), vec![0, 1, 5, 6]);
        let single = Schedule::concat(vec![Schedule::Empty, Schedule::range(2, 3)]);
        assert!(matches!(single, Schedule::Range { .. }));
        assert!(matches!(Schedule::concat(vec![]), Schedule::Empty));
    }

    #[test]
    fn kmax_handles_empty_loop() {
        assert_eq!(repeated_block_kmax(&Fn1::identity(), 5, 4, 2, 4, 0, 0), -1);
    }
}
