//! Abstract syntax of the miniature imperative language.

use std::fmt;

/// An integer index expression over one loop variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdxExpr {
    /// Integer constant.
    Num(i64),
    /// The loop variable.
    Var(String),
    /// `k * e`
    Scale(i64, Box<IdxExpr>),
    /// `e1 + e2`
    Add(Box<IdxExpr>, Box<IdxExpr>),
    /// `e1 - e2`
    Sub(Box<IdxExpr>, Box<IdxExpr>),
    /// `e1 * e2` where both sides mention the variable (only `v * v`,
    /// i.e. squaring, is accepted by the translator).
    MulVar(Box<IdxExpr>, Box<IdxExpr>),
    /// `e mod z`
    Mod(Box<IdxExpr>, i64),
    /// `e div q`
    Div(Box<IdxExpr>, i64),
}

impl IdxExpr {
    /// All loop-variable names occurring in the expression.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            IdxExpr::Num(_) => {}
            IdxExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            IdxExpr::Scale(_, e) | IdxExpr::Mod(e, _) | IdxExpr::Div(e, _) => e.vars(out),
            IdxExpr::Add(a, b) | IdxExpr::Sub(a, b) | IdxExpr::MulVar(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxExpr::Num(n) => write!(f, "{n}"),
            IdxExpr::Var(v) => write!(f, "{v}"),
            IdxExpr::Scale(k, e) => write!(f, "{k}*{e}"),
            IdxExpr::Add(a, b) => write!(f, "{a}+{b}"),
            IdxExpr::Sub(a, b) => write!(f, "{a}-{b}"),
            IdxExpr::MulVar(a, b) => write!(f, "{a}*{b}"),
            IdxExpr::Mod(e, z) => write!(f, "({e}) mod {z}"),
            IdxExpr::Div(e, q) => write!(f, "({e}) div {q}"),
        }
    }
}

/// An array subscript reference `A[e]` or `A[e1, e2, ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ARef {
    /// Array name.
    pub array: String,
    /// One subscript expression per array dimension.
    pub index: Vec<IdxExpr>,
}

impl ARef {
    /// 1-D convenience constructor.
    pub fn d1(array: impl Into<String>, index: IdxExpr) -> ARef {
        ARef {
            array: array.into(),
            index: vec![index],
        }
    }
}

impl fmt::Display for ARef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let subs: Vec<String> = self.index.iter().map(|e| e.to_string()).collect();
        write!(f, "{}[{}]", self.array, subs.join(", "))
    }
}

/// Comparison operator in a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl RelOp {
    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Eq => "=",
            RelOp::Ne => "<>",
        }
    }
}

/// A scalar (value) expression on the right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum ValExpr {
    /// Array element read.
    Ref(ARef),
    /// Numeric literal.
    Num(f64),
    /// The loop variable as a value.
    Var(String),
    /// Negation.
    Neg(Box<ValExpr>),
    /// `a + b`
    Add(Box<ValExpr>, Box<ValExpr>),
    /// `a - b`
    Sub(Box<ValExpr>, Box<ValExpr>),
    /// `a * b`
    Mul(Box<ValExpr>, Box<ValExpr>),
    /// `a / b`
    Div(Box<ValExpr>, Box<ValExpr>),
}

impl fmt::Display for ValExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValExpr::Ref(r) => write!(f, "{r}"),
            ValExpr::Num(x) => write!(f, "{x}"),
            ValExpr::Var(v) => write!(f, "{v}"),
            ValExpr::Neg(e) => write!(f, "-({e})"),
            ValExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ValExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ValExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ValExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for v := lo to hi do body od;`
    For {
        /// Loop variable.
        var: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if lhs op rhs then body fi;`
    If {
        /// Guarded array read.
        lhs: ARef,
        /// Comparison.
        op: RelOp,
        /// Constant compared against.
        rhs: f64,
        /// Guarded body.
        body: Vec<Stmt>,
    },
    /// `lhs := rhs;`
    Assign {
        /// Assigned array element.
        lhs: ARef,
        /// Value expression.
        rhs: ValExpr,
    },
}

impl Stmt {
    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Stmt::For { var, lo, hi, body } => {
                writeln!(f, "{pad}for {var} := {lo} to {hi} do")?;
                for s in body {
                    s.fmt_indent(f, depth + 1)?;
                }
                writeln!(f, "{pad}od;")
            }
            Stmt::If { lhs, op, rhs, body } => {
                writeln!(f, "{pad}if {lhs} {} {rhs} then", op.symbol())?;
                for s in body {
                    s.fmt_indent(f, depth + 1)?;
                }
                writeln!(f, "{pad}fi;")
            }
            Stmt::Assign { lhs, rhs } => writeln!(f, "{pad}{lhs} := {rhs};"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_shape() {
        let s = Stmt::For {
            var: "i".into(),
            lo: 1,
            hi: 9,
            body: vec![Stmt::Assign {
                lhs: ARef::d1("A", IdxExpr::Var("i".into())),
                rhs: ValExpr::Ref(ARef::d1(
                    "B",
                    IdxExpr::Add(
                        Box::new(IdxExpr::Var("i".into())),
                        Box::new(IdxExpr::Num(1)),
                    ),
                )),
            }],
        };
        let text = s.to_string();
        assert!(text.contains("for i := 1 to 9 do"));
        assert!(text.contains("A[i] := B[i+1];"));
        assert!(text.contains("od;"));
    }

    #[test]
    fn vars_collection() {
        let e = IdxExpr::Add(
            Box::new(IdxExpr::Scale(2, Box::new(IdxExpr::Var("i".into())))),
            Box::new(IdxExpr::Num(3)),
        );
        let mut vs = Vec::new();
        e.vars(&mut vs);
        assert_eq!(vs, vec!["i".to_string()]);
    }
}
