//! Pretty-printing of clauses in the paper's V-cal notation (Fig. 1) and
//! back into imperative pseudo-code.

use vcal_core::map::{display_fn1, IndexMap};
use vcal_core::{Clause, Expr, Guard, Ordering};

const VAR_NAMES: [&str; 4] = ["i", "j", "k", "l"];

fn map_text(map: &IndexMap) -> String {
    if let Some(f) = map.as_fn1() {
        display_fn1(f, "i")
    } else {
        let inner: Vec<String> = map
            .dims()
            .iter()
            .map(|df| display_fn1(&df.f, VAR_NAMES.get(df.src).unwrap_or(&"i")))
            .collect();
        inner.join(", ")
    }
}

fn range_text(clause: &Clause) -> String {
    let b = clause.iter.bounds;
    (0..b.dims())
        .map(|d| format!("{}:{}", b.lo()[d], b.hi()[d]))
        .collect::<Vec<_>>()
        .join("\u{d7}")
}

fn binder_text(dims: usize) -> String {
    if dims == 1 {
        "i".to_string()
    } else {
        format!(
            "({})",
            (0..dims)
                .map(|d| VAR_NAMES.get(d).copied().unwrap_or("?").to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Render a clause in the paper's notation, e.g. Fig. 1's
///
/// ```text
/// ∆(i ∈ (k+1:n | [i]A>0)) // ([i](A) := [f(i)](B))
/// ```
pub fn to_vcal(clause: &Clause) -> String {
    let range = range_text(clause);
    let guard = match &clause.guard {
        Guard::Always => String::new(),
        Guard::Cmp { lhs, op, rhs } => {
            format!(
                " | [{}]{}{}{rhs}",
                map_text(&lhs.map),
                lhs.array,
                op.symbol()
            )
        }
    };
    let ord = clause.ordering.symbol();
    format!(
        "\u{2206}({} \u{2208} ({range}{guard})) {ord} ([{}]({}) := {})",
        binder_text(clause.iter.dims()),
        map_text(&clause.lhs.map),
        clause.lhs.array,
        expr_vcal(&clause.rhs),
    )
}

fn expr_vcal(e: &Expr) -> String {
    match e {
        Expr::Ref(r) => format!("[{}]({})", map_text(&r.map), r.array),
        Expr::Lit(v) => format!("{v}"),
        Expr::LoopVar { dim } => VAR_NAMES.get(*dim).unwrap_or(&"i").to_string(),
        Expr::Neg(inner) => format!("-({})", expr_vcal(inner)),
        Expr::Bin(op, a, b) => {
            format!("({} {} {})", expr_vcal(a), op.symbol(), expr_vcal(b))
        }
    }
}

/// Render a clause back as the imperative loop nest it came from (Fig. 1
/// left column) — useful for showing the source ↔ calculus
/// correspondence.
pub fn to_imperative(clause: &Clause) -> String {
    let dims = clause.iter.dims();
    let b = clause.iter.bounds;
    let mut out = String::new();
    for d in 0..dims {
        out.push_str(&"  ".repeat(d));
        out.push_str(&format!(
            "for {} := {} to {} do\n",
            VAR_NAMES.get(d).unwrap_or(&"?"),
            b.lo()[d],
            b.hi()[d]
        ));
    }
    let pad = "  ".repeat(dims);
    let assign = format!(
        "{}[{}] := {};",
        clause.lhs.array,
        map_text(&clause.lhs.map),
        expr_imp(&clause.rhs)
    );
    match &clause.guard {
        Guard::Always => out.push_str(&format!("{pad}{assign}\n")),
        Guard::Cmp { lhs, op, rhs } => {
            out.push_str(&format!(
                "{pad}if {}[{}] {} {rhs} then\n{pad}  {assign}\n{pad}fi;\n",
                lhs.array,
                map_text(&lhs.map),
                op.symbol()
            ));
        }
    }
    if clause.ordering == Ordering::Seq {
        out.push_str(&format!("{pad}(* sequential: carried dependence *)\n"));
    }
    for d in (0..dims).rev() {
        out.push_str(&"  ".repeat(d));
        out.push_str("od;\n");
    }
    out
}

fn expr_imp(e: &Expr) -> String {
    match e {
        Expr::Ref(r) => format!("{}[{}]", r.array, map_text(&r.map)),
        Expr::Lit(v) => format!("{v}"),
        Expr::LoopVar { dim } => VAR_NAMES.get(*dim).unwrap_or(&"i").to_string(),
        Expr::Neg(inner) => format!("-({})", expr_imp(inner)),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr_imp(a), op.symbol(), expr_imp(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::translate::translate;

    #[test]
    fn fig1_vcal_form() {
        let c = translate(
            &parse("for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;").unwrap()[0],
        )
        .unwrap();
        let s = to_vcal(&c);
        assert_eq!(
            s,
            "\u{2206}(i \u{2208} (1:9 | [i]A>0)) // ([i](A) := [i+1](B))"
        );
    }

    #[test]
    fn two_d_vcal_form() {
        let c = translate(
            &parse("for i := 1 to 8 do for j := 0 to 4 do V[i, j] := U[i-1, 2*j]; od; od;")
                .unwrap()[0],
        )
        .unwrap();
        let s = to_vcal(&c);
        assert_eq!(
            s,
            "\u{2206}((i,j) \u{2208} (1:8\u{d7}0:4)) // ([i, j](V) := [i-1, 2.j](U))"
        );
    }

    #[test]
    fn imperative_roundtrip_shape() {
        let src = "for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;";
        let c = translate(&parse(src).unwrap()[0]).unwrap();
        let back = to_imperative(&c);
        assert!(back.contains("for i := 1 to 9 do"), "{back}");
        assert!(back.contains("if A[i] > 0 then"), "{back}");
        assert!(back.contains("A[i] := B[i+1];"), "{back}");
        let c2 = translate(
            &parse(&back.replace("(* sequential: carried dependence *)", "")).unwrap()[0],
        )
        .unwrap();
        assert_eq!(to_vcal(&c), to_vcal(&c2));
    }

    #[test]
    fn imperative_2d_roundtrip() {
        let src = "for i := 0 to 5 do for j := 0 to 5 do B[j, i] := A[i, j]; od; od;";
        let c = translate(&parse(src).unwrap()[0]).unwrap();
        let back = to_imperative(&c);
        let c2 = translate(&parse(&back).unwrap()[0]).unwrap();
        assert_eq!(to_vcal(&c), to_vcal(&c2));
    }

    #[test]
    fn sequential_clause_annotated() {
        let c =
            translate(&parse("for i := 1 to 9 do A[i] := A[i-1] + 1; od;").unwrap()[0]).unwrap();
        let s = to_vcal(&c);
        assert!(s.contains("\u{2022}"), "{s}");
        assert!(
            to_imperative(&c).contains("sequential"),
            "{}",
            to_imperative(&c)
        );
    }
}
