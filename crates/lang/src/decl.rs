//! The decomposition-specification language.
//!
//! The paper's whole premise is that the data decomposition is specified
//! *separately* from the algorithm and that "experimentation with
//! different versions of the same parallel algorithm, for example
//! different decompositions" should not require program restructuring.
//! This module provides that separate specification as text:
//!
//! ```text
//! processors 8;
//! array A[0:1023]  block;
//! array B[0:1023]  scatter;
//! array C[0:1023]  blockscatter(4);
//! array D[0:99]    replicated;
//! ```
//!
//! Parsing yields a [`DecompMap`] ready for `SpmdPlan::build`, so the
//! same program can be re-planned under a different spec by editing one
//! file — no change to the algorithm text.

use crate::lex::{lex, LexError, Tok};
use std::fmt;
use vcal_core::Bounds;
use vcal_decomp::Decomp1;
use vcal_spmd::DecompMap;

/// Errors from decomposition-spec parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclError {
    /// Tokenization failed.
    Lex(LexError),
    /// Structural error with a message.
    Malformed(String),
    /// `processors` missing or declared after arrays.
    MissingProcessors,
    /// The same array declared twice.
    Duplicate(String),
}

impl fmt::Display for DeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclError::Lex(e) => write!(f, "{e}"),
            DeclError::Malformed(m) => write!(f, "malformed decomposition spec: {m}"),
            DeclError::MissingProcessors => {
                write!(f, "spec must start with `processors <n>;`")
            }
            DeclError::Duplicate(a) => write!(f, "array `{a}` declared twice"),
        }
    }
}

impl std::error::Error for DeclError {}

impl From<LexError> for DeclError {
    fn from(e: LexError) -> Self {
        DeclError::Lex(e)
    }
}

/// A parsed specification.
#[derive(Debug, Clone)]
pub struct DecompSpec {
    /// Number of processors.
    pub pmax: i64,
    /// Array name → decomposition.
    pub decomps: DecompMap,
}

/// Parse a decomposition-specification text.
pub fn parse_spec(src: &str) -> Result<DecompSpec, DeclError> {
    let toks = lex(src)?;
    let mut pos = 0usize;

    let ident = |toks: &[Tok], pos: &mut usize| -> Option<String> {
        if let Some(Tok::Ident(s)) = toks.get(*pos) {
            *pos += 1;
            Some(s.clone())
        } else {
            None
        }
    };
    let int = |toks: &[Tok], pos: &mut usize| -> Option<i64> {
        match toks.get(*pos) {
            Some(Tok::Int(n)) => {
                *pos += 1;
                Some(*n)
            }
            Some(Tok::Minus) => {
                if let Some(Tok::Int(n)) = toks.get(*pos + 1) {
                    *pos += 2;
                    Some(-n)
                } else {
                    None
                }
            }
            _ => None,
        }
    };
    let expect = |toks: &[Tok], pos: &mut usize, t: &Tok| -> bool {
        if toks.get(*pos) == Some(t) {
            *pos += 1;
            true
        } else {
            false
        }
    };

    // processors <n>;
    match ident(&toks, &mut pos).as_deref() {
        Some("processors") => {}
        _ => return Err(DeclError::MissingProcessors),
    }
    let pmax = int(&toks, &mut pos)
        .filter(|&n| n >= 1)
        .ok_or_else(|| DeclError::Malformed("processors needs a positive count".into()))?;
    if !expect(&toks, &mut pos, &Tok::Semi) {
        return Err(DeclError::Malformed("missing `;` after processors".into()));
    }

    let mut decomps = DecompMap::new();
    while pos < toks.len() {
        match ident(&toks, &mut pos).as_deref() {
            Some("array") => {}
            Some(other) => {
                return Err(DeclError::Malformed(format!(
                    "expected `array`, found `{other}`"
                )))
            }
            None => {
                return Err(DeclError::Malformed("expected `array`".into()));
            }
        }
        let name = ident(&toks, &mut pos)
            .ok_or_else(|| DeclError::Malformed("array needs a name".into()))?;
        if !expect(&toks, &mut pos, &Tok::LBracket) {
            return Err(DeclError::Malformed(format!(
                "array `{name}` needs `[lo:hi]`"
            )));
        }
        let lo =
            int(&toks, &mut pos).ok_or_else(|| DeclError::Malformed("bad lower bound".into()))?;
        // the lexer has no `:` token (it demands `:=`), so ranges are
        // written `lo : hi`? No — reuse `to`: `array A[0 to 1023]`.
        if ident(&toks, &mut pos).as_deref().is_some() {
            return Err(DeclError::Malformed(
                "array bounds use `lo to hi` inside brackets".into(),
            ));
        }
        if !expect(&toks, &mut pos, &Tok::To) {
            return Err(DeclError::Malformed("array bounds use `lo to hi`".into()));
        }
        let hi =
            int(&toks, &mut pos).ok_or_else(|| DeclError::Malformed("bad upper bound".into()))?;
        if !expect(&toks, &mut pos, &Tok::RBracket) {
            return Err(DeclError::Malformed("missing `]`".into()));
        }
        let extent = Bounds::range(lo, hi);
        let dec = match ident(&toks, &mut pos).as_deref() {
            Some("block") => Decomp1::block(pmax, extent),
            Some("scatter") => Decomp1::scatter(pmax, extent),
            Some("replicated") => Decomp1::replicated(pmax, extent),
            Some("blockscatter") => {
                if !expect(&toks, &mut pos, &Tok::LParen) {
                    return Err(DeclError::Malformed("blockscatter needs `(b)`".into()));
                }
                let b = int(&toks, &mut pos)
                    .filter(|&b| b >= 1)
                    .ok_or_else(|| DeclError::Malformed("bad block size".into()))?;
                if !expect(&toks, &mut pos, &Tok::RParen) {
                    return Err(DeclError::Malformed("missing `)`".into()));
                }
                Decomp1::block_scatter(b, pmax, extent)
            }
            other => {
                return Err(DeclError::Malformed(format!(
                    "unknown distribution `{}` for array `{name}`",
                    other.unwrap_or("<eof>")
                )))
            }
        };
        if !expect(&toks, &mut pos, &Tok::Semi) {
            return Err(DeclError::Malformed(format!("missing `;` after `{name}`")));
        }
        if decomps.insert(name.clone(), dec).is_some() {
            return Err(DeclError::Duplicate(name));
        }
    }
    Ok(DecompSpec { pmax, decomps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcal_decomp::Distribution;

    const SPEC: &str = "\
        processors 8;\n\
        array A[0 to 1023] block;\n\
        array B[0 to 1023] scatter;\n\
        array C[0 to 1023] blockscatter(4);\n\
        array D[-5 to 99] replicated;\n";

    #[test]
    fn full_spec_parses() {
        let spec = parse_spec(SPEC).unwrap();
        assert_eq!(spec.pmax, 8);
        assert_eq!(spec.decomps.len(), 4);
        assert_eq!(spec.decomps["A"].dist(), Distribution::Block { b: 128 });
        assert_eq!(spec.decomps["B"].dist(), Distribution::Scatter);
        assert_eq!(
            spec.decomps["C"].dist(),
            Distribution::BlockScatter { b: 4 }
        );
        assert!(spec.decomps["D"].is_replicated());
        assert_eq!(spec.decomps["D"].extent(), Bounds::range(-5, 99));
    }

    #[test]
    fn spec_plugs_into_plans() {
        use vcal_core::func::Fn1;
        use vcal_core::{ArrayRef, Clause, Expr, Guard, IndexSet, Ordering};
        use vcal_spmd::SpmdPlan;
        let spec = parse_spec(SPEC).unwrap();
        let clause = Clause {
            iter: IndexSet::range(0, 1023),
            ordering: Ordering::Par,
            guard: Guard::Always,
            lhs: ArrayRef::d1("A", Fn1::identity()),
            rhs: Expr::Ref(ArrayRef::d1("B", Fn1::identity())),
        };
        let plan = SpmdPlan::build(&clause, &spec.decomps).unwrap();
        assert_eq!(plan.pmax, 8);
    }

    #[test]
    fn errors() {
        assert_eq!(
            parse_spec("array A[0 to 9] block;").unwrap_err(),
            DeclError::MissingProcessors
        );
        assert!(matches!(
            parse_spec("processors 0;").unwrap_err(),
            DeclError::Malformed(_)
        ));
        assert!(matches!(
            parse_spec("processors 4; array A[0 to 9] diagonal;").unwrap_err(),
            DeclError::Malformed(_)
        ));
        assert!(matches!(
            parse_spec("processors 4; array A[0 to 9] block; array A[0 to 9] scatter;")
                .unwrap_err(),
            DeclError::Duplicate(_)
        ));
        assert!(matches!(
            parse_spec("processors 4; array A[0 to 9] blockscatter;").unwrap_err(),
            DeclError::Malformed(_)
        ));
    }
}
