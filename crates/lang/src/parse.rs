//! Recursive-descent parser for the miniature imperative language.
//!
//! ```text
//! program  := stmt+
//! stmt     := for | if | assign
//! for      := "for" IDENT ":=" int "to" int "do" stmt+ "od" ";"
//! if       := "if" aref relop number "then" stmt+ "fi" ";"
//! assign   := aref ":=" valexpr ";"
//! aref     := IDENT "[" idxexpr "]"
//! idxexpr  := idxterm { ("+" | "-") idxterm }
//! idxterm  := idxfactor [ "*" idxfactor ]
//! idxfactor:= (INT | IDENT | "(" idxexpr ")") { ("mod" | "div") INT }
//! valexpr  := valterm { ("+" | "-") valterm }
//! valterm  := valfactor { ("*" | "/") valfactor }
//! valfactor:= ["-"] (NUMBER | IDENT | aref | "(" valexpr ")")
//! ```

use crate::ast::{ARef, IdxExpr, RelOp, Stmt, ValExpr};
use crate::lex::{lex, LexError, Tok};
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (or end of input) at the given token index.
    Unexpected {
        /// Token index.
        at: usize,
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                at,
                found,
                expected,
            } => {
                write!(
                    f,
                    "parse error at token {at}: found `{found}`, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

/// Parse a program (one or more statements).
pub fn parse(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    if stmts.is_empty() {
        return Err(ParseError::Unexpected {
            at: 0,
            found: "end of input".into(),
            expected: "a statement".into(),
        });
    }
    Ok(stmts)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError::Unexpected {
            at: self.pos,
            found: self
                .peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of input".into()),
            expected: expected.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.err(what),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let neg = if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.bump() {
            Some(Tok::Int(n)) => Ok(if neg { -n } else { n }),
            _ => {
                self.pos -= 1;
                self.err("an integer")
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let neg = if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        let v = match self.bump() {
            Some(Tok::Int(n)) => n as f64,
            Some(Tok::Float(x)) => x,
            _ => {
                self.pos -= 1;
                return self.err("a number");
            }
        };
        Ok(if neg { -v } else { v })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::For) => self.for_stmt(),
            Some(Tok::If) => self.if_stmt(),
            Some(Tok::Ident(_)) => self.assign_stmt(),
            _ => self.err("`for`, `if`, or an assignment"),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::For, "`for`")?;
        let var = self.ident("loop variable")?;
        self.expect(&Tok::Assign, "`:=`")?;
        let lo = self.int()?;
        self.expect(&Tok::To, "`to`")?;
        let hi = self.int()?;
        self.expect(&Tok::Do, "`do`")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::Od) {
            if self.at_end() {
                return self.err("`od`");
            }
            body.push(self.stmt()?);
        }
        self.expect(&Tok::Od, "`od`")?;
        self.expect(&Tok::Semi, "`;` after `od`")?;
        Ok(Stmt::For { var, lo, hi, body })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::If, "`if`")?;
        let lhs = self.aref()?;
        let op = match self.bump() {
            Some(Tok::Gt) => RelOp::Gt,
            Some(Tok::Ge) => RelOp::Ge,
            Some(Tok::Lt) => RelOp::Lt,
            Some(Tok::Le) => RelOp::Le,
            Some(Tok::Eq) => RelOp::Eq,
            Some(Tok::Ne) => RelOp::Ne,
            _ => {
                self.pos -= 1;
                return self.err("a comparison operator");
            }
        };
        let rhs = self.number()?;
        self.expect(&Tok::Then, "`then`")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::Fi) {
            if self.at_end() {
                return self.err("`fi`");
            }
            body.push(self.stmt()?);
        }
        self.expect(&Tok::Fi, "`fi`")?;
        self.expect(&Tok::Semi, "`;` after `fi`")?;
        Ok(Stmt::If { lhs, op, rhs, body })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lhs = self.aref()?;
        self.expect(&Tok::Assign, "`:=`")?;
        let rhs = self.valexpr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::Assign { lhs, rhs })
    }

    fn aref(&mut self) -> Result<ARef, ParseError> {
        let array = self.ident("array name")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let mut index = vec![self.idxexpr()?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            index.push(self.idxexpr()?);
        }
        self.expect(&Tok::RBracket, "`]`")?;
        Ok(ARef { array, index })
    }

    // ---- index expressions ------------------------------------------------

    fn idxexpr(&mut self) -> Result<IdxExpr, ParseError> {
        let mut e = self.idxterm()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let r = self.idxterm()?;
                    e = IdxExpr::Add(Box::new(e), Box::new(r));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let r = self.idxterm()?;
                    e = IdxExpr::Sub(Box::new(e), Box::new(r));
                }
                _ => return Ok(e),
            }
        }
    }

    fn idxterm(&mut self) -> Result<IdxExpr, ParseError> {
        let l = self.idxfactor()?;
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            let r = self.idxfactor()?;
            Ok(match (&l, &r) {
                (IdxExpr::Num(k), _) => IdxExpr::Scale(*k, Box::new(r)),
                (_, IdxExpr::Num(k)) => IdxExpr::Scale(*k, Box::new(l)),
                _ => IdxExpr::MulVar(Box::new(l), Box::new(r)),
            })
        } else {
            Ok(l)
        }
    }

    fn idxfactor(&mut self) -> Result<IdxExpr, ParseError> {
        let mut base = match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                IdxExpr::Num(n)
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Tok::Int(n)) => IdxExpr::Num(-n),
                    _ => {
                        self.pos -= 1;
                        return self.err("an integer after `-`");
                    }
                }
            }
            Some(Tok::Ident(v)) => {
                self.pos += 1;
                IdxExpr::Var(v)
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.idxexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                e
            }
            _ => return self.err("an index expression"),
        };
        loop {
            match self.peek() {
                Some(Tok::Mod) => {
                    self.pos += 1;
                    let z = self.int()?;
                    base = IdxExpr::Mod(Box::new(base), z);
                }
                Some(Tok::Div) => {
                    self.pos += 1;
                    let q = self.int()?;
                    base = IdxExpr::Div(Box::new(base), q);
                }
                _ => return Ok(base),
            }
        }
    }

    // ---- value expressions -------------------------------------------------

    fn valexpr(&mut self) -> Result<ValExpr, ParseError> {
        let mut e = self.valterm()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let r = self.valterm()?;
                    e = ValExpr::Add(Box::new(e), Box::new(r));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let r = self.valterm()?;
                    e = ValExpr::Sub(Box::new(e), Box::new(r));
                }
                _ => return Ok(e),
            }
        }
    }

    fn valterm(&mut self) -> Result<ValExpr, ParseError> {
        let mut e = self.valfactor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    let r = self.valfactor()?;
                    e = ValExpr::Mul(Box::new(e), Box::new(r));
                }
                Some(Tok::Slash) => {
                    self.pos += 1;
                    let r = self.valfactor()?;
                    e = ValExpr::Div(Box::new(e), Box::new(r));
                }
                _ => return Ok(e),
            }
        }
    }

    fn valfactor(&mut self) -> Result<ValExpr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(ValExpr::Neg(Box::new(self.valfactor()?)))
            }
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(ValExpr::Num(n as f64))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(ValExpr::Num(x))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    let mut index = vec![self.idxexpr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                        index.push(self.idxexpr()?);
                    }
                    self.expect(&Tok::RBracket, "`]`")?;
                    Ok(ValExpr::Ref(ARef { array: name, index }))
                } else {
                    Ok(ValExpr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.valexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            _ => self.err("a value expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_program() {
        let prog = parse("for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;").unwrap();
        assert_eq!(prog.len(), 1);
        let Stmt::For { var, lo, hi, body } = &prog[0] else {
            panic!()
        };
        assert_eq!((var.as_str(), *lo, *hi), ("i", 1, 9));
        let Stmt::If {
            lhs,
            op,
            rhs,
            body: inner,
        } = &body[0]
        else {
            panic!()
        };
        assert_eq!(lhs.array, "A");
        assert_eq!(*op, RelOp::Gt);
        assert_eq!(*rhs, 0.0);
        assert!(matches!(&inner[0], Stmt::Assign { .. }));
    }

    #[test]
    fn subscript_shapes() {
        let prog =
            parse("for i := 0 to 9 do A[2*i+1] := B[(i+6) mod 20] + C[i div 4]; od;").unwrap();
        let Stmt::For { body, .. } = &prog[0] else {
            panic!()
        };
        let Stmt::Assign { lhs, rhs } = &body[0] else {
            panic!()
        };
        assert_eq!(
            lhs.index,
            vec![IdxExpr::Add(
                Box::new(IdxExpr::Scale(2, Box::new(IdxExpr::Var("i".into())))),
                Box::new(IdxExpr::Num(1))
            )]
        );
        let text = rhs.to_string();
        assert!(text.contains("mod 20"), "{text}");
        assert!(text.contains("div 4"), "{text}");
    }

    #[test]
    fn squaring_subscript() {
        let prog = parse("for i := 0 to 9 do A[i*i] := 1; od;").unwrap();
        let Stmt::For { body, .. } = &prog[0] else {
            panic!()
        };
        let Stmt::Assign { lhs, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(lhs.index[0], IdxExpr::MulVar(_, _)));
    }

    #[test]
    fn value_precedence() {
        let prog = parse("for i := 0 to 3 do A[i] := 1 + 2 * B[i]; od;").unwrap();
        let Stmt::For { body, .. } = &prog[0] else {
            panic!()
        };
        let Stmt::Assign { rhs, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "(1 + (2 * B[i]))");
    }

    #[test]
    fn negative_bounds_and_literals() {
        let prog = parse("for i := -3 to 3 do A[i] := -1.5; od;").unwrap();
        let Stmt::For { lo, hi, body, .. } = &prog[0] else {
            panic!()
        };
        assert_eq!((*lo, *hi), (-3, 3));
        let Stmt::Assign { rhs, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(*rhs, ValExpr::Neg(Box::new(ValExpr::Num(1.5))));
    }

    #[test]
    fn error_reporting() {
        let err = parse("for i := 1 to 9 do A[i := 3; od;").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("expected"), "{msg}");
        assert!(parse("").is_err());
        assert!(
            parse("for i := 1 to 2 do od;").is_err() || parse("for i := 1 to 2 do od;").is_ok()
        );
    }

    #[test]
    fn multiple_statements() {
        let prog = parse("for i := 0 to 9 do A[i] := 0; od; for j := 0 to 9 do B[j] := A[j]; od;")
            .unwrap();
        assert_eq!(prog.len(), 2);
    }
}
