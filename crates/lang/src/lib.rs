//! # vcal-lang — a miniature imperative front-end for V-cal
//!
//! The paper's Fig. 1 shows the translation of an imperative loop into a
//! V-cal expression; its Booster front-end is cited but external. This
//! crate is the stand-in: a small Pascal-flavoured language with exactly
//! the constructs the paper translates —
//!
//! ```text
//! for i := 1 to 9 do
//!   if A[i] > 0 then A[i] := B[i+1]; fi;
//! od;
//! ```
//!
//! * [`lex`] / [`parse`] — tokens and recursive-descent parsing;
//! * [`ast`] — loops, guards, assignments, and subscript expressions
//!   covering the paper's function classes (`c`, `a*i+c`, `mod`, `div`,
//!   squaring);
//! * [`translate`] — AST → [`vcal_core::Clause`] with symbolic access
//!   functions and inferred `•` / `//` ordering;
//! * [`pretty`] — rendering clauses in the paper's V-cal notation and
//!   back to imperative form.
#![warn(missing_docs)]

pub mod ast;
pub mod decl;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod translate;

pub use ast::{ARef, IdxExpr, RelOp, Stmt, ValExpr};
pub use decl::{parse_spec, DeclError, DecompSpec};
pub use parse::{parse, ParseError};
pub use pretty::{to_imperative, to_vcal};
pub use translate::{idx_to_fn1, translate, translate_program, TranslateError};

/// End-to-end helper: source text → clauses.
pub fn compile(src: &str) -> Result<Vec<vcal_core::Clause>, CompileError> {
    let stmts = parse(src)?;
    Ok(translate_program(&stmts)?)
}

/// Combined front-end error.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Parsing failed.
    Parse(ParseError),
    /// Translation failed.
    Translate(TranslateError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Translate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<TranslateError> for CompileError {
    fn from(e: TranslateError) -> Self {
        CompileError::Translate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_end_to_end() {
        let clauses = compile(
            "for i := 0 to 7 do A[i] := B[i] + 1; od; for j := 0 to 7 do C[j] := A[j]; od;",
        )
        .unwrap();
        assert_eq!(clauses.len(), 2);
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(matches!(compile("for i :="), Err(CompileError::Parse(_))));
        assert!(matches!(
            compile("for i := 0 to 9 do A[q] := 1; od;"),
            Err(CompileError::Translate(_))
        ));
    }
}
