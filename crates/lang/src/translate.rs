//! Translation of parsed loops into V-cal clauses (paper Section 2.5 and
//! Fig. 1).
//!
//! A (possibly nested) `for` loop whose innermost body is a single
//! assignment (optionally wrapped in one data-dependent `if`) becomes the
//! clause
//!
//! ```text
//! ∆(i ∈ (lo:hi) [× (lo2:hi2) ...]) ◊ ([f(i)](A) := Expr([g(i)](B), ...))
//! ```
//!
//! The ordering `◊` is inferred: `//` when the selections are independent
//! (the written array is only read, if at all, through the *same* index
//! map — element-wise self-reference is safe under snapshot semantics),
//! `•` otherwise.

use crate::ast::{ARef, IdxExpr, RelOp, Stmt, ValExpr};
use std::fmt;
use vcal_core::func::Fn1;
use vcal_core::map::{DimFn, IndexMap};
use vcal_core::{ArrayRef, BinOp, Bounds, Clause, CmpOp, Expr, Guard, IndexSet, Ix, Ordering};

/// Translation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The statement is not a `for` loop.
    NotALoop,
    /// Loop bodies must be one assignment, optionally inside one `if`.
    UnsupportedBody,
    /// A subscript uses a variable that is not a loop variable.
    ForeignVariable(String),
    /// A subscript mixes two different loop variables.
    MixedVariables,
    /// A subscript multiplies two non-identical variable expressions
    /// (only squaring `v*v` is in the paper's function classes).
    NonSquareProduct,
    /// `mod`/`div` by a non-positive constant.
    BadModulus(i64),
    /// Deeper loop nests than [`vcal_core::ix::MAX_DIMS`].
    TooManyDimensions,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::NotALoop => write!(f, "top-level statement must be a for loop"),
            TranslateError::UnsupportedBody => write!(
                f,
                "loop body must be a single assignment, optionally guarded by one if"
            ),
            TranslateError::ForeignVariable(v) => {
                write!(f, "subscript uses `{v}` which is not a loop variable")
            }
            TranslateError::MixedVariables => {
                write!(f, "a subscript may reference only one loop variable")
            }
            TranslateError::NonSquareProduct => {
                write!(
                    f,
                    "only squaring (v*v) is supported among variable products"
                )
            }
            TranslateError::BadModulus(z) => write!(f, "mod/div by non-positive {z}"),
            TranslateError::TooManyDimensions => {
                write!(
                    f,
                    "loop nests deeper than {} are unsupported",
                    vcal_core::ix::MAX_DIMS
                )
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Convert a subscript expression into a symbolic [`Fn1`] over the single
/// loop variable `var` (1-D convenience used by tests and external
/// callers).
pub fn idx_to_fn1(e: &IdxExpr, var: &str) -> Result<Fn1, TranslateError> {
    let (f, used) = idx_to_fn1_any(e)?;
    if let Some(u) = used {
        if u != var {
            return Err(TranslateError::ForeignVariable(u));
        }
    }
    Ok(f)
}

/// Convert a subscript into `(Fn1, which-variable-it-uses)`.
fn idx_to_fn1_any(e: &IdxExpr) -> Result<(Fn1, Option<String>), TranslateError> {
    let f = match e {
        IdxExpr::Num(n) => (Fn1::Const(*n), None),
        IdxExpr::Var(v) => (Fn1::identity(), Some(v.clone())),
        IdxExpr::Scale(k, inner) => {
            let (g, u) = idx_to_fn1_any(inner)?;
            (
                Fn1::Scaled {
                    a: *k,
                    c: 0,
                    inner: Box::new(g),
                },
                u,
            )
        }
        IdxExpr::Add(a, b) => {
            let (ga, ua) = idx_to_fn1_any(a)?;
            let (gb, ub) = idx_to_fn1_any(b)?;
            (Fn1::Sum(Box::new(ga), Box::new(gb)), merge_vars(ua, ub)?)
        }
        IdxExpr::Sub(a, b) => {
            let (ga, ua) = idx_to_fn1_any(a)?;
            let (gb, ub) = idx_to_fn1_any(b)?;
            (
                Fn1::Sum(
                    Box::new(ga),
                    Box::new(Fn1::Scaled {
                        a: -1,
                        c: 0,
                        inner: Box::new(gb),
                    }),
                ),
                merge_vars(ua, ub)?,
            )
        }
        IdxExpr::MulVar(a, b) => {
            if a == b {
                let (g, u) = idx_to_fn1_any(a)?;
                (Fn1::Square(Box::new(g)), u)
            } else {
                return Err(TranslateError::NonSquareProduct);
            }
        }
        IdxExpr::Mod(inner, z) => {
            if *z <= 0 {
                return Err(TranslateError::BadModulus(*z));
            }
            let (g, u) = idx_to_fn1_any(inner)?;
            (
                Fn1::Mod {
                    inner: Box::new(g),
                    z: *z,
                    d: 0,
                },
                u,
            )
        }
        IdxExpr::Div(inner, q) => {
            if *q <= 0 {
                return Err(TranslateError::BadModulus(*q));
            }
            let (g, u) = idx_to_fn1_any(inner)?;
            (
                Fn1::Div {
                    inner: Box::new(g),
                    q: *q,
                },
                u,
            )
        }
    };
    Ok((f.0.simplify(), f.1))
}

fn merge_vars(a: Option<String>, b: Option<String>) -> Result<Option<String>, TranslateError> {
    match (a, b) {
        (None, x) | (x, None) => Ok(x),
        (Some(x), Some(y)) if x == y => Ok(Some(x)),
        _ => Err(TranslateError::MixedVariables),
    }
}

fn aref_to_ref(r: &ARef, vars: &[String]) -> Result<ArrayRef, TranslateError> {
    let mut dims = Vec::with_capacity(r.index.len());
    for sub in &r.index {
        let (f, used) = idx_to_fn1_any(sub)?;
        let src = match used {
            None => 0, // constant subscript: source dim irrelevant
            Some(v) => vars
                .iter()
                .position(|lv| *lv == v)
                .ok_or(TranslateError::ForeignVariable(v))?,
        };
        dims.push(DimFn { src, f });
    }
    Ok(ArrayRef::new(
        r.array.clone(),
        IndexMap::new(vars.len(), dims),
    ))
}

fn relop_to_cmp(op: RelOp) -> CmpOp {
    match op {
        RelOp::Gt => CmpOp::Gt,
        RelOp::Ge => CmpOp::Ge,
        RelOp::Lt => CmpOp::Lt,
        RelOp::Le => CmpOp::Le,
        RelOp::Eq => CmpOp::Eq,
        RelOp::Ne => CmpOp::Ne,
    }
}

fn val_to_expr(e: &ValExpr, vars: &[String]) -> Result<Expr, TranslateError> {
    Ok(match e {
        ValExpr::Ref(r) => Expr::Ref(aref_to_ref(r, vars)?),
        ValExpr::Num(x) => Expr::Lit(*x),
        ValExpr::Var(v) => {
            let dim = vars
                .iter()
                .position(|lv| lv == v)
                .ok_or_else(|| TranslateError::ForeignVariable(v.clone()))?;
            Expr::LoopVar { dim }
        }
        ValExpr::Neg(inner) => Expr::Neg(Box::new(val_to_expr(inner, vars)?)),
        ValExpr::Add(a, b) => Expr::Bin(
            BinOp::Add,
            Box::new(val_to_expr(a, vars)?),
            Box::new(val_to_expr(b, vars)?),
        ),
        ValExpr::Sub(a, b) => Expr::Bin(
            BinOp::Sub,
            Box::new(val_to_expr(a, vars)?),
            Box::new(val_to_expr(b, vars)?),
        ),
        ValExpr::Mul(a, b) => Expr::Bin(
            BinOp::Mul,
            Box::new(val_to_expr(a, vars)?),
            Box::new(val_to_expr(b, vars)?),
        ),
        ValExpr::Div(a, b) => Expr::Bin(
            BinOp::Div,
            Box::new(val_to_expr(a, vars)?),
            Box::new(val_to_expr(b, vars)?),
        ),
    })
}

/// Translate one (possibly nested) `for` statement into a V-cal [`Clause`].
pub fn translate(stmt: &Stmt) -> Result<Clause, TranslateError> {
    // peel the loop nest
    let mut vars: Vec<String> = Vec::new();
    let mut los: Vec<i64> = Vec::new();
    let mut his: Vec<i64> = Vec::new();
    let mut cur = stmt;
    loop {
        let Stmt::For { var, lo, hi, body } = cur else {
            if vars.is_empty() {
                return Err(TranslateError::NotALoop);
            }
            break;
        };
        if vars.len() >= vcal_core::ix::MAX_DIMS {
            return Err(TranslateError::TooManyDimensions);
        }
        vars.push(var.clone());
        los.push(*lo);
        his.push(*hi);
        match body.as_slice() {
            [single @ Stmt::For { .. }] => cur = single,
            [single] => {
                cur = single;
                break;
            }
            _ => return Err(TranslateError::UnsupportedBody),
        }
    }

    // unwrap the optional single guard
    let (guard, assign) = match cur {
        Stmt::Assign { lhs, rhs } => (Guard::Always, (lhs, rhs)),
        Stmt::If { lhs, op, rhs, body } => match body.as_slice() {
            [Stmt::Assign {
                lhs: alhs,
                rhs: arhs,
            }] => (
                Guard::Cmp {
                    lhs: aref_to_ref(lhs, &vars)?,
                    op: relop_to_cmp(*op),
                    rhs: *rhs,
                },
                (alhs, arhs),
            ),
            _ => return Err(TranslateError::UnsupportedBody),
        },
        _ => return Err(TranslateError::UnsupportedBody),
    };
    let lhs = aref_to_ref(assign.0, &vars)?;
    let rhs = val_to_expr(assign.1, &vars)?;

    let bounds = Bounds::new(Ix::new(&los), Ix::new(&his));
    let clause = Clause {
        iter: IndexSet::full(bounds),
        ordering: Ordering::Par, // provisional; fixed below
        guard,
        lhs,
        rhs,
    };
    // Ordering inference: parallel iff every read of the written array
    // uses the same index map as the write.
    let lhs_map = clause.lhs.map.clone();
    let independent = clause
        .read_refs()
        .iter()
        .all(|r| r.array != clause.lhs.array || r.map == lhs_map);
    Ok(Clause {
        ordering: if independent {
            Ordering::Par
        } else {
            Ordering::Seq
        },
        ..clause
    })
}

/// Translate a whole program: one clause per top-level loop.
pub fn translate_program(stmts: &[Stmt]) -> Result<Vec<Clause>, TranslateError> {
    stmts.iter().map(translate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use vcal_core::{Array, Env};

    fn clause_of(src: &str) -> Clause {
        translate(&parse(src).unwrap()[0]).unwrap()
    }

    #[test]
    fn fig1_translation() {
        let c = clause_of("for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;");
        assert_eq!(c.ordering, Ordering::Par);
        assert_eq!(c.iter.bounds, Bounds::range(1, 9));
        assert!(matches!(c.guard, Guard::Cmp { .. }));
        assert_eq!(c.lhs.array, "A");
        assert_eq!(c.lhs.map.as_fn1().unwrap().clone(), Fn1::identity());
        let Expr::Ref(b) = &c.rhs else { panic!() };
        assert_eq!(b.map.as_fn1().unwrap().clone(), Fn1::shift(1));
    }

    #[test]
    fn subscripts_become_symbolic_functions() {
        let c = clause_of("for i := 0 to 9 do A[2*i+1] := B[(i+6) mod 20]; od;");
        assert_eq!(c.lhs.map.as_fn1().unwrap().clone(), Fn1::affine(2, 1));
        let Expr::Ref(b) = &c.rhs else { panic!() };
        assert_eq!(b.map.as_fn1().unwrap().clone(), Fn1::rotate(6, 20));
    }

    #[test]
    fn squaring_subscript() {
        let c = clause_of("for i := 0 to 9 do A[i*i] := 1; od;");
        assert_eq!(c.lhs.map.as_fn1().unwrap().clone(), Fn1::square());
    }

    #[test]
    fn i_plus_i_div_4() {
        let c = clause_of("for i := 0 to 9 do A[i + i div 4] := 1; od;");
        let f = c.lhs.map.as_fn1().unwrap().clone();
        for i in 0..10 {
            assert_eq!(f.eval(i), i + i / 4);
        }
    }

    #[test]
    fn nested_2d_loop() {
        // V[i,j] := U[i-1, 2*j]
        let c = clause_of("for i := 1 to 8 do for j := 0 to 4 do V[i, j] := U[i-1, 2*j]; od; od;");
        assert_eq!(c.iter.bounds, Bounds::range2(1, 8, 0, 4));
        assert_eq!(c.lhs.map.d_out(), 2);
        assert_eq!(c.lhs.map.eval(&Ix::d2(3, 2)), Ix::d2(3, 2));
        let Expr::Ref(u) = &c.rhs else { panic!() };
        assert_eq!(u.map.eval(&Ix::d2(3, 2)), Ix::d2(2, 4));
    }

    #[test]
    fn transpose_subscripts() {
        // B[j, i] := A[i, j]
        let c = clause_of("for i := 0 to 5 do for j := 0 to 5 do B[j, i] := A[i, j]; od; od;");
        assert_eq!(c.lhs.map.eval(&Ix::d2(2, 5)), Ix::d2(5, 2));
        assert_eq!(c.ordering, Ordering::Par);
    }

    #[test]
    fn nested_3d_loop() {
        let c = clause_of(
            "for i := 0 to 2 do for j := 0 to 3 do for k := 0 to 4 do \
             T[i, j, k] := 1; od; od; od;",
        );
        assert_eq!(c.iter.bounds.dims(), 3);
        assert_eq!(c.iter.bounds.count(), 3 * 4 * 5);
    }

    #[test]
    fn mixed_variable_subscript_rejected() {
        let prog = parse("for i := 0 to 5 do for j := 0 to 5 do A[i+j, j] := 1; od; od;").unwrap();
        assert_eq!(
            translate(&prog[0]).unwrap_err(),
            TranslateError::MixedVariables
        );
    }

    #[test]
    fn loopvar_values_in_2d() {
        let c = clause_of("for i := 0 to 3 do for j := 0 to 3 do A[i, j] := i + j; od; od;");
        let mut env = Env::new();
        env.insert("A", Array::zeros(Bounds::range2(0, 3, 0, 3)));
        env.exec_clause(&c);
        assert_eq!(env.get("A").unwrap().get(&Ix::d2(2, 3)), 5.0);
    }

    #[test]
    fn recurrence_is_sequential() {
        let c = clause_of("for i := 1 to 9 do A[i] := A[i-1] + 1; od;");
        assert_eq!(c.ordering, Ordering::Seq);
    }

    #[test]
    fn elementwise_self_reference_is_parallel() {
        let c = clause_of("for i := 0 to 9 do A[i] := A[i] * 2; od;");
        assert_eq!(c.ordering, Ordering::Par);
    }

    #[test]
    fn translated_clause_executes_like_source() {
        let src = "for i := 1 to 8 do if A[i] > 2.5 then A[i] := B[i+1] + 0.5; fi; od;";
        let c = clause_of(src);
        let mut env = Env::new();
        env.insert(
            "A",
            Array::from_fn(Bounds::range(0, 9), |i| i.scalar() as f64),
        );
        env.insert(
            "B",
            Array::from_fn(Bounds::range(0, 9), |i| (10 * i.scalar()) as f64),
        );
        let mut manual = env.clone();
        {
            let a0: Vec<f64> = manual.get("A").unwrap().data().to_vec();
            let b: Vec<f64> = manual.get("B").unwrap().data().to_vec();
            let a = manual.get_mut("A").unwrap();
            for i in 1..=8usize {
                if a0[i] > 2.5 {
                    a.data_mut()[i] = b[i + 1] + 0.5;
                }
            }
        }
        env.exec_clause(&c);
        assert_eq!(
            env.get("A").unwrap().max_abs_diff(manual.get("A").unwrap()),
            0.0
        );
    }

    #[test]
    fn errors() {
        let prog = parse("for i := 0 to 9 do A[j] := 1; od;").unwrap();
        assert_eq!(
            translate(&prog[0]).unwrap_err(),
            TranslateError::ForeignVariable("j".into())
        );
        let prog = parse("for i := 0 to 9 do A[i] := 1; B[i] := 2; od;").unwrap();
        assert_eq!(
            translate(&prog[0]).unwrap_err(),
            TranslateError::UnsupportedBody
        );
        let prog = parse("A[0] := 1;").unwrap();
        assert_eq!(translate(&prog[0]).unwrap_err(), TranslateError::NotALoop);
        let prog = parse("for i := 0 to 9 do A[i mod -2] := 1; od;").unwrap();
        assert_eq!(
            translate(&prog[0]).unwrap_err(),
            TranslateError::BadModulus(-2)
        );
    }
}
