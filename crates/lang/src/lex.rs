//! Lexer for the miniature imperative language of Fig. 1.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (loop variables, array names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `for`
    For,
    /// `to`
    To,
    /// `do`
    Do,
    /// `od`
    Od,
    /// `if`
    If,
    /// `then`
    Then,
    /// `fi`
    Fi,
    /// `mod`
    Mod,
    /// `div`
    Div,
    /// `:=`
    Assign,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Float(x) => write!(f, "{x}"),
            other => write!(f, "{}", keyword_str(other)),
        }
    }
}

fn keyword_str(t: &Tok) -> &'static str {
    match t {
        Tok::For => "for",
        Tok::To => "to",
        Tok::Do => "do",
        Tok::Od => "od",
        Tok::If => "if",
        Tok::Then => "then",
        Tok::Fi => "fi",
        Tok::Mod => "mod",
        Tok::Div => "div",
        Tok::Assign => ":=",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::Semi => ";",
        Tok::Comma => ",",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Gt => ">",
        Tok::Ge => ">=",
        Tok::Lt => "<",
        Tok::Le => "<=",
        Tok::Eq => "=",
        Tok::Ne => "<>",
        _ => unreachable!(),
    }
}

/// A lexing error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte position of the offending character.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    toks.push(Tok::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    toks.push(Tok::Ne);
                    i += 2;
                }
                _ => {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            },
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Assign);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "expected `:=`".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    toks.push(Tok::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        msg: format!("bad float `{text}`"),
                    })?));
                } else {
                    let text = &src[start..i];
                    toks.push(Tok::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        msg: format!("bad integer `{text}`"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                toks.push(match word {
                    "for" => Tok::For,
                    "to" => Tok::To,
                    "do" => Tok::Do,
                    "od" => Tok::Od,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "fi" => Tok::Fi,
                    "mod" => Tok::Mod,
                    "div" => Tok::Div,
                    _ => Tok::Ident(word.to_string()),
                });
            }
            other => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tokens() {
        let toks = lex("for i := 1 to 9 do if A[i] > 0 then A[i] := B[i+1]; fi; od;").unwrap();
        assert_eq!(toks[0], Tok::For);
        assert_eq!(toks[1], Tok::Ident("i".into()));
        assert_eq!(toks[2], Tok::Assign);
        assert_eq!(toks[3], Tok::Int(1));
        assert!(toks.contains(&Tok::If));
        assert!(toks.contains(&Tok::Gt));
        assert!(toks.contains(&Tok::Fi));
        assert_eq!(*toks.last().unwrap(), Tok::Semi);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(lex("42").unwrap(), vec![Tok::Int(42)]);
        assert_eq!(lex("4.25").unwrap(), vec![Tok::Float(4.25)]);
        assert_eq!(
            lex("1.5 + 2").unwrap(),
            vec![Tok::Float(1.5), Tok::Plus, Tok::Int(2)]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("> >= < <= = <>").unwrap(),
            vec![Tok::Gt, Tok::Ge, Tok::Lt, Tok::Le, Tok::Eq, Tok::Ne]
        );
    }

    #[test]
    fn mod_div_keywords() {
        let toks = lex("(i+6) mod 20 div 4").unwrap();
        assert!(toks.contains(&Tok::Mod));
        assert!(toks.contains(&Tok::Div));
    }

    #[test]
    fn errors() {
        assert!(lex("a : b").is_err());
        assert!(lex("a ? b").is_err());
        let e = lex("x # y").unwrap_err();
        assert_eq!(e.pos, 2);
    }
}
